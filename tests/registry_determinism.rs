//! Registry determinism: every committed `BENCH_<name>.json` with a
//! shipped `scenarios/<name>.toml` must have a `deterministic` section
//! (schedule hash included) that today's code re-derives byte-for-byte.
//!
//! This is the contract the whole trajectory rests on: refactors of the
//! request plane may change *measured* numbers, but if they perturb the
//! materialized schedule — arrival times, type draws, service demands —
//! the before/after comparison is comparing different experiments. A
//! hash mismatch here means the RNG stream, the workload lowering, or
//! the hash itself changed, and the committed baselines must be
//! regenerated *and explained*, not silently overwritten.

use persephone::scenario::{BenchReport, Deterministic, Meta, ScenarioSpec};
use persephone_scenario::json::Json;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

/// Renders just the deterministic section a fresh derivation produces.
fn derived_section(spec: &ScenarioSpec) -> String {
    let trace = spec.build_trace();
    let report = BenchReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        meta: Meta::fixed(),
        deterministic: Deterministic::derive(spec, &trace),
        runs: Vec::new(),
        hotpath: None,
    };
    let json = Json::parse(&report.render()).unwrap();
    json.get("deterministic").unwrap().render()
}

#[test]
fn committed_bench_reports_match_rederived_deterministic_sections() {
    let root = repo_root();
    let mut checked = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root") {
        let path = entry.unwrap().path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let spec_path = root.join("scenarios").join(format!("{stem}.toml"));
        let spec_text = std::fs::read_to_string(&spec_path)
            .unwrap_or_else(|e| panic!("{name} has no scenarios/{stem}.toml ({e})"));
        let spec = ScenarioSpec::from_toml(&spec_text)
            .unwrap_or_else(|e| panic!("scenarios/{stem}.toml rejected: {e}"));

        let committed_text = std::fs::read_to_string(&path).unwrap();
        let committed = Json::parse(&committed_text)
            .unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
        let committed_det = committed
            .get("deterministic")
            .unwrap_or_else(|| panic!("{name} lacks a deterministic section"))
            .render();

        assert_eq!(
            committed_det,
            derived_section(&spec),
            "{name}: committed deterministic section (schedule_hash included) \
             no longer matches what scenarios/{stem}.toml derives — the \
             arrival schedule changed; regenerate the baseline deliberately"
        );
        checked.push(stem.to_string());
    }
    checked.sort();
    // The suite must actually cover the committed registry; an empty
    // loop would vacuously pass.
    for required in ["smoke", "rack_scale"] {
        assert!(
            checked.iter().any(|s| s == required),
            "expected a committed BENCH_{required}.json, found only {checked:?}"
        );
    }
}
