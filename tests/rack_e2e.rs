//! End-to-end tests of the rack tier: cross-server report merging
//! (`RackReport::merged` generalizes `DispatcherReport::merged` from
//! "shards of one server" to "shards of every server"), and a live
//! 2-server × 2-shard rack driven through `run_rack_scheduled`.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing assumptions.
#![cfg(not(feature = "model-check"))]

use std::time::Duration;

use persephone::prelude::*;
use persephone::telemetry::WorkerCountersSnap;

/// A synthetic shard report with every counter set to a distinct
/// multiple of `base`, plus one telemetry worker slot tagged with `base`
/// so concatenation order is observable.
fn shard_report(base: u64, guaranteed: Vec<usize>) -> DispatcherReport {
    let mut telemetry = Snapshot::default();
    telemetry.workers.push(WorkerCountersSnap {
        busy_ns: base,
        ..Default::default()
    });
    DispatcherReport {
        policy: "DARC".into(),
        received: base,
        classified: 2 * base,
        unknown: 3 * base,
        malformed: 4 * base,
        dropped: 5 * base,
        dispatched: 6 * base,
        completed: 7 * base,
        expired: 8 * base,
        shed_at_shutdown: 9 * base,
        quarantines: 10 * base,
        releases: 11 * base,
        tx_give_ups: 12 * base,
        reservation_updates: 13 * base,
        guaranteed,
        telemetry,
    }
}

/// `RackReport::merged` is conservative: every counter is the sum over
/// all shards of all servers, `guaranteed` sums element-wise, and the
/// telemetry worker slots concatenate in server order.
#[test]
fn rack_merged_conserves_counters_across_servers() {
    let bases = [1u64, 10, 100, 1000];
    let servers: Vec<RuntimeReport> = bases
        .chunks(2)
        .map(|pair| {
            let shards: Vec<DispatcherReport> =
                pair.iter().map(|&b| shard_report(b, vec![1, 2])).collect();
            RuntimeReport {
                dispatcher: DispatcherReport::merged(&shards),
                shards,
                workers: vec![WorkerReport::default(); 2],
            }
        })
        .collect();
    let rack = RackReport { servers };

    let merged = rack.merged();
    let total: u64 = bases.iter().sum();
    assert_eq!(merged.policy, "DARC", "first shard's policy name");
    assert_eq!(merged.received, total);
    assert_eq!(merged.classified, 2 * total);
    assert_eq!(merged.unknown, 3 * total);
    assert_eq!(merged.malformed, 4 * total);
    assert_eq!(merged.dropped, 5 * total);
    assert_eq!(merged.dispatched, 6 * total);
    assert_eq!(merged.completed, 7 * total);
    assert_eq!(merged.expired, 8 * total);
    assert_eq!(merged.shed_at_shutdown, 9 * total);
    assert_eq!(merged.quarantines, 10 * total);
    assert_eq!(merged.releases, 11 * total);
    assert_eq!(merged.tx_give_ups, 12 * total);
    assert_eq!(merged.reservation_updates, 13 * total);
    assert_eq!(
        merged.guaranteed,
        vec![bases.len(), 2 * bases.len()],
        "guaranteed cores sum element-wise"
    );
    assert_eq!(
        merged.telemetry.workers.len(),
        bases.len(),
        "worker slots concatenate, one per shard here"
    );
    let order: Vec<u64> = merged.telemetry.workers.iter().map(|w| w.busy_ns).collect();
    assert_eq!(
        order,
        bases.to_vec(),
        "server 0's shards first, then server 1's"
    );
}

/// A live 2-server rack, each server sharded 2×: the ingress ledger
/// balances, both servers carry traffic, and the rack-merged dispatcher
/// view agrees with the per-server reports the same way a single
/// server's merged view agrees with its shards.
#[test]
fn two_server_two_shard_rack_conserves_and_merges() {
    let num_types = 2;
    let workers_per_server = 2;
    let services = [Nanos::from_micros(5), Nanos::from_micros(100)];
    let hints: Vec<Option<Nanos>> = services.iter().map(|s| Some(*s)).collect();
    let cal = SpinCalibration::calibrate();

    let mut members = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..2 {
        let (client, server_port) = loopback_mq(512, 2, Steering::Rss);
        let (handle, _) = ServerBuilder::new(workers_per_server, num_types)
            .shards(2)
            .hints(hints.clone())
            .idle_backoff(Duration::from_micros(50))
            .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
            .handler_factory(move |_worker| {
                Box::new(PayloadSpinHandler::new(cal, Nanos::from_millis(5)))
            })
            .transport(Transport::Port(server_port))
            .start()
            .expect("in-process start cannot fail");
        members.push(RackMember {
            client,
            telemetries: handle.telemetries().to_vec(),
        });
        handles.push(handle);
    }

    // 400 requests, 80/20 short/long, paced 200µs apart (~80ms of load —
    // light enough that a one-core CI host drains it without starving
    // the client pool).
    let schedule: Vec<ScheduledRequest> = (0..400u64)
        .map(|i| {
            let ty = u32::from(i % 5 == 4);
            ScheduledRequest {
                at_ns: i * 200_000,
                ty,
                service_ns: services[ty as usize].as_nanos(),
            }
        })
        .collect();

    let mut policy = build_rack_policy("rr", 7).expect("rr is a valid rack policy");
    let mut pool = BufferPool::new(512, 128);
    let report = run_rack_scheduled(
        &mut members,
        policy.as_mut(),
        &mut pool,
        num_types,
        workers_per_server,
        &hints,
        &schedule,
        Duration::from_secs(2),
        Some(Duration::from_micros(50)),
    );
    let rack = RackReport {
        servers: handles.into_iter().map(|h| h.stop()).collect(),
    };

    // Ingress ledger balances and round-robin touched both servers.
    assert_eq!(report.sent, 400);
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "client totals balance"
    );
    assert_eq!(report.per_server_sent.iter().sum::<u64>(), report.sent);
    assert_eq!(report.per_server_sent, vec![200, 200], "rr alternates");
    assert_eq!(report.timed_out, 0, "light load drains within grace");

    // Per-server reports exist with the full shard structure.
    assert_eq!(rack.servers.len(), 2);
    for (s, server) in rack.servers.iter().enumerate() {
        assert_eq!(server.shards.len(), 2, "server {s} keeps its shards");
        assert_eq!(server.workers.len(), workers_per_server);
        assert!(server.handled() > 0, "server {s} did work");
    }

    // The rack-merged view sums counters over every server's shards …
    let merged = rack.merged();
    assert_eq!(
        merged.received,
        rack.servers
            .iter()
            .map(|s| s.dispatcher.received)
            .sum::<u64>()
    );
    assert_eq!(merged.received, report.sent, "nothing lost on the wire");
    assert_eq!(merged.malformed, 0);
    assert_eq!(merged.unknown, 0);

    // … conserves requests end to end across the rack …
    assert_eq!(
        merged.received,
        rack.handled() + merged.dropped + merged.expired + merged.shed_at_shutdown,
        "no request may vanish inside the rack"
    );
    assert_eq!(rack.handled(), report.received + report.dropped);

    // … and concatenates every server's worker telemetry slots.
    assert_eq!(merged.telemetry.workers.len(), 2 * workers_per_server);
    assert_eq!(merged.telemetry.completions(), rack.handled());
    assert!(merged.telemetry.workers.iter().any(|w| w.busy_ns > 0));
}
