//! Cross-crate simulation integration tests: queueing-theory baselines,
//! paper-workload dominance relations, and determinism.

use persephone::core::policy::{Policy, TimeSharingParams};
use persephone::core::time::Nanos;
use persephone::sim::dist::Dist;
use persephone::sim::experiment::{capacity_at_slo, run_point, sweep, Slo, SweepConfig};
use persephone::sim::workload::{TypeMix, Workload};

fn mm1_workload(mean_us: u64) -> Workload {
    Workload::new(
        "mm1",
        vec![TypeMix::new(
            "X",
            1.0,
            Dist::Exponential(Nanos::from_micros(mean_us)),
        )],
    )
}

/// M/M/1 sojourn time is S/(1−ρ); check the simulator end to end against
/// the closed form at ρ = 0.5 (expected sojourn = 2S).
#[test]
fn mm1_matches_closed_form() {
    let wl = mm1_workload(10);
    let cfg = SweepConfig::new(wl, 1, vec![0.5], Nanos::from_millis(600));
    let out = run_point(&Policy::CFcfs, &cfg, 0.5, 99);
    let mean = out.summary.per_type[0].latency_ns.mean;
    assert!(
        (mean - 20_000.0).abs() < 1_200.0,
        "M/M/1 mean sojourn = {mean} ns, expected ≈ 20000"
    );
}

/// Same seed ⇒ bit-identical percentile results (full determinism).
#[test]
fn simulation_is_deterministic() {
    let cfg = SweepConfig::new(
        Workload::extreme_bimodal(),
        8,
        vec![0.8],
        Nanos::from_millis(50),
    );
    let a = run_point(&Policy::Darc, &cfg, 0.8, 1234);
    let b = run_point(&Policy::Darc, &cfg, 0.8, 1234);
    assert_eq!(
        a.summary.overall_slowdown.p999,
        b.summary.overall_slowdown.p999
    );
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.end_time, b.end_time);
    let c = run_point(&Policy::Darc, &cfg, 0.8, 1235);
    assert_ne!(
        a.completions, c.completions,
        "different seed, different run"
    );
}

/// The paper's core dominance claim, on every evaluation workload: at
/// high load DARC's overall p99.9 slowdown beats c-FCFS's.
#[test]
fn darc_dominates_cfcfs_on_every_paper_workload() {
    for wl in [
        Workload::high_bimodal(),
        Workload::extreme_bimodal(),
        Workload::tpcc(),
        Workload::rocksdb(),
    ] {
        // RocksDB's 318 µs mean needs more simulated time per sample; the
        // paper's TPC-C headline comparison point is 85 % load (five types
        // keep the allocation boundary hotter than the bimodals).
        let ms = if wl.mean_service() > Nanos::from_micros(100) {
            2_000
        } else {
            300
        };
        let load = if wl.num_types() > 2 { 0.85 } else { 0.9 };
        let cfg = SweepConfig {
            darc_min_samples: 10_000,
            ..SweepConfig::new(wl.clone(), 14, vec![load], Nanos::from_millis(ms))
        };
        let darc = run_point(&Policy::Darc, &cfg, load, 7);
        let cfcfs = run_point(&Policy::CFcfs, &cfg, load, 7);
        assert!(
            darc.summary.overall_slowdown.p999 < cfcfs.summary.overall_slowdown.p999,
            "{}: DARC {} !< c-FCFS {}",
            wl.name,
            darc.summary.overall_slowdown.p999,
            cfcfs.summary.overall_slowdown.p999
        );
    }
}

/// Figure 1's ordering of policies by sustainable load under the
/// per-type 10× slowdown SLO: DARC > TS(1 µs) ≥ c-FCFS > d-FCFS.
#[test]
fn fig1_policy_ordering_holds() {
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let cfg = SweepConfig {
        darc_min_samples: 5_000,
        ..SweepConfig::new(
            Workload::extreme_bimodal(),
            16,
            loads,
            Nanos::from_millis(150),
        )
    };
    let slo = Slo::PerTypeSlowdown(10.0);
    let cap = |p: &Policy| capacity_at_slo(&sweep(p, &cfg), slo).unwrap_or(0.0);
    let darc = cap(&Policy::Darc);
    let ts = cap(&Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()));
    let cfcfs = cap(&Policy::CFcfs);
    let dfcfs = cap(&Policy::DFcfs);
    assert!(darc > ts, "DARC {darc} !> TS {ts}");
    assert!(ts >= cfcfs, "TS {ts} !>= c-FCFS {cfcfs}");
    assert!(cfcfs > dfcfs, "c-FCFS {cfcfs} !> d-FCFS {dfcfs}");
}

/// Long requests are the price of DARC: their tail is allowed to be worse
/// than under c-FCFS, but they must never be starved (they complete, and
/// their p50 stays within a small multiple).
#[test]
fn darc_does_not_starve_long_requests() {
    let cfg = SweepConfig {
        darc_min_samples: 3_000,
        ..SweepConfig::new(
            Workload::high_bimodal(),
            14,
            vec![0.8],
            Nanos::from_millis(400),
        )
    };
    let darc = run_point(&Policy::Darc, &cfg, 0.8, 3);
    let cfcfs = run_point(&Policy::CFcfs, &cfg, 0.8, 3);
    let d_long = &darc.summary.per_type[1];
    let c_long = &cfcfs.summary.per_type[1];
    assert!(d_long.latency_ns.count > 0, "long requests completed");
    assert!(
        d_long.latency_ns.p50 < c_long.latency_ns.p50 * 10.0,
        "long p50 exploded: {} vs {}",
        d_long.latency_ns.p50,
        c_long.latency_ns.p50
    );
}

/// The non-work-conserving trade-off is real: DARC leaves cores idle
/// (its peak utilization is below c-FCFS's at the same offered load when
/// the load saturates the reserved split), yet still wins on slowdown.
#[test]
fn darc_idles_reserved_cores() {
    let cfg = SweepConfig {
        darc_min_samples: 3_000,
        ..SweepConfig::new(Workload::rocksdb(), 8, vec![0.9], Nanos::from_millis(3_000))
    };
    let darc = run_point(&Policy::Darc, &cfg, 0.9, 5);
    // The GET-reserved core is nearly idle: total busy cores must sit
    // clearly below the worker count even at 90 % offered load.
    let busy = darc.mean_busy_cores();
    assert!(busy < 7.9, "busy cores = {busy}, expected idle reserve");
    assert!(busy > 6.0, "busy cores = {busy}, load should still flow");
}

/// DARC's selective work conservation absorbs bursts of short requests
/// (paper §3: stealing exists so reduced core counts don't destroy burst
/// tolerance): under MMPP-modulated bursty arrivals, DARC still keeps the
/// short tail far below c-FCFS.
#[test]
fn darc_absorbs_bursts_via_stealing() {
    use persephone::sim::engine::{simulate, SimConfig};
    use persephone::sim::policies::{cfcfs::CFcfs, darc::DarcSim};
    use persephone::sim::workload::{ArrivalGen, BurstModel};

    let wl = Workload::extreme_bimodal();
    let dur = Nanos::from_millis(200);
    let bursty = |seed| {
        ArrivalGen::uniform(&wl, 14, 0.75, dur, seed).with_bursts(BurstModel {
            calm_mean: Nanos::from_millis(4),
            burst_mean: Nanos::from_millis(1),
            amplification: 3.0,
        })
    };
    let mut darc = DarcSim::dynamic(&wl, 14, 5_000);
    let darc_out = simulate(&mut darc, bursty(21), 2, dur, &SimConfig::new(14));
    let mut cf = CFcfs::new(14);
    let cf_out = simulate(&mut cf, bursty(21), 2, dur, &SimConfig::new(14));
    let d = darc_out.summary.per_type[0].slowdown.p999;
    let c = cf_out.summary.per_type[0].slowdown.p999;
    assert!(
        d < c / 3.0,
        "bursty shorts: DARC p999 slowdown {d} must be well under c-FCFS {c}"
    );
    // Every burst is eventually absorbed: nothing stranded, all complete.
    assert!(darc_out.completions > 100_000);
}

/// SLO helpers behave sensibly across the sweep API.
#[test]
fn capacity_search_is_monotone_in_slo() {
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let cfg = SweepConfig::new(
        Workload::extreme_bimodal(),
        8,
        loads,
        Nanos::from_millis(100),
    );
    let points = sweep(&Policy::CFcfs, &cfg);
    let tight = capacity_at_slo(&points, Slo::OverallSlowdown(5.0)).unwrap_or(0.0);
    let loose = capacity_at_slo(&points, Slo::OverallSlowdown(500.0)).unwrap_or(0.0);
    assert!(
        loose >= tight,
        "looser SLO must admit at least as much load"
    );
}
