//! End-to-end tests for the scenario engine: every shipped spec in
//! `scenarios/` must parse, round-trip through the TOML renderer, and
//! produce a schema-valid, seed-deterministic `BENCH_*.json` on both
//! backends.

use persephone::scenario::{run_scenario, Backend, Meta, ScenarioSpec};
use persephone_scenario::json::{validate_bench, Json};
use persephone_scenario::toml;

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn shipped_specs() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(scenario_dir()).expect("scenarios/ directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_str().unwrap().to_string();
        out.push((stem, std::fs::read_to_string(&path).unwrap()));
    }
    out.sort();
    out
}

/// A spec small enough that the threaded backend replays it in well
/// under a second even on a single-core machine.
const TINY: &str = r#"
name = "tiny"
description = "integration-test spec"
seed = 99
workers = 2
policies = ["darc"]
load = 0.5
duration_ms = 10.0

[engine]
darc_min_samples = 200

[threaded]
grace_ms = 100

[[types]]
name = "SHORT"
ratio = 0.5
service = { dist = "constant", mean_us = 1.0 }

[[types]]
name = "LONG"
ratio = 0.5
service = { dist = "constant", mean_us = 20.0 }
"#;

#[test]
fn all_shipped_scenarios_parse_and_name_their_file() {
    let specs = shipped_specs();
    assert!(
        specs.len() >= 4,
        "expected the curated suite to ship at least 4 scenarios, found {}",
        specs.len()
    );
    for (stem, text) in &specs {
        let spec = ScenarioSpec::from_toml(text)
            .unwrap_or_else(|e| panic!("scenarios/{stem}.toml rejected: {e}"));
        assert_eq!(
            &spec.name, stem,
            "scenarios/{stem}.toml must set name = \"{stem}\" so the BENCH file matches"
        );
    }
}

#[test]
fn shipped_scenarios_round_trip_through_the_renderer() {
    for (stem, text) in shipped_specs() {
        let table = toml::parse(&text).unwrap_or_else(|e| panic!("scenarios/{stem}.toml: {e}"));
        let rendered = toml::render(&table);
        let reparsed = toml::parse(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of rendered scenarios/{stem}.toml: {e}"));
        assert_eq!(
            table, reparsed,
            "scenarios/{stem}.toml changed across a render/parse round trip"
        );
        // The rendered form must describe the same scenario.
        let a = ScenarioSpec::from_table(&table).unwrap();
        let b = ScenarioSpec::from_table(&reparsed).unwrap();
        assert_eq!(a.build_trace(), b.build_trace(), "scenarios/{stem}.toml");
    }
}

#[test]
fn corrupting_a_shipped_scenario_yields_actionable_errors() {
    let smoke = std::fs::read_to_string(scenario_dir().join("smoke.toml")).unwrap();

    // Typo in a top-level key: rejected, and the error names the typo.
    let typo = smoke.replace("workers = 4", "wrokers = 4");
    let e = ScenarioSpec::from_toml(&typo).expect_err("typo must be rejected");
    let msg = e.to_string();
    assert!(msg.contains("wrokers"), "error should name the typo: {msg}");

    // Ratios that stop summing to 1: rejected with the actual sum.
    let skew = smoke.replace("ratio = 0.5", "ratio = 0.4");
    let e = ScenarioSpec::from_toml(&skew).expect_err("bad ratio sum must be rejected");
    assert!(e.to_string().contains("sum"), "{e}");

    // Broken TOML: the parse error carries a line number.
    let broken = smoke.replace("load = 0.6", "load = ");
    let e = ScenarioSpec::from_toml(&broken).expect_err("broken TOML must be rejected");
    assert!(e.to_string().contains("line"), "{e}");
}

#[test]
fn same_seed_sim_bench_is_byte_identical() {
    let spec = ScenarioSpec::from_toml(TINY).unwrap();
    let a = run_scenario(&spec, &[Backend::Sim], Meta::fixed()).render();
    let b = run_scenario(&spec, &[Backend::Sim], Meta::fixed()).render();
    assert_eq!(a, b, "sim backend must be fully deterministic per seed");

    let report = Json::parse(&a).unwrap();
    let problems = validate_bench(&report);
    assert!(problems.is_empty(), "schema violations: {problems:?}");
}

#[test]
fn changing_the_seed_changes_the_schedule_hash() {
    let spec = ScenarioSpec::from_toml(TINY).unwrap();
    let mut reseeded = ScenarioSpec::from_toml(TINY).unwrap();
    reseeded.seed = 100;
    let a = run_scenario(&spec, &[Backend::Sim], Meta::fixed());
    let b = run_scenario(&reseeded, &[Backend::Sim], Meta::fixed());
    assert_ne!(a.deterministic.schedule_hash, b.deterministic.schedule_hash);
    assert_eq!(a.deterministic.schedule_hash.len(), 16);
}

#[test]
fn threaded_backend_agrees_on_the_deterministic_section() {
    let spec = ScenarioSpec::from_toml(TINY).unwrap();
    let sim = run_scenario(&spec, &[Backend::Sim], Meta::fixed());
    let threaded = run_scenario(&spec, &[Backend::Threaded], Meta::fixed());

    // Everything derived from (spec, seed) is identical across backends;
    // only the measured `runs` may differ.
    let det = |r: &persephone::scenario::BenchReport| {
        let json = Json::parse(&r.render()).unwrap();
        json.get("deterministic").unwrap().render()
    };
    assert_eq!(det(&sim), det(&threaded));

    // The threaded report is schema-valid too, and actually did work.
    let json = Json::parse(&threaded.render()).unwrap();
    let problems = validate_bench(&json);
    assert!(problems.is_empty(), "schema violations: {problems:?}");
    let runs = json.get("runs").unwrap().as_arr().unwrap();
    assert_eq!(runs.len(), 1);
    let completions = runs[0].get("completions").unwrap().as_f64().unwrap();
    let sent = runs[0].get("sent").unwrap().as_f64().unwrap();
    assert!(sent > 0.0);
    assert!(
        completions >= sent * 0.5,
        "threaded replay lost most requests: {completions}/{sent}"
    );
}

#[test]
fn smoke_scenario_runs_on_the_threaded_backend() {
    // The exact spec CI replays: scenarios/smoke.toml, threaded, but with
    // the duration cut down so the test stays fast on small machines.
    let text = std::fs::read_to_string(scenario_dir().join("smoke.toml")).unwrap();
    let mut spec = ScenarioSpec::from_toml(&text).unwrap();
    spec.phases[0].duration_ms = 10.0;
    let report = run_scenario(&spec, &[Backend::Threaded], Meta::fixed());
    let json = Json::parse(&report.render()).unwrap();
    assert!(validate_bench(&json).is_empty());
    assert_eq!(report.runs.len(), 2, "smoke ships two policies");
    for run in &report.runs {
        assert!(run.completions > 0, "{} completed nothing", run.policy);
    }
}
