//! Randomized tests on DARC's reservation and dispatch invariants.
//!
//! These check the *algebra* of Algorithm 2 and the engine's bookkeeping
//! over arbitrary workload statistics — not just the paper's workloads.
//! Seeded with the repo's own xoshiro256++ RNG; a smoke-sized case count
//! runs by default, `--features heavy-testing` deepens the sweep.

use persephone::core::dispatch::{DarcEngine, EngineConfig};
use persephone::core::profile::{demands_of, TypeStat};
use persephone::core::queue::TypedQueue;
use persephone::core::reserve::{reserve, ReserveConfig};
use persephone::core::time::Nanos;
use persephone::core::types::TypeId;
use persephone::sim::rng::Rng;

#[cfg(feature = "heavy-testing")]
const CASES: u64 = 256;
#[cfg(not(feature = "heavy-testing"))]
const CASES: u64 = 32;

fn random_stats(rng: &mut Rng, max_types: u64) -> Vec<TypeStat> {
    let n = 1 + rng.next_below(max_types) as usize;
    let raw: Vec<(f64, f64)> = (0..n)
        .map(|_| (1.0 + rng.next_f64() * 999_999.0, rng.next_f64()))
        .collect();
    let total: f64 = raw.iter().map(|(_, r)| r).sum();
    raw.into_iter()
        .enumerate()
        .map(|(i, (mean, r))| TypeStat {
            ty: TypeId::new(i as u32),
            mean_service_ns: mean,
            ratio: if total > 0.0 { r / total } else { 0.0 },
        })
        .collect()
}

/// Eq. 1: the demand vector is a probability vector whenever any type
/// carries weight.
#[test]
fn demands_form_a_distribution() {
    let mut rng = Rng::new(0xD15);
    for _ in 0..CASES * 4 {
        let stats = random_stats(&mut rng, 8);
        let d = demands_of(&stats);
        assert_eq!(d.len(), stats.len());
        let total: f64 = d.iter().sum();
        let has_weight = stats.iter().any(|s| s.weight() > 0.0);
        if has_weight {
            assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
            assert!(d.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        } else {
            assert_eq!(total, 0.0);
        }
    }
}

/// Algorithm 2 invariants, for any statistics, worker count, and δ.
#[test]
fn reservation_invariants() {
    let mut rng = Rng::new(0xA160);
    for _ in 0..CASES * 4 {
        let stats = random_stats(&mut rng, 8);
        let workers = 1 + rng.next_below(31) as usize;
        let delta = 1.0 + rng.next_f64() * 7.0;
        let cfg = ReserveConfig::new(workers).with_delta(delta);
        let r = reserve(&stats, &cfg);

        // Groups are ordered by ascending mean service time.
        for w in r.groups.windows(2) {
            assert!(w[0].mean_service_ns <= w[1].mean_service_ns + 1e-9);
        }
        // Every group holds at least one worker (min-1 rule / spillway).
        for g in &r.groups {
            assert!(!g.reserved.is_empty(), "empty group reservation");
        }
        // Non-spillway reserved sets are pairwise disjoint.
        let spill: Vec<usize> = r.spillway.iter().map(|w| w.index()).collect();
        let mut seen = vec![false; workers];
        for g in &r.groups {
            for w in &g.reserved {
                let idx = w.index();
                assert!(idx < workers);
                if !spill.contains(&idx) {
                    assert!(!seen[idx], "worker {idx} reserved twice");
                    seen[idx] = true;
                }
            }
        }
        // Stealable workers come strictly after the group's own cores and
        // belong to later groups or the free pool (cycle stealing goes
        // from short to long only).
        for g in &r.groups {
            let own_max = g.reserved.iter().map(|w| w.index()).max().unwrap_or(0);
            for s in &g.stealable {
                assert!(
                    s.index() > own_max || spill.contains(&own_max),
                    "stealable {s} not after reserved {own_max}"
                );
            }
        }
        // Every type with positive weight belongs to exactly one group.
        for s in &stats {
            if s.weight() > 0.0 {
                assert!(r.group_of(s.ty).is_some());
            } else {
                assert!(r.group_of(s.ty).is_none());
            }
        }
        // Eq. 2: waste is bounded by half a core per group.
        assert!(r.expected_waste >= 0.0);
        assert!(r.expected_waste <= 0.5 * r.groups.len() as f64 + 1e-9);
        // Priority order covers exactly the grouped types.
        let order: Vec<TypeId> = r.priority_order().collect();
        let grouped: usize = r.groups.iter().map(|g| g.types.len()).sum();
        assert_eq!(order.len(), grouped);
    }
}

/// Grouping respects δ: within a group, every mean is within δ× the
/// group's shortest mean.
#[test]
fn grouping_respects_delta() {
    let mut rng = Rng::new(0xDE17A);
    for _ in 0..CASES * 4 {
        let stats = random_stats(&mut rng, 8);
        let workers = 1 + rng.next_below(31) as usize;
        let delta = 1.0 + rng.next_f64() * 7.0;
        let cfg = ReserveConfig::new(workers).with_delta(delta);
        let r = reserve(&stats, &cfg);
        let mean = |t: TypeId| stats[t.index()].mean_service_ns;
        for g in &r.groups {
            let base = g.types.iter().map(|t| mean(*t)).fold(f64::MAX, f64::min);
            for t in &g.types {
                assert!(
                    mean(*t) <= base * delta * (1.0 + 1e-12),
                    "type {} mean {} exceeds delta {} x base {}",
                    t,
                    mean(*t),
                    delta,
                    base
                );
            }
        }
    }
}

/// Typed queues are exact FIFOs with exact drop accounting.
#[test]
fn typed_queue_fifo_and_drops() {
    let mut rng = Rng::new(0xF1F0);
    for _ in 0..CASES * 2 {
        let capacity = rng.next_below(16) as usize;
        let ops = rng.next_below(200);
        let mut q: TypedQueue<u64> = TypedQueue::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut drops = 0u64;
        let mut seq = 0u64;
        for _ in 0..ops {
            if rng.next_below(2) == 0 {
                let ok = q.push(seq, Nanos::from_nanos(seq), seq).is_ok();
                if capacity != 0 && model.len() >= capacity {
                    assert!(!ok);
                    drops += 1;
                } else {
                    assert!(ok);
                    model.push_back(seq);
                }
                seq += 1;
            } else {
                assert_eq!(q.pop().map(|e| e.req), model.pop_front());
            }
        }
        assert_eq!(q.len(), model.len());
        assert_eq!(q.drops(), drops);
    }
}

/// The engine conserves requests: everything enqueued is either
/// dropped at enqueue or eventually dispatched exactly once.
#[test]
fn engine_conserves_requests() {
    let mut rng = Rng::new(0xC0)
        // independent stream per case keeps failures reproducible
        .fork();
    for _ in 0..CASES {
        let workers = 1 + rng.next_below(7) as usize;
        let n_arrivals = 1 + rng.next_below(299);
        let mut cfg = EngineConfig::darc(workers);
        cfg.profiler.min_samples = 50;
        let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 3, &[None, None, None]);
        let mut now = Nanos::ZERO;
        let mut enqueued = 0u64;
        let mut completed = 0u64;
        for i in 0..n_arrivals {
            let ty = rng.next_below(3) as u32;
            let service_ns = 1 + rng.next_below(199_999);
            now += Nanos::from_nanos(100);
            if eng.enqueue(TypeId::new(ty), i, now).is_ok() {
                enqueued += 1;
            }
            while let Some(d) = eng.poll(now) {
                now += Nanos::from_nanos(service_ns);
                eng.complete(d.worker, Nanos::from_nanos(service_ns), now);
                completed += 1;
            }
        }
        // Drain whatever is left queued.
        let mut guard = 0;
        while eng.total_pending() > 0 {
            while let Some(d) = eng.poll(now) {
                now += Nanos::from_nanos(1_000);
                eng.complete(d.worker, Nanos::from_nanos(1_000), now);
                completed += 1;
            }
            guard += 1;
            assert!(guard < 10_000, "engine failed to drain");
        }
        assert_eq!(completed, enqueued);
        assert_eq!(eng.free_workers(), workers);
    }
}
