//! Property tests on DARC's reservation and dispatch invariants.
//!
//! These check the *algebra* of Algorithm 2 and the engine's bookkeeping
//! over arbitrary workload statistics — not just the paper's workloads.

use proptest::prelude::*;

use persephone::core::dispatch::{DarcEngine, EngineConfig};
use persephone::core::profile::{demands_of, TypeStat};
use persephone::core::queue::TypedQueue;
use persephone::core::reserve::{reserve, ReserveConfig};
use persephone::core::time::Nanos;
use persephone::core::types::TypeId;

fn stats_strategy(max_types: usize) -> impl Strategy<Value = Vec<TypeStat>> {
    prop::collection::vec((1.0f64..1_000_000.0, 0.0f64..1.0), 1..=max_types).prop_map(|raw| {
        let total: f64 = raw.iter().map(|(_, r)| r).sum();
        raw.into_iter()
            .enumerate()
            .map(|(i, (mean, r))| TypeStat {
                ty: TypeId::new(i as u32),
                mean_service_ns: mean,
                ratio: if total > 0.0 { r / total } else { 0.0 },
            })
            .collect()
    })
}

proptest! {
    /// Eq. 1: the demand vector is a probability vector whenever any type
    /// carries weight.
    #[test]
    fn demands_form_a_distribution(stats in stats_strategy(8)) {
        let d = demands_of(&stats);
        prop_assert_eq!(d.len(), stats.len());
        let total: f64 = d.iter().sum();
        let has_weight = stats.iter().any(|s| s.weight() > 0.0);
        if has_weight {
            prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
            prop_assert!(d.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }

    /// Algorithm 2 invariants, for any statistics, worker count, and δ.
    #[test]
    fn reservation_invariants(
        stats in stats_strategy(8),
        workers in 1usize..32,
        delta in 1.0f64..8.0,
    ) {
        let cfg = ReserveConfig::new(workers).with_delta(delta);
        let r = reserve(&stats, &cfg);

        // Groups are ordered by ascending mean service time.
        for w in r.groups.windows(2) {
            prop_assert!(w[0].mean_service_ns <= w[1].mean_service_ns + 1e-9);
        }
        // Every group holds at least one worker (min-1 rule / spillway).
        for g in &r.groups {
            prop_assert!(!g.reserved.is_empty(), "empty group reservation");
        }
        // Non-spillway reserved sets are pairwise disjoint.
        let spill: Vec<usize> = r.spillway.iter().map(|w| w.index()).collect();
        let mut seen = vec![false; workers];
        for g in &r.groups {
            for w in &g.reserved {
                let idx = w.index();
                prop_assert!(idx < workers);
                if !spill.contains(&idx) {
                    prop_assert!(!seen[idx], "worker {idx} reserved twice");
                    seen[idx] = true;
                }
            }
        }
        // Stealable workers come strictly after the group's own cores and
        // belong to later groups or the free pool (cycle stealing goes
        // from short to long only).
        for g in &r.groups {
            let own_max = g.reserved.iter().map(|w| w.index()).max().unwrap_or(0);
            for s in &g.stealable {
                prop_assert!(
                    s.index() > own_max || spill.contains(&own_max),
                    "stealable {s} not after reserved {own_max}"
                );
            }
        }
        // Every type with positive weight belongs to exactly one group.
        for s in &stats {
            if s.weight() > 0.0 {
                prop_assert!(r.group_of(s.ty).is_some());
            } else {
                prop_assert!(r.group_of(s.ty).is_none());
            }
        }
        // Eq. 2: waste is bounded by half a core per group.
        prop_assert!(r.expected_waste >= 0.0);
        prop_assert!(r.expected_waste <= 0.5 * r.groups.len() as f64 + 1e-9);
        // Priority order covers exactly the grouped types.
        let order: Vec<TypeId> = r.priority_order().collect();
        let grouped: usize = r.groups.iter().map(|g| g.types.len()).sum();
        prop_assert_eq!(order.len(), grouped);
    }

    /// Grouping respects δ: within a group, every mean is within δ× the
    /// group's shortest mean.
    #[test]
    fn grouping_respects_delta(
        stats in stats_strategy(8),
        workers in 1usize..32,
        delta in 1.0f64..8.0,
    ) {
        let cfg = ReserveConfig::new(workers).with_delta(delta);
        let r = reserve(&stats, &cfg);
        let mean = |t: TypeId| stats[t.index()].mean_service_ns;
        for g in &r.groups {
            let base = g.types.iter().map(|t| mean(*t)).fold(f64::MAX, f64::min);
            for t in &g.types {
                prop_assert!(
                    mean(*t) <= base * delta * (1.0 + 1e-12),
                    "type {} mean {} exceeds delta {} x base {}",
                    t, mean(*t), delta, base
                );
            }
        }
    }

    /// Typed queues are exact FIFOs with exact drop accounting.
    #[test]
    fn typed_queue_fifo_and_drops(
        capacity in 0usize..16,
        ops in prop::collection::vec(prop::bool::ANY, 0..200),
    ) {
        let mut q: TypedQueue<u64> = TypedQueue::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut drops = 0u64;
        let mut seq = 0u64;
        for push in ops {
            if push {
                let ok = q.push(seq, Nanos::from_nanos(seq), seq).is_ok();
                if capacity != 0 && model.len() >= capacity {
                    prop_assert!(!ok);
                    drops += 1;
                } else {
                    prop_assert!(ok);
                    model.push_back(seq);
                }
                seq += 1;
            } else {
                prop_assert_eq!(q.pop().map(|e| e.req), model.pop_front());
            }
        }
        prop_assert_eq!(q.len(), model.len());
        prop_assert_eq!(q.drops(), drops);
    }

    /// The engine conserves requests: everything enqueued is either
    /// dropped at enqueue or eventually dispatched exactly once.
    #[test]
    fn engine_conserves_requests(
        workers in 1usize..8,
        arrivals in prop::collection::vec((0u32..3, 1u64..200_000), 1..300),
    ) {
        let mut cfg = EngineConfig::darc(workers);
        cfg.profiler.min_samples = 50;
        let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 3, &[None, None, None]);
        let mut now = Nanos::ZERO;
        let mut enqueued = 0u64;
        let mut completed = 0u64;
        for (i, (ty, service_ns)) in arrivals.iter().enumerate() {
            now += Nanos::from_nanos(100);
            if eng.enqueue(TypeId::new(*ty), i as u64, now).is_ok() {
                enqueued += 1;
            }
            while let Some(d) = eng.poll(now) {
                now += Nanos::from_nanos(*service_ns);
                eng.complete(d.worker, Nanos::from_nanos(*service_ns), now);
                completed += 1;
            }
        }
        // Drain whatever is left queued.
        let mut guard = 0;
        while eng.total_pending() > 0 {
            while let Some(d) = eng.poll(now) {
                now += Nanos::from_nanos(1_000);
                eng.complete(d.worker, Nanos::from_nanos(1_000), now);
                completed += 1;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "engine failed to drain");
        }
        prop_assert_eq!(completed, enqueued);
        prop_assert_eq!(eng.free_workers(), workers);
    }
}
