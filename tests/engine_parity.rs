//! Decision-parity tests for the extracted baseline engines.
//!
//! The dispatch.rs split (PR 4) must not change a single scheduling
//! decision: the dedicated [`CfcfsEngine`] has to replay `DarcEngine`'s
//! c-FCFS warm-up placement path decision for decision,
//! and [`SjfEngine`] has to order a hinted trace exactly as the
//! simulator's pre-adapterization shortest-job-first did. Both tests
//! drive the engines through the [`ScheduleEngine`] trait with the same
//! seeded arrival trace and compare the full `(worker, request)` dispatch
//! sequences, not just aggregate counts.

use persephone::prelude::*;

/// A deterministic arrival trace: `(type, request id, arrival time)`.
/// SplitMix64 keeps it seed-stable across runs and platforms.
fn trace(seed: u64, n: u64, num_types: u32, gap_ns: u64) -> Vec<(TypeId, u64, Nanos)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let ty = TypeId::new((next() % num_types as u64) as u32);
            // Irregular but monotone arrival times.
            let at = Nanos::from_nanos(i * gap_ns + next() % gap_ns);
            (ty, i, at)
        })
        .collect()
}

/// Drives `engine` through arrivals, polls, and completions, recording
/// every dispatch decision. `service(ty)` is the deterministic service
/// time; completions retire in dispatch order, `inflight_cap` at a time,
/// so both engines see identical free-worker sequences.
fn drive<E: ScheduleEngine<u64> + ?Sized>(
    engine: &mut E,
    trace: &[(TypeId, u64, Nanos)],
    service: impl Fn(TypeId) -> Nanos,
) -> Vec<(usize, u64)> {
    let mut decisions = Vec::new();
    let mut inflight: std::collections::VecDeque<(WorkerId, TypeId)> =
        std::collections::VecDeque::new();
    for (i, &(ty, id, at)) in trace.iter().enumerate() {
        engine.enqueue(ty, id, at).expect("unbounded queues");
        while let Some(d) = engine.poll(at) {
            decisions.push((d.worker.index(), d.req));
            inflight.push_back((d.worker, d.ty));
        }
        // Retire the oldest in-flight request every other arrival so the
        // engines alternate between queue pressure and free workers.
        if i % 2 == 1 {
            if let Some((w, wty)) = inflight.pop_front() {
                engine.complete(w, service(wty), at);
                while let Some(d) = engine.poll(at) {
                    decisions.push((d.worker.index(), d.req));
                    inflight.push_back((d.worker, d.ty));
                }
            }
        }
    }
    // Drain: complete everything still running, polling as workers free.
    let end = trace.last().map(|&(_, _, at)| at).unwrap_or(Nanos::ZERO);
    while let Some((w, wty)) = inflight.pop_front() {
        engine.complete(w, service(wty), end);
        while let Some(d) = engine.poll(end) {
            decisions.push((d.worker.index(), d.req));
            inflight.push_back((d.worker, d.ty));
        }
    }
    decisions
}

/// `DarcEngine`'s c-FCFS warm-up phase and the dedicated `CfcfsEngine`
/// make byte-identical decisions on the same trace (they share the same
/// FCFS placement path).
#[test]
fn cfcfs_engine_replays_darc_warmup_fcfs() {
    let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
    let service = |ty: TypeId| hints[ty.index()].unwrap();
    let arrivals = trace(0xC0FFEE, 4_000, 2, 700);

    // Unhinted + an unfillable window: the engine stays in c-FCFS
    // warm-up for the whole trace.
    let mut warmup_cfg = EngineConfig::darc(6);
    warmup_cfg.profiler.min_samples = u64::MAX;
    let mut warmup: DarcEngine<u64> = DarcEngine::new(warmup_cfg, 2, &[None, None]);
    let warmup_decisions = drive(&mut warmup, &arrivals, service);

    let mut dedicated: CfcfsEngine<u64> = CfcfsEngine::new(EngineConfig::darc(6), 2, &hints);
    let dedicated_decisions = drive(&mut dedicated, &arrivals, service);

    assert_eq!(
        warmup_decisions.len(),
        arrivals.len(),
        "every request dispatched exactly once"
    );
    assert_eq!(
        warmup_decisions, dedicated_decisions,
        "the split must not change a single c-FCFS decision"
    );
    assert_eq!(ScheduleEngine::total_pending(&warmup), 0);
    assert_eq!(ScheduleEngine::total_pending(&dedicated), 0);
    assert_eq!(
        ScheduleEngine::free_workers(&warmup),
        ScheduleEngine::free_workers(&dedicated)
    );
}

/// `build_engine(Policy::CFcfs)` routes to the same decisions as the
/// concrete engine — the boxed and monomorphized paths agree.
#[test]
fn boxed_cfcfs_engine_matches_concrete() {
    let hints = [Some(Nanos::from_micros(2)), Some(Nanos::from_micros(50))];
    let service = |ty: TypeId| hints[ty.index()].unwrap();
    let arrivals = trace(0xBEEF, 1_000, 2, 900);

    let mut boxed = build_engine::<u64>(&Policy::CFcfs, EngineConfig::darc(4), 2, &hints);
    let boxed_decisions = drive(boxed.as_mut(), &arrivals, service);

    let mut concrete: CfcfsEngine<u64> = CfcfsEngine::new(EngineConfig::darc(4), 2, &hints);
    let concrete_decisions = drive(&mut concrete, &arrivals, service);

    assert_eq!(boxed_decisions, concrete_decisions);
}

/// Reference shortest-job-first exactly as the simulator's pre-adapter
/// `sjf.rs` implemented it: a min-heap keyed by `(service, seq)` with
/// FIFO tie-breaks, dispatching to the lowest-indexed free worker.
struct ReferenceSjf {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Nanos, u64, u64)>>,
    seq: u64,
    free: Vec<bool>,
}

impl ReferenceSjf {
    fn new(workers: usize) -> Self {
        ReferenceSjf {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            free: vec![true; workers],
        }
    }

    fn push(&mut self, svc: Nanos, id: u64) {
        self.seq += 1;
        self.heap.push(std::cmp::Reverse((svc, self.seq, id)));
    }

    fn poll(&mut self) -> Option<(usize, u64)> {
        let w = self.free.iter().position(|&f| f)?;
        let std::cmp::Reverse((_, _, id)) = self.heap.pop()?;
        self.free[w] = false;
        Some((w, id))
    }
}

/// With per-type (hinted) service times, `SjfEngine` reproduces the
/// simulator's old heap-based SJF decision for decision.
#[test]
fn sjf_engine_matches_presplit_simulator_sjf() {
    let hints = [
        Some(Nanos::from_micros(1)),
        Some(Nanos::from_micros(10)),
        Some(Nanos::from_micros(100)),
    ];
    let service = |ty: TypeId| hints[ty.index()].unwrap();
    let arrivals = trace(0x5EED, 3_000, 3, 800);
    let workers = 4;

    // Freeze profiling so estimates stay at the hints, matching the
    // oracle's fixed per-type service times.
    let mut cfg = EngineConfig::darc(workers);
    cfg.profiler.min_samples = u64::MAX;
    let mut engine: SjfEngine<u64> = SjfEngine::new(cfg, 3, &hints);
    let engine_decisions = drive(&mut engine, &arrivals, service);

    // Replay the same drive schedule against the reference heap.
    let mut reference = ReferenceSjf::new(workers);
    let mut expected = Vec::new();
    let mut inflight: std::collections::VecDeque<(usize, TypeId)> =
        std::collections::VecDeque::new();
    let mut ty_of = std::collections::HashMap::new();
    for (i, &(ty, id, _at)) in arrivals.iter().enumerate() {
        ty_of.insert(id, ty);
        reference.push(service(ty), id);
        while let Some((w, rid)) = reference.poll() {
            expected.push((w, rid));
            inflight.push_back((w, ty_of[&rid]));
        }
        if i % 2 == 1 {
            if let Some((w, _)) = inflight.pop_front() {
                reference.free[w] = true;
                while let Some((w2, rid)) = reference.poll() {
                    expected.push((w2, rid));
                    inflight.push_back((w2, ty_of[&rid]));
                }
            }
        }
    }
    while let Some((w, _)) = inflight.pop_front() {
        reference.free[w] = true;
        while let Some((w2, rid)) = reference.poll() {
            expected.push((w2, rid));
            inflight.push_back((w2, ty_of[&rid]));
        }
    }

    assert_eq!(engine_decisions.len(), arrivals.len());
    assert_eq!(
        engine_decisions, expected,
        "SjfEngine must replay the simulator's heap-based SJF"
    );
}
