//! Chaos tests: deterministic fault injection against the threaded
//! runtime. A stalled worker must degrade the service (quarantine, shed,
//! answer `Dropped`) instead of crashing or hanging it; a lossy wire must
//! surface as client-side timeouts, not leaked bookkeeping; a full worker
//! ring must defer, never panic; and shutdown must answer queued work.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing assumptions.
// The model-check tier covers the rings directly in `model_rings.rs` /
// `model_seqlock.rs`; the default-features tier runs this binary as-is.
#![cfg(not(feature = "model-check"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use persephone::net::pool::PacketBuf;
use persephone::net::{nic, spsc};
use persephone::prelude::*;
use persephone::runtime::clock::RuntimeClock;
use persephone::runtime::dispatcher::{run_dispatcher, Pending};
use persephone::runtime::messages::{Completion, WorkMsg};

/// A worker that stalls for 200 ms mid-run is quarantined (its reserved
/// core re-covered), queued requests past their SLO deadline are answered
/// with `Dropped`, and the server neither panics nor hangs at shutdown.
#[test]
fn stalled_worker_degrades_gracefully() {
    let services = [Nanos::from_micros(10), Nanos::from_millis(5)];
    let cal = SpinCalibration::calibrate();
    let stall = Duration::from_millis(200);
    let (mut client, server_port) = nic::loopback(2048);
    let handle = ServerBuilder::new(3, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .tune_engine(|e| {
            e.overload = OverloadConfig {
                deadline_slowdown: Some(10.0),
                slo_queues: None, // isolate deadline shedding from queue-bound drops
                stall_factor: Some(5.0),
                min_stall: Nanos::from_millis(10),
            }
        })
        .faults(FaultPlan::none().stall_worker(0, 3, stall))
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(1024, 128);
    // Long requests alone demand 2.5 of 3 cores; the 200 ms stall tips
    // the long type into overload so deadline shedding must engage.
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.5,
            payload: vec![],
        },
        LoadType {
            ty: 1,
            ratio: 0.5,
            payload: vec![],
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_000.0,
        Duration::from_millis(600),
        Duration::from_secs(3),
        41,
    );
    let server = handle.stop();

    // The fault actually fired.
    assert_eq!(server.workers[0].stalls_injected, 1);
    // The dispatcher noticed the stall and later forgave it.
    assert!(
        server.dispatcher.quarantines >= 1,
        "stalled worker must be quarantined"
    );
    assert!(
        server.dispatcher.releases >= 1,
        "late completion must lift the quarantine"
    );
    // SLO deadlines shed the backlog the stall created.
    assert!(
        server.dispatcher.expired >= 1,
        "stall-induced backlog must be deadline-shed"
    );
    // The counters surface in telemetry too.
    let tel = &server.dispatcher.telemetry;
    assert!(tel.workers.iter().map(|w| w.quarantines).sum::<u64>() >= 1);
    assert!(tel.types.iter().map(|t| t.counters.expired).sum::<u64>() >= 1);
    // Every request is accounted for: answered, shed, or written off.
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "no request may vanish silently"
    );
    assert_eq!(report.rejected, 0);
    // Shorts kept flowing around the stalled core: the spillway covers the
    // quarantined reservation, so the median short never waits out the
    // 200 ms stall.
    assert!(report.latencies_ns[0].len() > 50, "shorts were served");
    let short_p50 = report.percentile_ns(0, 0.5).unwrap();
    assert!(
        short_p50 < 50_000_000,
        "short median {short_p50} ns suggests shorts waited on the stalled core"
    );
}

/// Packets lost on the wire are written off by the client's timeout
/// accounting — the in-flight slab reclaims their slots instead of
/// leaking them, and the totals still balance.
#[test]
fn nic_drops_are_timed_out_by_the_client() {
    let services = [Nanos::from_micros(10), Nanos::from_micros(100)];
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = nic::loopback_with_faults(512, NicFaultPlan::drop_every(7));
    let handle = ServerBuilder::new(2, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(256, 128);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.9,
            payload: vec![],
        },
        LoadType {
            ty: 1,
            ratio: 0.1,
            payload: vec![],
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_000.0,
        Duration::from_millis(300),
        Duration::from_millis(700),
        43,
    );
    let server = handle.stop();

    assert!(client.fault_drops() > 0, "the lossy wire must have fired");
    assert_eq!(
        report.timed_out,
        client.fault_drops(),
        "exactly the wire-dropped requests time out"
    );
    assert_eq!(
        report.received + report.dropped + report.timed_out,
        report.sent
    );
    // The server only ever saw the surviving packets.
    assert_eq!(
        server.dispatcher.received,
        report.sent - client.fault_drops()
    );
}

/// Regression: a full dispatcher→worker ring defers the dispatch instead
/// of panicking the dispatcher thread (the seed crashed here).
#[test]
fn full_work_ring_is_deferred_not_panicked() {
    const JUNK_ID: u64 = u64::MAX;
    let (mut client, server_port) = nic::loopback(64);
    let dispatcher_ctx = server_port.context();
    let worker_ctx = server_port.context();
    let engine: DarcEngine<Pending> =
        DarcEngine::new(EngineConfig::darc(1), 1, &[Some(Nanos::from_micros(10))]);

    // A depth-2 work ring, pre-filled to the brim with junk so the very
    // first real dispatch finds it full.
    let (mut work_tx, mut work_rx) = spsc::channel::<WorkMsg>(2);
    let (mut completion_tx, completion_rx) = spsc::channel::<Completion>(2);
    let mut junk = 0;
    loop {
        let mut buf = PacketBuf::with_capacity(32);
        buf.fill(b"junk");
        match work_tx.push(WorkMsg::Request {
            buf,
            ty: persephone::core::types::TypeId::new(0),
            id: JUNK_ID,
        }) {
            Ok(()) => junk += 1,
            Err(_) => break,
        }
    }
    assert!(junk >= 2, "ring pre-filled");

    // The fake worker sleeps first — the dispatcher meets the full ring
    // *now* — then drains junk (no completions: the engine never assigned
    // it), serves the one real request, and exits on Shutdown.
    let worker = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        let mut handled = 0u64;
        loop {
            match work_rx.pop() {
                Some(WorkMsg::Request { mut buf, id, .. }) => {
                    if id == JUNK_ID {
                        continue;
                    }
                    let len = buf.len();
                    wire::request_to_response_in_place(
                        &mut buf.raw_mut()[..wire::HEADER_LEN],
                        wire::Status::Ok,
                    )
                    .unwrap();
                    buf.set_len(len);
                    worker_ctx.send(buf).unwrap();
                    let mut c = Completion {
                        service: Nanos::from_micros(10),
                    };
                    while let Err(back) = completion_tx.push(c) {
                        c = back.0;
                        std::thread::yield_now();
                    }
                    handled += 1;
                }
                Some(WorkMsg::Shutdown) => return handled,
                None => std::thread::yield_now(),
            }
        }
    });

    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = shutdown.clone();
    let dispatcher = std::thread::spawn(move || {
        run_dispatcher(
            server_port,
            dispatcher_ctx,
            Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 1)),
            engine,
            vec![work_tx],
            vec![completion_rx],
            flag,
            RuntimeClock::start(),
            None,
        )
    });

    let mut req = PacketBuf::with_capacity(64);
    let len = wire::encode_request(req.raw_mut(), 0, 7, b"real").unwrap();
    req.set_len(len);
    client.send(req).unwrap();

    // The response arrives once the worker wakes and the dispatcher
    // re-offers the held message — the seed would have panicked instead.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut response = None;
    while response.is_none() && Instant::now() < deadline {
        match client.recv() {
            Some(pkt) => response = Some(pkt),
            None => std::thread::yield_now(),
        }
    }
    let response = response.expect("real request answered despite the full ring");
    let (hdr, _) = wire::decode(response.as_slice()).unwrap();
    assert_eq!(hdr.id, 7);
    assert_eq!(wire::response_status(&hdr), Some(wire::Status::Ok));

    shutdown.store(true, Ordering::Release);
    let report = dispatcher.join().expect("dispatcher must not panic");
    assert_eq!(report.dispatched, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(worker.join().unwrap(), 1);
}

/// Shutdown with a backlog answers every queued request with `Dropped`
/// instead of silently discarding it (the seed's `drain` just dropped
/// the buffers on the floor).
#[test]
fn shutdown_answers_queued_requests_with_dropped() {
    let services = [Nanos::from_millis(5)];
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = nic::loopback(256);
    let handle = ServerBuilder::new(1, 1)
        .hints(vec![Some(services[0])])
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 1))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    let mut pool = BufferPool::new(64, 128);
    let total: u64 = 30;
    for id in 0..total {
        let mut buf = pool.alloc().unwrap();
        let len = wire::encode_request(buf.raw_mut(), 0, id, b"x").unwrap();
        buf.set_len(len);
        client.send(buf).unwrap();
    }
    // Let a handful of the 5 ms requests through, then pull the plug with
    // most of the backlog still queued.
    std::thread::sleep(Duration::from_millis(20));
    let server = handle.stop();

    let deadline = Instant::now() + Duration::from_secs(5);
    let (mut ok, mut dropped) = (0u64, 0u64);
    while ok + dropped < total && Instant::now() < deadline {
        match client.recv() {
            Some(pkt) => {
                let (hdr, _) = wire::decode(pkt.as_slice()).unwrap();
                match wire::response_status(&hdr) {
                    Some(wire::Status::Ok) => ok += 1,
                    Some(wire::Status::Dropped) => dropped += 1,
                    other => panic!("unexpected status {other:?}"),
                }
            }
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(ok + dropped, total, "every request is answered");
    assert!(ok >= 1, "requests served before the plug was pulled");
    assert!(
        server.dispatcher.shed_at_shutdown >= 1,
        "the backlog was shed, not discarded"
    );
    assert_eq!(server.dispatcher.shed_at_shutdown, dropped);
    assert_eq!(server.handled(), ok);
    assert_eq!(server.dispatcher.dropped, 0, "no flow-control drops here");
}
