//! Property tests for the lock-free rings against a model queue.
//!
//! Single-threaded model checks (arbitrary push/pop interleavings against
//! a `VecDeque`) plus randomized two-thread stress for the SPSC ring.
//! These complement the unit and stress tests inside `persephone-net`.

use std::collections::VecDeque;

use proptest::prelude::*;

use persephone::net::{mpsc, spsc};

proptest! {
    /// The SPSC ring agrees with a FIFO model on every interleaving.
    #[test]
    fn spsc_matches_model(
        capacity in 1usize..64,
        ops in prop::collection::vec(prop::bool::ANY, 0..400),
    ) {
        let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
        let real_cap = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for push in ops {
            if push {
                let ok = tx.push(seq).is_ok();
                if model.len() < real_cap {
                    prop_assert!(ok, "push rejected below capacity");
                    model.push_back(seq);
                } else {
                    prop_assert!(!ok, "push accepted beyond capacity");
                }
                seq += 1;
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
        }
        prop_assert_eq!(rx.len(), model.len());
    }

    /// The MPSC ring agrees with a FIFO model when used single-producer.
    #[test]
    fn mpsc_matches_model(
        capacity in 1usize..64,
        ops in prop::collection::vec(prop::bool::ANY, 0..400),
    ) {
        let (tx, mut rx) = mpsc::channel::<u64>(capacity);
        let real_cap = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for push in ops {
            if push {
                let ok = tx.push(seq).is_ok();
                if model.len() < real_cap {
                    prop_assert!(ok);
                    model.push_back(seq);
                } else {
                    prop_assert!(!ok);
                }
                seq += 1;
            } else {
                prop_assert_eq!(rx.pop(), model.pop_front());
            }
        }
    }

    /// Two-thread SPSC transfer delivers every value exactly once, in
    /// order, for random capacities and message counts.
    #[test]
    fn spsc_two_thread_transfer(
        capacity in 1usize..32,
        count in 1u64..20_000,
    ) {
        let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..count {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(spsc::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < count {
            match rx.pop() {
                Some(v) => {
                    prop_assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(rx.pop(), None);
    }
}

/// Wire-format round trips for arbitrary payloads and ids.
mod wire_props {
    use super::*;
    use persephone::net::wire;

    proptest! {
        #[test]
        fn encode_decode_round_trip(
            ty in 0u32..u32::MAX,
            id in 0u64..u64::MAX,
            payload in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            let mut buf = vec![0u8; wire::HEADER_LEN + payload.len()];
            let len = wire::encode_request(&mut buf, ty, id, &payload).unwrap();
            prop_assert_eq!(len, buf.len());
            let (hdr, got) = wire::decode(&buf).unwrap();
            prop_assert_eq!(hdr.kind, wire::Kind::Request);
            prop_assert_eq!(hdr.ty, ty);
            prop_assert_eq!(hdr.id, id);
            prop_assert_eq!(got, &payload[..]);
        }

        #[test]
        fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            // Any byte soup must either decode or produce a typed error.
            let _ = wire::decode(&bytes);
        }

        #[test]
        fn in_place_response_preserves_payload(
            ty in 0u32..1_000,
            id in any::<u64>(),
            payload in prop::collection::vec(any::<u8>(), 0..128),
        ) {
            let mut buf = vec![0u8; wire::HEADER_LEN + payload.len()];
            wire::encode_request(&mut buf, ty, id, &payload).unwrap();
            wire::request_to_response_in_place(&mut buf, wire::Status::Ok).unwrap();
            let (hdr, got) = wire::decode(&buf).unwrap();
            prop_assert_eq!(hdr.kind, wire::Kind::Response);
            prop_assert_eq!(hdr.id, id);
            prop_assert_eq!(got, &payload[..]);
        }
    }
}
