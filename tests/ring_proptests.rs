//! Randomized property tests for the lock-free rings against a model
//! queue, plus wire-format round trips.
//!
//! Seeded with the repo's own xoshiro256++ [`persephone::sim::rng::Rng`]
//! so the suite is deterministic and dependency-free. A smoke-sized set
//! of cases runs by default; build with `--features heavy-testing` for
//! the deep sweep.

use std::collections::VecDeque;

use persephone::net::{mpsc, spsc};
use persephone::sim::rng::Rng;

#[cfg(feature = "heavy-testing")]
const CASES: u64 = 256;
#[cfg(not(feature = "heavy-testing"))]
const CASES: u64 = 32;

/// The SPSC ring agrees with a FIFO model on random interleavings.
#[test]
fn spsc_matches_model() {
    let mut rng = Rng::new(0x5150);
    for _ in 0..CASES {
        let capacity = 1 + rng.next_below(63) as usize;
        let ops = rng.next_below(400);
        let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
        let real_cap = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for _ in 0..ops {
            if rng.next_below(2) == 0 {
                let ok = tx.push(seq).is_ok();
                if model.len() < real_cap {
                    assert!(ok, "push rejected below capacity");
                    model.push_back(seq);
                } else {
                    assert!(!ok, "push accepted beyond capacity");
                }
                seq += 1;
            } else {
                assert_eq!(rx.pop(), model.pop_front());
            }
        }
        assert_eq!(rx.len(), model.len());
    }
}

/// The MPSC ring agrees with a FIFO model when used single-producer.
#[test]
fn mpsc_matches_model() {
    let mut rng = Rng::new(0x3153);
    for _ in 0..CASES {
        let capacity = 1 + rng.next_below(63) as usize;
        let ops = rng.next_below(400);
        let (tx, mut rx) = mpsc::channel::<u64>(capacity);
        let real_cap = tx.capacity();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut seq = 0u64;
        for _ in 0..ops {
            if rng.next_below(2) == 0 {
                let ok = tx.push(seq).is_ok();
                if model.len() < real_cap {
                    assert!(ok);
                    model.push_back(seq);
                } else {
                    assert!(!ok);
                }
                seq += 1;
            } else {
                assert_eq!(rx.pop(), model.pop_front());
            }
        }
    }
}

/// Two-thread SPSC transfer delivers every value exactly once, in
/// order, for random capacities and message counts.
#[test]
fn spsc_two_thread_transfer() {
    let mut rng = Rng::new(0x7152);
    let rounds = CASES.min(24);
    for _ in 0..rounds {
        let capacity = 1 + rng.next_below(31) as usize;
        let count = 1 + rng.next_below(20_000);
        let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..count {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(spsc::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < count {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}

/// Randomized *structural* parameters driven through the exhaustive
/// model checker: the seeded generator picks ring capacity, message
/// count, and single-vs-batch API, and `persephone_check::model`
/// explores every bounded interleaving of each generated scenario
/// against the real SPSC code. Randomization covers the parameter
/// space; the checker covers the schedule space. Enable with
/// `--features model-check` (stack with `heavy-testing` for more
/// scenarios and a deeper preemption bound via `Config::auto`).
#[cfg(feature = "model-check")]
mod model_props {
    use super::{Rng, VecDeque};
    use persephone::net::spsc;
    use persephone_check::{model, thread};

    #[cfg(feature = "heavy-testing")]
    const SCENARIOS: u64 = 8;
    #[cfg(not(feature = "heavy-testing"))]
    const SCENARIOS: u64 = 4;

    fn transfer_scenario(capacity: usize, count: u64, batch: bool) -> impl Fn() + Send + Sync {
        move || {
            let (mut tx, mut rx) = spsc::channel::<u64>(capacity);
            let producer = thread::spawn(move || {
                if batch {
                    let mut src: VecDeque<u64> = (0..count).collect();
                    while !src.is_empty() {
                        if tx.push_batch(&mut src) == 0 {
                            thread::yield_now();
                        }
                    }
                } else {
                    for i in 0..count {
                        let mut v = i;
                        loop {
                            match tx.push(v) {
                                Ok(()) => break,
                                Err(spsc::Full(back)) => {
                                    v = back;
                                    thread::yield_now();
                                }
                            }
                        }
                    }
                }
            });
            let mut expect = 0u64;
            while expect < count {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expect, "in-order, exactly-once delivery");
                        expect += 1;
                    }
                    None => thread::yield_now(),
                }
            }
            producer.join();
            assert_eq!(rx.pop(), None);
        }
    }

    /// Each generated (capacity, count, api) scenario is explored
    /// exhaustively within the checker's bounds. Scenarios stay tiny —
    /// the schedule space, not the message count, is the coverage axis.
    #[test]
    fn generated_spsc_scenarios_hold_under_model() {
        let mut rng = Rng::new(0x5EED);
        for case in 0..SCENARIOS {
            let capacity = 1 + rng.next_below(2) as usize; // 1..=2 (cap rounds to 2)
            let count = 1 + rng.next_below(3); // 1..=3 values
            let batch = rng.next_below(2) == 1;
            eprintln!("model scenario {case}: capacity={capacity} count={count} batch={batch}");
            model(transfer_scenario(capacity, count, batch));
        }
    }
}

/// Wire-format round trips for random payloads and ids.
mod wire_props {
    use super::{Rng, CASES};
    use persephone::net::wire;

    fn random_bytes(rng: &mut Rng, max_len: u64) -> Vec<u8> {
        let len = rng.next_below(max_len) as usize;
        (0..len).map(|_| rng.next_below(256) as u8).collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut rng = Rng::new(0xA11CE);
        for _ in 0..CASES * 4 {
            let ty = rng.next_u64() as u32;
            let id = rng.next_u64();
            let payload = random_bytes(&mut rng, 512);
            let mut buf = vec![0u8; wire::HEADER_LEN + payload.len()];
            let len = wire::encode_request(&mut buf, ty, id, &payload).unwrap();
            assert_eq!(len, buf.len());
            let (hdr, got) = wire::decode(&buf).unwrap();
            assert_eq!(hdr.kind, wire::Kind::Request);
            assert_eq!(hdr.ty, ty);
            assert_eq!(hdr.id, id);
            assert_eq!(got, &payload[..]);
        }
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        let mut rng = Rng::new(0xBAD);
        for _ in 0..CASES * 8 {
            // Any byte soup must either decode or produce a typed error.
            let bytes = random_bytes(&mut rng, 256);
            let _ = wire::decode(&bytes);
        }
    }

    #[test]
    fn in_place_response_preserves_payload() {
        let mut rng = Rng::new(0xC0DE);
        for _ in 0..CASES * 4 {
            let ty = rng.next_below(1_000) as u32;
            let id = rng.next_u64();
            let payload = random_bytes(&mut rng, 128);
            let mut buf = vec![0u8; wire::HEADER_LEN + payload.len()];
            wire::encode_request(&mut buf, ty, id, &payload).unwrap();
            wire::request_to_response_in_place(&mut buf, wire::Status::Ok).unwrap();
            let (hdr, got) = wire::decode(&buf).unwrap();
            assert_eq!(hdr.kind, wire::Kind::Response);
            assert_eq!(hdr.id, id);
            assert_eq!(got, &payload[..]);
        }
    }
}
