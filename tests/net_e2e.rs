//! End-to-end tests over real UDP sockets: a sharded server bound with
//! `Transport::Udp` serving an external-style client through
//! 127.0.0.1 datagrams, exactly as the two-process
//! `udp_server` / `loadgen` pair would — plus a chaos run with injected
//! datagram loss.
//!
//! Rates are deliberately gentle: CI boxes can be single-core, and the
//! client, two dispatchers, and four workers all timeshare it.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing
// assumptions. The model-check tier covers the rings directly in
// `model_rings.rs` / `model_seqlock.rs`.
#![cfg(not(feature = "model-check"))]

use std::time::Duration;

use persephone::prelude::*;

fn service_payload(ns: u64) -> Vec<u8> {
    ns.to_le_bytes().to_vec()
}

fn udp_builder(workers: usize, shards: usize) -> ServerBuilder {
    let cal = SpinCalibration::calibrate();
    ServerBuilder::new(workers, 2)
        .shards(shards)
        .transport(Transport::Udp(std::net::SocketAddr::from((
            [127, 0, 0, 1],
            0,
        ))))
        .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
        .handler_factory(move |_worker| {
            Box::new(PayloadSpinHandler::new(cal, Nanos::from_millis(1)))
        })
}

/// Two dispatcher shards on two real sockets serve an open-loop client
/// end to end: the client ledger balances, both shards carry traffic,
/// nothing vanishes inside the server, and the merged telemetry agrees
/// with the per-worker reports — the same guarantees the loopback
/// sharded e2e proves, now across the kernel's UDP stack.
#[test]
fn udp_two_shard_server_serves_external_style_client() {
    let (handle, bound) = udp_builder(4, 2).start().expect("bind shard sockets");
    let addrs = bound.into_udp_addrs();
    assert_eq!(addrs.len(), 2, "one socket per shard");
    assert_ne!(addrs[0].port(), addrs[1].port());

    let mut client = udp::client(
        &addrs,
        Steering::Rss,
        NicFaultPlan::default(),
        UdpConfig::default(),
    )
    .expect("bind client socket");
    let mut pool = BufferPool::new(256, 512);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.8,
            payload: service_payload(1_000),
        },
        LoadType {
            ty: 1,
            ratio: 0.2,
            payload: service_payload(50_000),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_000.0,
        Duration::from_millis(400),
        Duration::from_secs(2),
        7,
    );
    let server = handle.stop();

    assert!(report.sent > 50, "sent = {}", report.sent);
    assert!(report.received > 0, "some responses made it back");
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "client totals balance"
    );

    // RSS spread the wire ids across both real sockets.
    assert_eq!(report.per_queue_sent.len(), 2);
    assert!(
        report.per_queue_sent.iter().all(|&q| q > 0),
        "both sockets carried traffic: {:?}",
        report.per_queue_sent
    );
    assert_eq!(report.per_queue_sent.iter().sum::<u64>(), report.sent);
    let stats = client
        .udp_stats()
        .expect("a UDP client exposes socket stats");
    assert_eq!(stats.tx_datagrams, report.sent);
    assert_eq!(
        stats.rx_datagrams,
        report.received + report.dropped + report.rejected
    );

    // Server side: both shards saw requests, and every datagram pulled
    // off a socket was either handled or answered with a control status.
    let d = &server.dispatcher;
    assert_eq!(server.shards.len(), 2);
    assert!(
        server.shards.iter().all(|s| s.received > 0),
        "both shards received traffic"
    );
    assert!(
        d.received <= report.sent,
        "the server cannot receive more than was sent"
    );
    assert_eq!(
        d.received,
        server.handled() + d.dropped + d.expired + d.shed_at_shutdown + d.malformed,
        "no request may vanish inside the server"
    );
    assert_eq!(d.malformed, 0);
    assert_eq!(d.telemetry.rx_malformed, 0);

    // Merged telemetry concatenates the shard slices and agrees with the
    // worker-thread reports.
    assert_eq!(d.telemetry.workers.len(), 4);
    assert_eq!(d.telemetry.completions(), server.handled());
    assert!(report.received <= server.handled());
}

/// Chaos: a lossy client-side wire (every 4th datagram dropped before it
/// reaches the socket). Every injected drop is written off as a timeout,
/// the ledger still balances, and the client/pool pair survives to run a
/// second wave — no in-flight slots or buffers leak.
#[test]
fn udp_lossy_wire_times_out_injected_drops_without_leaks() {
    let (handle, bound) = udp_builder(2, 1).start().expect("bind shard socket");
    let addrs = bound.into_udp_addrs();

    let mut client = udp::client(
        &addrs,
        Steering::Rss,
        NicFaultPlan::drop_every(4),
        UdpConfig::default(),
    )
    .expect("bind client socket");
    let mut pool = BufferPool::new(128, 512);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 1.0,
            payload: service_payload(1_000),
        },
        LoadType {
            ty: 1,
            ratio: 0.0,
            payload: service_payload(1_000),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(400),
        Duration::from_secs(2),
        11,
    );

    let drops = client.fault_drops();
    assert!(drops > 10, "the fault plan fired: {drops} drops");
    assert_eq!(
        report.timed_out, drops,
        "every injected drop times out and nothing else is lost"
    );
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "client totals balance under loss"
    );

    // The slab wrote the lost slots off cleanly: the same client and pool
    // immediately sustain a second, clean wave.
    let second = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(200),
        Duration::from_secs(2),
        13,
    );
    assert!(second.sent > 20, "second wave sent = {}", second.sent);
    assert_eq!(
        second.received + second.dropped + second.rejected + second.timed_out,
        second.sent,
        "second-wave totals balance"
    );
    assert!(second.received > 0, "the pool still has live buffers");

    let server = handle.stop();
    let d = &server.dispatcher;
    assert_eq!(
        d.received,
        report.sent + second.sent - client.fault_drops(),
        "the server saw exactly the datagrams that survived the faults"
    );
    assert_eq!(d.malformed, 0);
}
