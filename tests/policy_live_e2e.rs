//! Live-policy end-to-end tests: the threaded server boots through
//! `ServerBuilder::policy(...)` for each runnable Table 5 policy and is
//! driven with real open-loop load over the loopback NIC on K = 2
//! dispatcher shards. Every policy must conserve requests (client and
//! server ledgers balance), report the policy it ran, and produce sane
//! telemetry.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing assumptions.
// The model-check tier covers the rings directly in `model_rings.rs` /
// `model_seqlock.rs`; the default-features tier runs this binary as-is.
#![cfg(not(feature = "model-check"))]

use std::time::Duration;

use persephone::prelude::*;

fn spin_services() -> [Nanos; 2] {
    [Nanos::from_micros(5), Nanos::from_micros(100)]
}

/// Boots a K=2-shard server under `policy`, drives a 80/20 short/long
/// mix, and checks conservation plus telemetry agreement.
///
/// Reports carry the *engine's* name, so both DARC variants show "DARC"
/// (static vs dynamic reservations are configuration, not a different
/// engine).
fn run_policy(policy: Policy, seed: u64) {
    let name = match policy {
        Policy::DarcStatic { .. } => "DARC".to_string(),
        ref p => p.name(),
    };
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = loopback_mq(512, 2, Steering::Rss);
    let handle = ServerBuilder::new(4, 2)
        .shards(2)
        .policy(policy)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
        .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    let mut pool = BufferPool::new(256, 128);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.8,
            payload: b"short".to_vec(),
        },
        LoadType {
            ty: 1,
            ratio: 0.2,
            payload: b"long".to_vec(),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        2_000.0,
        Duration::from_millis(400),
        Duration::from_secs(2),
        seed,
    );
    let server = handle.stop();

    assert!(report.sent > 100, "[{name}] sent = {}", report.sent);
    assert!(
        report.received > 0,
        "[{name}] some requests must be answered"
    );
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "[{name}] client totals balance"
    );

    // The merged report names the policy that actually ran.
    let d = &server.dispatcher;
    assert_eq!(d.policy, name, "merged report carries the policy name");
    assert_eq!(server.shards.len(), 2);
    for s in &server.shards {
        assert_eq!(s.policy, name, "every shard ran {name}");
    }

    // Server-side conservation: every packet pulled off the NIC was
    // handled by a worker or answered with an explicit control status.
    assert_eq!(
        d.received,
        server.handled() + d.dropped + d.expired + d.shed_at_shutdown + d.malformed,
        "[{name}] no request may vanish inside the dispatch plane"
    );
    assert_eq!(d.malformed, 0, "[{name}]");
    assert_eq!(d.unknown, 0, "[{name}]");

    // Telemetry agrees with the worker ledgers across both shards.
    assert_eq!(d.telemetry.workers.len(), 4, "[{name}]");
    assert_eq!(d.telemetry.completions(), server.handled(), "[{name}]");
    assert!(
        d.telemetry.workers.iter().any(|w| w.busy_ns > 0),
        "[{name}] workers did real work"
    );
    assert!(
        server.shards.iter().all(|s| s.received > 0),
        "[{name}] both shards received traffic"
    );
}

#[test]
fn cfcfs_policy_runs_live_on_two_shards() {
    run_policy(Policy::CFcfs, 61);
}

#[test]
fn sjf_policy_runs_live_on_two_shards() {
    run_policy(Policy::Sjf, 67);
}

#[test]
fn darc_policy_runs_live_on_two_shards() {
    run_policy(Policy::Darc, 71);
}

#[test]
fn fixed_priority_policy_runs_live_on_two_shards() {
    run_policy(Policy::FixedPriority, 73);
}

#[test]
fn dfcfs_policy_runs_live_on_two_shards() {
    run_policy(Policy::DFcfs, 79);
}

#[test]
fn darc_static_policy_runs_live_on_two_shards() {
    run_policy(Policy::DarcStatic { reserved_short: 1 }, 83);
}

/// The preemptive policy is rejected at spawn with actionable guidance,
/// not silently approximated.
#[test]
#[should_panic(expected = "simulator-only")]
fn time_sharing_is_rejected_at_spawn() {
    use persephone::core::policy::TimeSharingParams;
    let (_client, server_port) = loopback(64);
    let _ = ServerBuilder::new(2, 1)
        .policy(Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()))
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 1))
        .handler_factory(|_| {
            let cal = SpinCalibration::calibrate();
            Box::new(SpinHandler::new(cal, &[Nanos::from_micros(1)]))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
}

/// `Policy::CFcfs` boots through the unified `start()` entry point on
/// the default loopback transport and routes onto the dedicated c-FCFS
/// engine.
#[test]
fn cfcfs_policy_boots_through_start() {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (handle, bound) = ServerBuilder::new(2, 2)
        .policy(Policy::CFcfs)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .start()
        .expect("loopback start cannot fail");
    let mut client = bound.into_loopback();

    let mut pool = BufferPool::new(64, 128);
    let spec = LoadSpec::new(vec![LoadType {
        ty: 0,
        ratio: 1.0,
        payload: b"x".to_vec(),
    }]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(200),
        Duration::from_secs(2),
        89,
    );
    let server = handle.stop();
    assert!(report.received > 10);
    assert_eq!(server.handled(), report.received);
    assert_eq!(
        server.dispatcher.policy, "c-FCFS",
        "Policy::CFcfs routes onto the dedicated engine"
    );
}
