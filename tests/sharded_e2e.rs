//! End-to-end tests of the sharded dispatch plane: K dispatchers on a
//! multi-queue loopback NIC, disjoint worker slices, RSS and type-aware
//! steering, and the merged server-wide report.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing assumptions.
// The model-check tier covers the rings directly in `model_rings.rs` /
// `model_seqlock.rs`; the default-features tier runs this binary as-is.
#![cfg(not(feature = "model-check"))]

use std::time::{Duration, Instant};

use persephone::prelude::*;

fn spin_services() -> [Nanos; 2] {
    [Nanos::from_micros(5), Nanos::from_micros(100)]
}

/// Two RSS-fed shards: every request the client manages to send is
/// answered or explicitly accounted for, the shards see disjoint but
/// jointly complete traffic, and the merged telemetry agrees with the
/// per-worker reports.
#[test]
fn sharded_server_conserves_requests_and_merges_telemetry() {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = loopback_mq(512, 2, Steering::Rss);
    let handle = ServerBuilder::new(4, 2)
        .shards(2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
        .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    let mut pool = BufferPool::new(256, 128);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.8,
            payload: b"short".to_vec(),
        },
        LoadType {
            ty: 1,
            ratio: 0.2,
            payload: b"long".to_vec(),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        2_000.0,
        Duration::from_millis(500),
        Duration::from_secs(2),
        47,
    );
    let server = handle.stop();

    assert!(report.sent > 100, "sent = {}", report.sent);
    assert_eq!(
        report.received + report.dropped + report.rejected + report.timed_out,
        report.sent,
        "client totals balance"
    );

    // RSS actually spread the ids over both queues.
    assert_eq!(report.per_queue_sent.len(), 2);
    assert!(
        report.per_queue_sent.iter().all(|&q| q > 0),
        "both queues carried traffic: {:?}",
        report.per_queue_sent
    );
    assert_eq!(report.per_queue_sent.iter().sum::<u64>(), report.sent);

    // Per-shard reports exist and sum to the merged view.
    assert_eq!(server.shards.len(), 2);
    let d = &server.dispatcher;
    assert_eq!(
        server.shards.iter().map(|s| s.received).sum::<u64>(),
        d.received
    );
    assert!(
        server.shards.iter().all(|s| s.received > 0),
        "both shards received traffic"
    );

    // Server-side conservation: every packet pulled off the NIC was
    // handled by a worker or answered with an explicit control status.
    assert_eq!(
        d.received,
        server.handled() + d.dropped + d.expired + d.shed_at_shutdown + d.malformed,
        "no request may vanish inside the sharded plane"
    );
    assert_eq!(d.malformed, 0);
    assert_eq!(d.unknown, 0);

    // The merged telemetry concatenates the disjoint worker slices and
    // agrees with the worker-thread reports.
    assert_eq!(d.telemetry.workers.len(), 4);
    assert_eq!(d.telemetry.completions(), server.handled());
    assert_eq!(server.workers.len(), 4);
    assert!(d.telemetry.workers.iter().any(|w| w.busy_ns > 0));
}

/// Type-aware steering pins each request type to its configured shard, so
/// a shard's DARC engine only ever sees the types routed to it.
#[test]
fn by_type_steering_pins_types_to_shards() {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = loopback_mq(256, 2, Steering::ByType(vec![0, 1]));
    let handle = ServerBuilder::new(2, 2)
        .shards(2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
        .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    let mut pool = BufferPool::new(64, 128);
    let per_type: u64 = 20;
    for id in 0..per_type * 2 {
        let ty = (id % 2) as u32;
        let mut buf = pool.alloc().unwrap();
        let len = wire::encode_request(buf.raw_mut(), ty, id, b"x").unwrap();
        buf.set_len(len);
        client.send(buf).unwrap();
    }
    assert_eq!(client.per_queue_sent(), &[per_type, per_type]);

    // Wait until every request is answered (Ok here; the load is light).
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut answered = 0u64;
    while answered < per_type * 2 && Instant::now() < deadline {
        match client.recv() {
            Some(_pkt) => answered += 1,
            None => std::thread::yield_now(),
        }
    }
    assert_eq!(answered, per_type * 2, "all requests answered");
    let server = handle.stop();

    // Each shard received exactly its pinned type's packets.
    assert_eq!(server.shards.len(), 2);
    for (s, shard) in server.shards.iter().enumerate() {
        assert_eq!(
            shard.received, per_type,
            "shard {s} must only see its pinned type"
        );
        assert_eq!(shard.classified, per_type);
        // Only the pinned type shows arrivals in this shard's telemetry.
        for (ty, t) in shard.telemetry.types.iter().enumerate() {
            let want = if ty == s { per_type } else { 0 };
            assert_eq!(
                t.counters.arrivals, want,
                "shard {s} type {ty} arrival count"
            );
        }
    }
}

/// `ServerBuilder::new` with no optional knobs runs a plain single-shard
/// paper-default server.
#[test]
fn builder_defaults_run_a_single_shard_server() {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (mut client, server_port) = loopback(128);
    let handle = ServerBuilder::new(2, 2)
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    let mut buf = BufferPool::new(8, 64).alloc().unwrap();
    let len = wire::encode_request(buf.raw_mut(), 0, 1, b"x").unwrap();
    buf.set_len(len);
    client.send(buf).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut got = None;
    while got.is_none() && Instant::now() < deadline {
        got = client.recv();
        std::thread::yield_now();
    }
    let pkt = got.expect("request answered");
    let (hdr, _) = wire::decode(pkt.as_slice()).unwrap();
    assert_eq!(wire::response_status(&hdr), Some(wire::Status::Ok));

    let server = handle.stop();
    assert_eq!(server.shards.len(), 1);
    assert_eq!(server.workers.len(), 2);
    assert_eq!(server.handled(), 1);
    // The merged view of a single shard is that shard's report.
    assert_eq!(server.dispatcher.received, server.shards[0].received);
}

/// The unified `start()` entry point returns the in-process client half
/// through `BoundTransport` for the default loopback transport — no
/// hand-built port required.
#[test]
fn start_on_default_loopback_returns_the_client_half() {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let (handle, bound) = ServerBuilder::new(2, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .start()
        .expect("loopback start cannot fail");
    let mut client = bound.into_loopback();

    let mut pool = BufferPool::new(64, 128);
    let spec = LoadSpec::new(vec![LoadType {
        ty: 0,
        ratio: 1.0,
        payload: b"x".to_vec(),
    }]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(200),
        Duration::from_secs(2),
        53,
    );
    let server = handle.stop();
    assert!(report.received > 10);
    assert_eq!(server.handled(), report.received);
    assert_eq!(server.shards.len(), 1);
    assert_eq!(report.per_queue_sent, vec![report.sent]);
}

/// A sharded server refuses a port whose queue count disagrees with the
/// shard count instead of silently misrouting.
#[test]
#[should_panic(expected = "RX queues")]
fn spawn_rejects_queue_shard_mismatch() {
    let (_client, server_port) = loopback(64); // one queue
    let _ = ServerBuilder::new(2, 1)
        .shards(2)
        .classifier_factory(|_| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 1)))
        .handler_factory(|_| {
            let cal = SpinCalibration::calibrate();
            Box::new(SpinHandler::new(cal, &[Nanos::from_micros(1)]))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
}

/// A sharded server needs a per-shard classifier factory; one shared
/// classifier instance is rejected with guidance.
#[test]
#[should_panic(expected = "classifier_factory")]
fn spawn_rejects_single_classifier_with_multiple_shards() {
    let (_client, server_port) = loopback_mq(64, 2, Steering::Rss);
    let _ = ServerBuilder::new(2, 1)
        .shards(2)
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 1))
        .handler_factory(|_| {
            let cal = SpinCalibration::calibrate();
            Box::new(SpinHandler::new(cal, &[Nanos::from_micros(1)]))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
}
