//! Regression tests pinning the paper's *analytically checkable* numbers:
//! demand math (Eq. 1), reservations the paper states explicitly, the
//! Table 3/4 workload constants, and Eq. 2 waste.

use persephone::core::profile::{demands_of, TypeStat};
use persephone::core::reserve::{reserve, ReserveConfig};
use persephone::core::time::Nanos;
use persephone::core::types::TypeId;
use persephone::sim::workload::Workload;

fn stats_from(wl: &Workload) -> Vec<TypeStat> {
    wl.types
        .iter()
        .enumerate()
        .map(|(i, t)| TypeStat {
            ty: TypeId::new(i as u32),
            mean_service_ns: t.service.mean().as_nanos() as f64,
            ratio: t.ratio,
        })
        .collect()
}

#[test]
fn extreme_bimodal_demand_is_one_sixth() {
    // Eq. 1: short demand = (0.5 × 0.995) / (0.5×0.995 + 500×0.005) ≈ 0.166.
    let d = demands_of(&stats_from(&Workload::extreme_bimodal()));
    assert!((d[0] - 0.16597).abs() < 1e-4, "short demand = {}", d[0]);
}

#[test]
fn paper_reservations_on_14_workers() {
    let cases: [(Workload, usize, &str); 4] = [
        (Workload::high_bimodal(), 1, "§5.2: DARC reserves 1 core"),
        (Workload::extreme_bimodal(), 2, "§5.4.2: reserves 2 cores"),
        (Workload::rocksdb(), 1, "§5.4.4: reserves 1 core for GETs"),
        (Workload::tpcc(), 2, "§5.4.3: group A gets workers 1-2"),
    ];
    for (wl, expect_short, why) in cases {
        let r = reserve(&stats_from(&wl), &ReserveConfig::new(14));
        assert_eq!(
            r.groups[0].reserved.len(),
            expect_short,
            "{}: {}",
            wl.name,
            why
        );
    }
}

#[test]
fn tpcc_grouping_and_stealing_matches_section_5_4_3() {
    let r = reserve(&stats_from(&Workload::tpcc()), &ReserveConfig::new(14));
    // Groups: {Payment, OrderStatus} / {NewOrder} / {Delivery, StockLevel}.
    assert_eq!(r.groups.len(), 3);
    assert_eq!(r.groups[0].types.len(), 2);
    assert_eq!(r.groups[1].types.len(), 1);
    assert_eq!(r.groups[2].types.len(), 2);
    // Worker split 2/6/6 ("workers 1 and 2 to group A, 3–8 to B, 9–14 to C").
    assert_eq!(
        (
            r.groups[0].reserved.len(),
            r.groups[1].reserved.len(),
            r.groups[2].reserved.len()
        ),
        (2, 6, 6)
    );
    // "Group A can steal from workers 3–14, group B from 9–14, C cannot."
    assert_eq!(r.groups[0].stealable.len(), 12);
    assert_eq!(r.groups[1].stealable.len(), 6);
    assert!(r.groups[2].stealable.is_empty());
}

#[test]
fn fig1_reservation_on_16_workers() {
    // 16 workers: short demand 0.166 × 16 = 2.66 ⇒ Algorithm 2 rounds to
    // 3 reserved cores. (The paper's §2 prose says its simulation used 1;
    // Algorithm 2 as published computes 3 — documented in EXPERIMENTS.md.)
    let r = reserve(
        &stats_from(&Workload::extreme_bimodal()),
        &ReserveConfig::new(16),
    );
    assert_eq!(r.groups[0].reserved.len(), 3);
    assert_eq!(r.groups[1].reserved.len(), 13);
}

#[test]
fn table3_and_table4_constants() {
    let hb = Workload::high_bimodal();
    assert_eq!(hb.types[0].service.mean(), Nanos::from_micros(1));
    assert_eq!(hb.types[1].service.mean(), Nanos::from_micros(100));
    assert_eq!(hb.types[0].ratio, 0.5);
    assert_eq!(hb.dispersion(), 100.0);

    let eb = Workload::extreme_bimodal();
    assert_eq!(eb.types[0].service.mean(), Nanos::from_nanos(500));
    assert_eq!(eb.types[1].service.mean(), Nanos::from_micros(500));
    assert_eq!(eb.types[0].ratio, 0.995);
    assert_eq!(eb.dispersion(), 1000.0);

    let tpcc = Workload::tpcc();
    let names: Vec<&str> = tpcc.types.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "Payment",
            "OrderStatus",
            "NewOrder",
            "Delivery",
            "StockLevel"
        ]
    );
    // Table 4 dispersion column: 1x, 1.05x, 3.3x(≈3.51), 15.4x, 17.5x.
    let base = tpcc.types[0].service.mean().as_nanos() as f64;
    let disp: Vec<f64> = tpcc
        .types
        .iter()
        .map(|t| t.service.mean().as_nanos() as f64 / base)
        .collect();
    assert!((disp[1] - 1.05).abs() < 0.01);
    assert!((disp[3] - 15.44).abs() < 0.01);
    assert!((disp[4] - 17.54).abs() < 0.01);

    let rdb = Workload::rocksdb();
    assert_eq!(rdb.types[0].service.mean(), Nanos::from_nanos(1_500));
    assert_eq!(rdb.types[1].service.mean(), Nanos::from_micros(635));
}

#[test]
fn eq2_waste_on_paper_workloads() {
    // High Bimodal on 14 workers: short raw demand 0.139 (f < 0.5 ⇒ no
    // Eq. 2 charge); long raw 13.86 (f = 0.86 ≥ 0.5 ⇒ waste 0.14).
    let r = reserve(
        &stats_from(&Workload::high_bimodal()),
        &ReserveConfig::new(14),
    );
    assert!(
        (r.expected_waste - 0.139).abs() < 0.01,
        "waste = {}",
        r.expected_waste
    );
    // TPC-C: only group C rounds up (5.52 → 6): waste = 0.48.
    let r = reserve(&stats_from(&Workload::tpcc()), &ReserveConfig::new(14));
    assert!((r.expected_waste - 0.48).abs() < 0.01);
}

#[test]
fn peak_rates_match_paper_arithmetic() {
    // §2: "a maximum of 5.3 million requests per second" on 16 workers.
    let eb = Workload::extreme_bimodal();
    assert!((eb.peak_rate(16) / 1e6 - 5.34).abs() < 0.01);
    // §5.2: c-FCFS at 260 kRPS is ~94 % of the 14-worker High Bimodal peak.
    let hb = Workload::high_bimodal();
    let load_at_260k = 260_000.0 / hb.peak_rate(14);
    assert!(
        (0.90..0.97).contains(&load_at_260k),
        "load = {load_at_260k}"
    );
}
