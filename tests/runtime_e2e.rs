//! End-to-end tests of the threaded Perséphone runtime: full
//! client → NIC → net-worker/dispatcher → DARC → worker → NIC → client
//! round trips, with real threads and the real engine.

// These tests drive the threaded runtime against wall-clock deadlines;
// under `--features model-check` the rings run on the checker's fallback
// shims (orders of magnitude slower), which breaks the timing assumptions.
// The model-check tier covers the rings directly in `model_rings.rs` /
// `model_seqlock.rs`; the default-features tier runs this binary as-is.
#![cfg(not(feature = "model-check"))]

use std::sync::{Arc, Mutex};
use std::time::Duration;

use persephone::prelude::*;
use persephone::store::tpcc::Transaction;

fn spin_services() -> [Nanos; 2] {
    [Nanos::from_micros(5), Nanos::from_micros(200)]
}

fn spin_server(workers: usize, port: ServerPort, hints: bool) -> ServerHandle {
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let mut builder = ServerBuilder::new(workers, 2);
    if hints {
        builder = builder.hints(services.iter().map(|s| Some(*s)).collect());
    } else {
        builder = builder.tune_engine(|e| e.profiler.min_samples = 100);
    }
    builder
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(port))
        .start()
        .expect("in-process start cannot fail")
        .0
}

#[test]
fn round_trip_under_mixed_load() {
    let (mut client, server_port) = nic::loopback(512);
    let handle = spin_server(2, server_port, true);
    let mut pool = BufferPool::new(256, 128);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.8,
            payload: b"s".to_vec(),
        },
        LoadType {
            ty: 1,
            ratio: 0.2,
            payload: b"l".to_vec(),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        2_000.0,
        Duration::from_millis(500),
        Duration::from_secs(2),
        13,
    );
    let server = handle.stop();
    assert!(report.sent > 100, "sent = {}", report.sent);
    assert_eq!(
        report.received + report.dropped,
        report.sent,
        "every request is answered or explicitly dropped"
    );
    assert_eq!(server.handled(), report.received);
    assert_eq!(server.dispatcher.malformed, 0);
    assert_eq!(server.dispatcher.unknown, 0);
    // Both types actually flowed.
    assert!(report.latencies_ns[0].len() > 10);
    assert!(report.latencies_ns[1].len() > 2);

    // The telemetry snapshot agrees with the dispatcher's own counters.
    let tel = &server.dispatcher.telemetry;
    assert_eq!(tel.completions(), server.handled());
    assert!(tel.types[0].sojourn.count() > 10);
    assert!(tel.types[0].sojourn.quantile(0.5) > 0);
    // Workers recorded their measured busy time.
    assert!(tel.workers.iter().any(|w| w.busy_ns > 0));
}

#[test]
fn warmup_profiles_and_installs_a_reservation() {
    let (mut client, server_port) = nic::loopback(512);
    let handle = spin_server(2, server_port, false);
    let mut pool = BufferPool::new(256, 128);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.5,
            payload: vec![],
        },
        LoadType {
            ty: 1,
            ratio: 0.5,
            payload: vec![],
        },
    ]);
    let _ = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        2_000.0,
        Duration::from_millis(800),
        Duration::from_secs(2),
        17,
    );
    let server = handle.stop();
    assert!(
        server.dispatcher.reservation_updates >= 1,
        "the c-FCFS warm-up must hand over to DARC"
    );
    // The short type ends up with at least one guaranteed core.
    assert!(server.dispatcher.guaranteed[0] >= 1);

    // The event ring logged the warm-up handover, and the last update's
    // new guaranteed map matches the engine's final reservation.
    let updates: Vec<_> = server
        .dispatcher
        .telemetry
        .events
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            persephone::telemetry::ring::SchedEvent::ReservationUpdate {
                new_guaranteed, ..
            } => Some(*new_guaranteed),
            _ => None,
        })
        .collect();
    assert!(!updates.is_empty(), "reservation update event recorded");
    let last = updates.last().unwrap();
    for (i, g) in server.dispatcher.guaranteed.iter().enumerate() {
        assert_eq!(last[i] as usize, *g, "type {i} guaranteed mismatch");
    }
}

#[test]
fn unknown_types_ride_the_spillway() {
    let (mut client, server_port) = nic::loopback(512);
    let handle = spin_server(2, server_port, true);
    let mut pool = BufferPool::new(64, 128);
    // Type 7 is unregistered: classified UNKNOWN, still served.
    let spec = LoadSpec::new(vec![LoadType {
        ty: 7,
        ratio: 1.0,
        payload: b"???".to_vec(),
    }]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(300),
        Duration::from_secs(2),
        19,
    );
    let server = handle.stop();
    assert!(
        report.received > 10,
        "UNKNOWN requests must still be served"
    );
    assert_eq!(server.dispatcher.unknown, report.sent);
    assert_eq!(server.dispatcher.classified, 0);
    // UNKNOWN traffic lands in the telemetry's dedicated UNKNOWN slot.
    let tel = &server.dispatcher.telemetry;
    let unknown = tel.unknown.as_ref().expect("unknown slot present");
    assert_eq!(unknown.counters.completions, report.received);
    assert!(tel.types.iter().all(|t| t.counters.arrivals == 0));
}

#[test]
fn malformed_packets_get_bad_request() {
    let (mut client, server_port) = nic::loopback(64);
    let handle = spin_server(1, server_port, true);
    // Hand-craft garbage: too short, bad magic.
    let mut pool = BufferPool::new(8, 64);
    let mut garbage = pool.alloc().unwrap();
    garbage.fill(&[0xFF; 32]);
    client.send(garbage).unwrap();
    let mut short = pool.alloc().unwrap();
    short.fill(&[1, 2, 3]);
    client.send(short).unwrap();

    // And one valid request to prove the server still works.
    let mut ok = pool.alloc().unwrap();
    let len = wire::encode_request(ok.raw_mut(), 0, 1, b"x").unwrap();
    ok.set_len(len);
    client.send(ok).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut responses = Vec::new();
    while responses.len() < 2 && std::time::Instant::now() < deadline {
        if let Some(pkt) = client.recv() {
            responses.push(pkt);
        } else {
            std::thread::yield_now();
        }
    }
    let server = handle.stop();
    assert_eq!(server.dispatcher.malformed, 2);
    assert_eq!(server.dispatcher.classified, 1);
    // At least the BadRequest for the decodable-but-bad-magic packet is
    // undeliverable (magic mismatch ⇒ discarded), so expect the valid
    // response plus at most one control response.
    assert!(!responses.is_empty());
    let ok_resp = responses
        .iter()
        .filter_map(|p| wire::decode(p.as_slice()).ok())
        .any(|(h, _)| wire::response_status(&h) == Some(wire::Status::Ok));
    assert!(ok_resp, "the valid request must be served");
}

#[test]
fn flow_control_sheds_only_the_overloaded_type() {
    let (mut client, server_port) = nic::loopback(2048);
    let services = [Nanos::from_micros(1), Nanos::from_millis(5)];
    let cal = SpinCalibration::calibrate();
    let handle = ServerBuilder::new(2, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .tune_engine(|e| e.queue_capacity = 4) // Tiny typed queues force drops.
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(1024, 128);
    // Flood with long requests (5 ms each): their queue must overflow.
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.5,
            payload: vec![],
        },
        LoadType {
            ty: 1,
            ratio: 0.5,
            payload: vec![],
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        2_000.0,
        Duration::from_millis(400),
        Duration::from_secs(3),
        23,
    );
    let server = handle.stop();
    assert!(server.dispatcher.dropped > 0, "overload must shed load");
    assert_eq!(report.dropped, server.dispatcher.dropped);
    // Short requests keep flowing despite the long-type overload.
    assert!(
        report.latencies_ns[0].len() > 50,
        "shorts served: {}",
        report.latencies_ns[0].len()
    );
}

#[test]
fn kv_service_end_to_end() {
    let db = Arc::new(Mutex::new(KvStore::with_sequential_keys(100)));
    let (mut client, server_port) = nic::loopback(256);
    let handle = ServerBuilder::new(2, 2)
        .hints(vec![
            Some(Nanos::from_micros(2)),
            Some(Nanos::from_micros(50)),
        ])
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory({
            let db = db.clone();
            move |_| Box::new(KvHandler::new(db.clone()))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(128, 256);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.7,
            payload: b"GET key00000042".to_vec(),
        },
        LoadType {
            ty: 1,
            ratio: 0.3,
            payload: b"SCAN key00000000 100".to_vec(),
        },
    ]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_000.0,
        Duration::from_millis(400),
        Duration::from_secs(2),
        29,
    );
    let server = handle.stop();
    assert!(report.received > 50);
    assert_eq!(server.handled(), report.received);
    assert!(db.lock().unwrap().reads() >= report.received);
}

#[test]
fn tpcc_service_end_to_end() {
    let db = Arc::new(Mutex::new(TpccDb::new(1)));
    let (mut client, server_port) = nic::loopback(256);
    let hints = Transaction::ALL
        .iter()
        .map(|t| Some(Nanos::from_micros_f64(t.paper_runtime_us())))
        .collect();
    let handle = ServerBuilder::new(2, 5)
        .hints(hints)
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 5))
        .handler_factory({
            let db = db.clone();
            move |w| Box::new(TpccHandler::new(db.clone(), w as u64))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(128, 128);
    let spec = LoadSpec::new(
        Transaction::ALL
            .iter()
            .map(|t| LoadType {
                ty: t.type_id(),
                ratio: t.ratio(),
                payload: vec![],
            })
            .collect(),
    );
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_500.0,
        Duration::from_millis(400),
        Duration::from_secs(2),
        31,
    );
    let server = handle.stop();
    assert!(report.received > 50);
    assert_eq!(db.lock().unwrap().committed(), server.handled());
}

#[test]
fn content_classifier_works_in_the_full_pipeline() {
    // A payload-parsing classifier instead of the header one: classify by
    // the first byte of the body.
    let (mut client, server_port) = nic::loopback(256);
    let services = spin_services();
    let cal = SpinCalibration::calibrate();
    let classifier = FnClassifier::new(|msg: &[u8]| match msg.get(wire::HEADER_LEN) {
        Some(b'S') => TypeId::new(0),
        Some(b'L') => TypeId::new(1),
        _ => TypeId::UNKNOWN,
    });
    let handle = ServerBuilder::new(2, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier(classifier)
        .handler_factory(move |_| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;
    let mut pool = BufferPool::new(128, 128);
    let spec = LoadSpec::new(vec![LoadType {
        // The wire type field says 1, but the classifier reads 'S'.
        ty: 1,
        ratio: 1.0,
        payload: b"S-marked".to_vec(),
    }]);
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        500.0,
        Duration::from_millis(200),
        Duration::from_secs(2),
        37,
    );
    let server = handle.stop();
    assert!(report.received > 10);
    assert_eq!(server.dispatcher.classified, report.sent);
    assert_eq!(server.dispatcher.unknown, 0);
}
