//! Quickstart: a complete Perséphone server in ~60 lines.
//!
//! Spawns the threaded runtime with two synthetic request types (a 5 µs
//! SHORT and a 500 µs LONG), drives it with the open-loop Poisson client,
//! and prints what DARC decided: how many cores each type was guaranteed,
//! and the per-type latency the client observed.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use persephone::prelude::*;

fn main() {
    // Service times: type 0 = 5 µs, type 1 = 500 µs (100x dispersion).
    let services = [Nanos::from_micros(5), Nanos::from_micros(500)];

    // 1. A loopback "NIC" connecting client and server.
    let (mut client, server_port) = nic::loopback(1024);

    // 2. The server: 2 workers, a header classifier reading the type field,
    //    and a calibrated busy-wait handler standing in for application code.
    //    Service-time hints let DARC reserve cores at boot; without hints it
    //    starts in c-FCFS and profiles the live traffic instead.
    let cal = SpinCalibration::calibrate();
    let handle = ServerBuilder::new(2, 2)
        .hints(services.iter().map(|s| Some(*s)).collect())
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    // 3. An open-loop Poisson client: 90 % short, 10 % long.
    let mut pool = BufferPool::new(512, 256);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: 0,
            ratio: 0.9,
            payload: b"short work".to_vec(),
        },
        LoadType {
            ty: 1,
            ratio: 0.1,
            payload: b"long work".to_vec(),
        },
    ]);
    println!("offering 3k req/s for 2 seconds...");
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        3_000.0,
        Duration::from_secs(2),
        Duration::from_millis(500),
        42,
    );

    // 4. Shut down and inspect both sides.
    let server_report = handle.stop();
    println!(
        "client: sent={} received={} dropped={} starved={}",
        report.sent, report.received, report.dropped, report.starved
    );
    for (i, name) in ["SHORT(5us)", "LONG(500us)"].iter().enumerate() {
        if let (Some(p50), Some(p999)) =
            (report.percentile_ns(i, 0.5), report.percentile_ns(i, 0.999))
        {
            println!(
                "  {name:12} p50 = {:>8.1} us   p99.9 = {:>8.1} us",
                p50 as f64 / 1e3,
                p999 as f64 / 1e3
            );
        }
    }
    let d = &server_report.dispatcher;
    println!(
        "server: classified={} unknown={} dispatched={} reservation updates={}",
        d.classified, d.unknown, d.dispatched, d.reservation_updates
    );
    println!(
        "DARC guaranteed cores per type: {:?} (short types are protected \
         from dispersion-based head-of-line blocking)",
        d.guaranteed
    );
}
