//! TPC-C transactions behind Perséphone (paper §5.4.3).
//!
//! Serves the five TPC-C transaction profiles from a real in-memory
//! database through the threaded runtime at the standard 44/4/44/4/4 mix.
//! With the paper's Table 4 service-time hints, DARC groups
//! {Payment, OrderStatus} / {NewOrder} / {Delivery, StockLevel} and
//! reserves cores per group, protecting the short transactions.
//!
//! Run with: `cargo run --release --example tpcc_server`

use std::sync::{Arc, Mutex};
use std::time::Duration;

use persephone::prelude::*;
use persephone::store::tpcc::Transaction;

fn main() {
    let db = Arc::new(Mutex::new(TpccDb::new(1)));
    let (mut client, server_port) = nic::loopback(1024);

    // Table 4 hints seed the reservation at boot.
    let hints: Vec<Option<Nanos>> = Transaction::ALL
        .iter()
        .map(|t| Some(Nanos::from_micros_f64(t.paper_runtime_us())))
        .collect();
    let handle = ServerBuilder::new(3, 5)
        .hints(hints)
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 5))
        .handler_factory({
            let db = db.clone();
            move |worker| Box::new(TpccHandler::new(db.clone(), worker as u64 + 1))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    // The standard transaction mix.
    let mut pool = BufferPool::new(512, 256);
    let spec = LoadSpec::new(
        Transaction::ALL
            .iter()
            .map(|t| LoadType {
                ty: t.type_id(),
                ratio: t.ratio(),
                payload: Vec::new(), // Inputs are generated server-side.
            })
            .collect(),
    );
    println!("offering 4k TPC-C transactions/s for 3 seconds...");
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        4_000.0,
        Duration::from_secs(3),
        Duration::from_secs(1),
        11,
    );

    let server_report = handle.stop();
    println!(
        "client: sent={} received={} dropped={}",
        report.sent, report.received, report.dropped
    );
    for (i, t) in Transaction::ALL.iter().enumerate() {
        if let (Some(p50), Some(p999)) =
            (report.percentile_ns(i, 0.5), report.percentile_ns(i, 0.999))
        {
            println!(
                "  {:12} p50 = {:>9.1} us   p99.9 = {:>9.1} us",
                format!("{t:?}"),
                p50 as f64 / 1e3,
                p999 as f64 / 1e3
            );
        }
    }
    let d = &server_report.dispatcher;
    println!(
        "server: dispatched={} guaranteed cores per transaction = {:?}",
        d.dispatched, d.guaranteed
    );
    println!(
        "database committed {} transactions",
        db.lock().unwrap().committed()
    );

    println!("\nserver telemetry snapshot:");
    print!("{}", d.telemetry.to_text());
}
