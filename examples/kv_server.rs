//! RocksDB-style KV service behind Perséphone (paper §5.4.4).
//!
//! Serves a real in-memory ordered store through the threaded runtime:
//! GETs are point lookups, SCANs sweep 5000 keys — the paper's 420×
//! dispersion workload. The classifier reads the wire type field, DARC
//! reserves a core for GETs, and SCANs cannot block them.
//!
//! Run with: `cargo run --release --example kv_server`

use std::sync::{Arc, Mutex};
use std::time::Duration;

use persephone::prelude::*;

const GET: u32 = 0;
const SCAN: u32 = 1;

fn main() {
    // The §5.4.4 dataset: 5000 sequential keys, compacted.
    let db = Arc::new(Mutex::new(KvStore::with_sequential_keys(5_000)));

    let (mut client, server_port) = nic::loopback(1024);

    // No hints: the server boots in c-FCFS, profiles GET vs SCAN service
    // times live, then installs a DARC reservation (a small profiling
    // window keeps the demo fast; the paper uses 50 000 samples).
    let handle = ServerBuilder::new(2, 2)
        .tune_engine(|e| e.profiler.min_samples = 200)
        .classifier(HeaderClassifier::new(wire::TYPE_OFFSET, 2))
        .handler_factory({
            let db = db.clone();
            move |_worker| Box::new(KvHandler::new(db.clone()))
        })
        .transport(Transport::Port(server_port))
        .start()
        .expect("in-process start cannot fail")
        .0;

    // 50 % GET / 50 % SCAN over 5000 keys, as in the paper.
    let mut pool = BufferPool::new(512, 256);
    let spec = LoadSpec::new(vec![
        LoadType {
            ty: GET,
            ratio: 0.5,
            payload: b"GET key00002500".to_vec(),
        },
        LoadType {
            ty: SCAN,
            ratio: 0.5,
            payload: b"SCAN key00000000 5000".to_vec(),
        },
    ]);
    println!("offering 1.5k req/s of 50% GET / 50% SCAN for 3 seconds...");
    let report = run_open_loop(
        &mut client,
        &mut pool,
        &spec,
        1_500.0,
        Duration::from_secs(3),
        Duration::from_secs(1),
        7,
    );

    let server_report = handle.stop();
    println!(
        "client: sent={} received={} dropped={}",
        report.sent, report.received, report.dropped
    );
    for (i, name) in ["GET", "SCAN"].iter().enumerate() {
        if let (Some(p50), Some(p999), Some(mean)) = (
            report.percentile_ns(i, 0.5),
            report.percentile_ns(i, 0.999),
            report.mean_ns(i),
        ) {
            println!(
                "  {name:5} mean = {:>9.1} us   p50 = {:>9.1} us   p99.9 = {:>9.1} us",
                mean / 1e3,
                p50 as f64 / 1e3,
                p999 as f64 / 1e3
            );
        }
    }
    let d = &server_report.dispatcher;
    println!(
        "server: dispatched={} updates={} guaranteed cores (GET, SCAN) = {:?}",
        d.dispatched, d.reservation_updates, d.guaranteed
    );
    println!("store: {} reads served", db.lock().unwrap().reads());

    // Server-side observability: per-type sojourn percentiles, per-worker
    // counters, and the scheduler's decision log (reservation updates,
    // cycle-steals, spillway hits) from the shared telemetry ring.
    println!("\nserver telemetry snapshot:");
    print!("{}", d.telemetry.to_text());
}
