//! Reacting to workload changes (paper §5.5, Figure 7) — in simulation.
//!
//! Thin driver over `scenarios/workload_shift.toml`: the four-phase
//! script (service swap, ratio shift, type drain) lives in the
//! declarative spec, and this example only adds the presentation the
//! generic `scenario run` CLI does not — the DARC reservation-change
//! log and a per-bucket latency timeline.
//!
//! Run with: `cargo run --release --example workload_shift`

use persephone::core::time::Nanos;
use persephone::scenario::ScenarioSpec;
use persephone::sim::engine::{simulate, SimConfig};
use persephone::sim::policies::darc::DarcSim;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/workload_shift.toml");
    let text = std::fs::read_to_string(path).expect("read scenarios/workload_shift.toml");
    let spec = ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{path}: {e}"));

    let workers = spec.workers;
    let num_types = spec.types.len();
    let script = spec.phased_workload();
    println!(
        "running the Figure 7 script from {path}: {} phases, {} total simulated",
        script.phases.len(),
        script.total_duration()
    );

    let mut darc = DarcSim::dynamic(&spec.base_workload(), workers, spec.engine.darc_min_samples);
    let telemetry = std::sync::Arc::new(persephone::telemetry::Telemetry::new(
        persephone::telemetry::TelemetryConfig::new(num_types, workers),
    ));
    darc.attach_telemetry(telemetry.clone());
    let mut cfg = SimConfig::new(workers);
    // One bucket per tenth of a phase keeps the shift visible.
    let bucket = Nanos::from_nanos(script.total_duration().as_nanos() / 40);
    cfg.timeline_bucket = Some(bucket);
    cfg.warmup_fraction = spec.sim.warmup_fraction;
    let trace = spec.build_trace();
    let total = script.total_duration();
    let out = simulate(&mut darc, trace.iter().copied(), num_types, total, &cfg);

    println!("\nreservation log (time → guaranteed cores [A, B]):");
    for (t, counts) in darc.reservation_log() {
        println!("  {:>8.3}s  {:?}", t.as_secs_f64(), counts);
    }

    println!(
        "\np99.9 latency per {:.0}ms bucket (us):",
        bucket.as_secs_f64() * 1e3
    );
    println!("  {:>8} {:>12} {:>12}", "time", "A", "B");
    if let Some(tl) = &out.timeline {
        for (start, per_ty) in tl {
            let fmt = |p: &persephone::sim::metrics::Percentiles| {
                if p.count == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", p.p999 / 1e3)
                }
            };
            println!(
                "  {:>7.3}s {:>12} {:>12}",
                start.as_secs_f64(),
                fmt(&per_ty[0]),
                fmt(&per_ty[1])
            );
        }
    }

    println!(
        "\ncompletions: {}   reservation updates: {}",
        out.completions,
        darc.engine().updates()
    );
    println!(
        "final guaranteed cores: A={} B={}",
        darc.engine()
            .guaranteed_workers(persephone::core::types::TypeId::new(0)),
        darc.engine()
            .guaranteed_workers(persephone::core::types::TypeId::new(1)),
    );

    println!("\nengine telemetry snapshot (simulated time):");
    print!("{}", telemetry.snapshot().to_text());
}
