//! Reacting to workload changes (paper §5.5, Figure 7) — in simulation.
//!
//! Replays the paper's four-phase script through the discrete-event
//! simulator with DARC driving the real `persephone-core` engine:
//!
//! 1. A slow (500 µs) / B fast (0.5 µs) at 50/50;
//! 2. service times swap (the misclassification stress);
//! 3. ratios shift to 99.5 % A / 0.5 % B (A's demand grows ⇒ 2 cores);
//! 4. only A remains (B pending work rides the spillway core).
//!
//! Prints the reservation-change log and a per-phase latency table.
//!
//! Run with: `cargo run --release --example workload_shift`

use persephone::core::time::Nanos;
use persephone::sim::engine::{simulate, SimConfig};
use persephone::sim::policies::darc::DarcSim;
use persephone::sim::workload::{ArrivalGen, PhasedWorkload};

fn main() {
    let script = PhasedWorkload::paper_fig7();
    let workers = 14;
    println!(
        "running the Figure 7 script: {} phases, {} total simulated",
        script.phases.len(),
        script.total_duration()
    );

    let gen = ArrivalGen::phased(&script, workers, 2024);
    // A 50k-sample window, as in the paper.
    let mut darc = DarcSim::dynamic(&script.phases[0].workload, workers, 50_000);
    let telemetry = std::sync::Arc::new(persephone::telemetry::Telemetry::new(
        persephone::telemetry::TelemetryConfig::new(2, workers),
    ));
    darc.attach_telemetry(telemetry.clone());
    let mut cfg = SimConfig::new(workers);
    cfg.timeline_bucket = Some(Nanos::from_millis(500));
    cfg.warmup_fraction = 0.0; // Keep every phase visible.
    let out = simulate(&mut darc, gen, 2, script.total_duration(), &cfg);

    println!("\nreservation log (time → guaranteed cores [A, B]):");
    for (t, counts) in darc.reservation_log() {
        println!("  {:>8.2}s  {:?}", t.as_secs_f64(), counts);
    }

    println!("\np99.9 latency per 500ms bucket (us):");
    println!("  {:>8} {:>12} {:>12}", "time", "A", "B");
    if let Some(tl) = &out.timeline {
        for (start, per_ty) in tl {
            let fmt = |p: &persephone::sim::metrics::Percentiles| {
                if p.count == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", p.p999 / 1e3)
                }
            };
            println!(
                "  {:>7.1}s {:>12} {:>12}",
                start.as_secs_f64(),
                fmt(&per_ty[0]),
                fmt(&per_ty[1])
            );
        }
    }

    println!(
        "\ncompletions: {}   reservation updates: {}",
        out.completions,
        darc.engine().updates()
    );
    println!(
        "final guaranteed cores: A={} B={}",
        darc.engine()
            .guaranteed_workers(persephone::core::types::TypeId::new(0)),
        darc.engine()
            .guaranteed_workers(persephone::core::types::TypeId::new(1)),
    );

    println!("\nengine telemetry snapshot (simulated time):");
    print!("{}", telemetry.snapshot().to_text());
}
