//! A Perséphone server on real UDP sockets — the server half of a
//! two-process deployment.
//!
//! Binds one nonblocking socket per dispatcher shard (shard `i` on
//! `base_port + i`), prints the addresses, and serves until the duration
//! expires. Drive it from another terminal with the external client:
//!
//! ```text
//! cargo run --release --example udp_server -- 9000 2 &
//! cargo run --release --bin loadgen -- --connect 127.0.0.1:9000 --shards 2
//! ```
//!
//! Requests carry their service demand in the first 8 payload bytes
//! (little-endian nanoseconds), which `PayloadSpinHandler` burns on a
//! calibrated spin — the same convention the scenario engine and
//! `loadgen` use. Arguments: `[base_port] [shards] [duration_secs]`
//! (defaults 9000, 2, 10; base_port 0 binds ephemeral ports).

use std::net::SocketAddr;
use std::time::Duration;

use persephone::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base_port: u16 = args.first().and_then(|s| s.parse().ok()).unwrap_or(9000);
    let shards: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);

    let num_types: u32 = 2;
    let workers = shards.max(2) * 2;
    let cal = SpinCalibration::calibrate();
    let bind: SocketAddr = SocketAddr::from(([127, 0, 0, 1], base_port));

    let (handle, bound) = ServerBuilder::new(workers, num_types as usize)
        .shards(shards)
        .transport(Transport::Udp(bind))
        .classifier_factory(move |_shard| {
            Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, num_types))
        })
        .handler_factory(move |_worker| {
            Box::new(PayloadSpinHandler::new(cal, Nanos::from_millis(5)))
        })
        .start()
        .expect("binding the shard sockets");

    match &bound {
        BoundTransport::Udp(addrs) => {
            for (i, a) in addrs.iter().enumerate() {
                println!("shard {i} listening on {a}");
            }
        }
        _ => unreachable!("transport is UDP"),
    }

    println!("serving for {secs}s...");
    std::thread::sleep(Duration::from_secs(secs));

    let report = handle.stop();
    println!(
        "received={} dispatched={} completed={} shed={} malformed={}",
        report.dispatcher.received,
        report.dispatcher.dispatched,
        report.dispatcher.completed,
        report.dispatcher.dropped + report.dispatcher.expired + report.dispatcher.shed_at_shutdown,
        report.dispatcher.malformed,
    );
}
