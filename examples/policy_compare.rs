//! Comparing scheduling policies on a heavy-tailed workload — the
//! paper's §2 argument in one runnable program.
//!
//! Sweeps d-FCFS, c-FCFS, SJF, time sharing (ideal and Shinjuku-cost),
//! and DARC over the Extreme Bimodal workload on 16 simulated cores and
//! prints the achievable throughput under a 10× per-type p99.9 slowdown
//! SLO — the headline numbers of Figure 1.
//!
//! Run with: `cargo run --release --example policy_compare`

use persephone::core::policy::{Policy, TimeSharingParams};
use persephone::core::time::Nanos;
use persephone::sim::experiment::{capacity_rps_at_slo, sweep, Slo, SweepConfig};
use persephone::sim::workload::Workload;

fn main() {
    let workload = Workload::extreme_bimodal();
    let workers = 16;
    let peak = workload.peak_rate(workers);
    println!(
        "workload: {} (dispersion {:.0}x), {} workers, peak = {:.2} Mrps",
        workload.name,
        workload.dispersion(),
        workers,
        peak / 1e6
    );

    let policies = vec![
        Policy::DFcfs,
        Policy::CFcfs,
        Policy::Sjf,
        Policy::TimeSharing(TimeSharingParams::ideal()),
        Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()),
        Policy::Darc,
    ];

    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let cfg = SweepConfig {
        darc_min_samples: 20_000,
        ..SweepConfig::new(workload, workers, loads, Nanos::from_millis(300))
    };

    let slo = Slo::PerTypeSlowdown(10.0);
    println!(
        "\n{:<12} {:>16} {:>12}",
        "policy", "capacity @10x SLO", "of peak"
    );
    for p in policies {
        let points = sweep(&p, &cfg);
        let cap = capacity_rps_at_slo(&points, slo).unwrap_or(0.0);
        println!(
            "{:<12} {:>13.2} Mrps {:>11.0}%",
            p.name(),
            cap / 1e6,
            100.0 * cap / peak
        );
    }
    println!(
        "\nDARC sustains the highest load because reserving cores for the\n\
         99.5% of 0.5us requests shields them from 500us requests without\n\
         preemption — idling is ideal."
    );
}
