//! The `BENCH_<scenario>.json` report: the repo's performance trajectory.
//!
//! One run of one scenario produces one report with a stable schema
//! ([`crate::json::BENCH_SCHEMA`]), split into three sections by
//! reproducibility class:
//!
//! * `meta` — everything wall-clock dependent (timestamp, host, git
//!   commit, elapsed time). Excluded from reproducibility diffs.
//! * `deterministic` — derived purely from the spec and seed: config
//!   echo, per-type scheduled arrival counts, and an FNV-1a hash of the
//!   materialized schedule. Byte-identical across same-seed runs on
//!   *any* backend, which is what the CI reproducibility check pins.
//! * `runs` — one entry per (backend × policy): measured percentiles,
//!   throughput, shed/expired/quarantine counters, and a merged
//!   telemetry summary. Deterministic on the simulator; measured (and
//!   thus wall-clock noisy) on the threaded runtime.

use persephone_sim::workload::Arrival;
use persephone_telemetry::Snapshot;

use crate::json::{Json, BENCH_SCHEMA};
use crate::spec::ScenarioSpec;

/// Latency/slowdown percentile summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Pcts {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — the paper's headline metric.
    pub p999: f64,
    /// Maximum observed.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Pcts {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("p50".into(), Json::Num(self.p50)),
            ("p99".into(), Json::Num(self.p99)),
            ("p999".into(), Json::Num(self.p999)),
            ("max".into(), Json::Num(self.max)),
            ("mean".into(), Json::Num(self.mean)),
        ])
    }
}

/// Per-type measured results.
#[derive(Clone, Debug)]
pub struct TypeResult {
    /// Type display name.
    pub name: String,
    /// Completions measured for this type.
    pub count: u64,
    /// Latency percentiles, microseconds.
    pub latency_us: Pcts,
    /// Slowdown percentiles (latency / service demand, dimensionless).
    pub slowdown: Pcts,
}

/// Aggregated scheduler telemetry for one run (merged across shards).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySummary {
    /// Completions folded into the engine.
    pub completions: u64,
    /// Cross-reservation steals (DARC work conservation for shorts).
    pub steals: u64,
    /// Requests served on the spillway core.
    pub spillway_hits: u64,
    /// Flow-control drops.
    pub drops: u64,
    /// SLO-expired requests.
    pub expired: u64,
    /// Worker quarantines.
    pub quarantines: u64,
    /// Scheduler events pushed to the telemetry ring.
    pub events_pushed: u64,
}

impl TelemetrySummary {
    /// Folds a merged [`Snapshot`] down to the report's counters.
    pub fn from_snapshot(snap: &Snapshot) -> TelemetrySummary {
        let mut s = TelemetrySummary::default();
        for ty in snap.types.iter().chain(snap.unknown.iter()) {
            s.completions += ty.counters.completions;
            s.steals += ty.counters.steals;
            s.spillway_hits += ty.counters.spillway_hits;
            s.drops += ty.counters.drops;
            s.expired += ty.counters.expired;
        }
        for w in &snap.workers {
            s.quarantines += w.quarantines;
        }
        s.events_pushed = snap.events.pushed;
        s
    }

    /// Folds another summary's counters in (rack runs merge one summary
    /// per server).
    pub fn absorb(&mut self, other: &TelemetrySummary) {
        self.completions += other.completions;
        self.steals += other.steals;
        self.spillway_hits += other.spillway_hits;
        self.drops += other.drops;
        self.expired += other.expired;
        self.quarantines += other.quarantines;
        self.events_pushed += other.events_pushed;
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("completions".into(), Json::Int(self.completions as i64)),
            ("steals".into(), Json::Int(self.steals as i64)),
            ("spillway_hits".into(), Json::Int(self.spillway_hits as i64)),
            ("drops".into(), Json::Int(self.drops as i64)),
            ("expired".into(), Json::Int(self.expired as i64)),
            ("quarantines".into(), Json::Int(self.quarantines as i64)),
            ("events_pushed".into(), Json::Int(self.events_pushed as i64)),
        ])
    }
}

/// One (backend × policy) run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// `"sim"` or `"threaded"`.
    pub backend: String,
    /// Policy display name (`Policy::name`).
    pub policy: String,
    /// Inter-server steering policy, when a rack tier fronted the run.
    pub rack_policy: Option<String>,
    /// Servers behind the rack ingress (1 = no rack tier).
    pub servers: u64,
    /// Duration-weighted mean offered load across phases.
    pub offered_load: f64,
    /// Completions per second of scenario time.
    pub achieved_rps: f64,
    /// Requests offered to the server.
    pub sent: u64,
    /// Completions measured.
    pub completions: u64,
    /// Requests shed by flow control.
    pub dropped: u64,
    /// Malformed/rejected requests.
    pub rejected: u64,
    /// Requests whose response never arrived (threaded; lossy wire).
    pub timed_out: u64,
    /// Requests expired past their slowdown SLO before dispatch.
    pub expired: u64,
    /// Requests shed at shutdown (threaded drain).
    pub shed_at_shutdown: u64,
    /// Worker quarantines observed.
    pub quarantines: u64,
    /// Slowdown distribution across all completions.
    pub overall_slowdown: Pcts,
    /// Per-type results, in declared type order.
    pub per_type: Vec<TypeResult>,
    /// Merged telemetry, when the engine had telemetry attached.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("backend".into(), Json::Str(self.backend.clone())),
            ("policy".into(), Json::Str(self.policy.clone())),
        ];
        // Rack keys only appear on rack scenarios, so pre-rack reports
        // stay byte-identical under the same schema version.
        if let Some(rp) = &self.rack_policy {
            fields.push(("rack_policy".into(), Json::Str(rp.clone())));
            fields.push(("servers".into(), Json::Int(self.servers as i64)));
        }
        fields.extend([
            ("offered_load".into(), Json::Num(self.offered_load)),
            ("achieved_rps".into(), Json::Num(self.achieved_rps)),
            ("sent".into(), Json::Int(self.sent as i64)),
            ("completions".into(), Json::Int(self.completions as i64)),
            ("dropped".into(), Json::Int(self.dropped as i64)),
            ("rejected".into(), Json::Int(self.rejected as i64)),
            ("timed_out".into(), Json::Int(self.timed_out as i64)),
            ("expired".into(), Json::Int(self.expired as i64)),
            (
                "shed_at_shutdown".into(),
                Json::Int(self.shed_at_shutdown as i64),
            ),
            ("quarantines".into(), Json::Int(self.quarantines as i64)),
            ("overall_slowdown".into(), self.overall_slowdown.to_json()),
            (
                "per_type".into(),
                Json::Arr(
                    self.per_type
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(t.name.clone())),
                                ("count".into(), Json::Int(t.count as i64)),
                                ("latency_us".into(), t.latency_us.to_json()),
                                ("slowdown".into(), t.slowdown.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "telemetry".into(),
                match &self.telemetry {
                    Some(t) => t.to_json(),
                    None => Json::Null,
                },
            ),
        ]);
        Json::Obj(fields)
    }
}

/// Wall-clock-dependent report metadata.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Unix timestamp, milliseconds.
    pub created_unix_ms: u64,
    /// Wall time the whole scenario took, milliseconds.
    pub wall_ms: u64,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_commit: String,
    /// Hostname, or `"unknown"`.
    pub host: String,
}

impl Meta {
    /// A fixed meta block, for byte-identity tests.
    pub fn fixed() -> Meta {
        Meta {
            created_unix_ms: 0,
            wall_ms: 0,
            git_commit: "fixed".into(),
            host: "fixed".into(),
        }
    }
}

/// The seed-derived section: identical across same-seed runs.
#[derive(Clone, Debug, PartialEq)]
pub struct Deterministic {
    /// Master seed.
    pub seed: u64,
    /// Worker cores.
    pub workers: u64,
    /// Dispatcher shards.
    pub shards: u64,
    /// Phase count.
    pub phases: u64,
    /// Total scripted duration, ms.
    pub total_duration_ms: f64,
    /// Type display names, declared order.
    pub types: Vec<String>,
    /// Total scheduled arrivals.
    pub arrivals: u64,
    /// Scheduled arrivals per type.
    pub arrivals_per_type: Vec<u64>,
    /// FNV-1a-64 over every (at, ty, service) in the schedule, hex.
    pub schedule_hash: String,
}

impl Deterministic {
    /// Derives the deterministic section from a spec and its trace.
    pub fn derive(spec: &ScenarioSpec, trace: &[Arrival]) -> Deterministic {
        let mut per_type = vec![0u64; spec.types.len()];
        for a in trace {
            if let Some(slot) = per_type.get_mut(a.ty.index()) {
                *slot += 1;
            }
        }
        Deterministic {
            seed: spec.seed,
            workers: spec.workers as u64,
            shards: spec.shards as u64,
            phases: spec.phases.len() as u64,
            total_duration_ms: spec.total_duration().as_nanos() as f64 / 1e6,
            types: spec.types.iter().map(|t| t.name.clone()).collect(),
            arrivals: trace.len() as u64,
            arrivals_per_type: per_type,
            schedule_hash: schedule_hash(trace),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::Int(self.seed as i64)),
            ("workers".into(), Json::Int(self.workers as i64)),
            ("shards".into(), Json::Int(self.shards as i64)),
            ("phases".into(), Json::Int(self.phases as i64)),
            (
                "total_duration_ms".into(),
                Json::Num(self.total_duration_ms),
            ),
            (
                "types".into(),
                Json::Arr(self.types.iter().cloned().map(Json::Str).collect()),
            ),
            ("arrivals".into(), Json::Int(self.arrivals as i64)),
            (
                "arrivals_per_type".into(),
                Json::Arr(
                    self.arrivals_per_type
                        .iter()
                        .map(|&c| Json::Int(c as i64))
                        .collect(),
                ),
            ),
            (
                "schedule_hash".into(),
                Json::Str(self.schedule_hash.clone()),
            ),
        ])
    }
}

/// FNV-1a-64 over the materialized schedule, as 16 hex digits. Pins the
/// exact arrival times, types, and service demands both backends replay.
pub fn schedule_hash(trace: &[Arrival]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for a in trace {
        eat(a.at.as_nanos());
        eat(a.ty.index() as u64);
        eat(a.service.as_nanos());
    }
    format!("{h:016x}")
}

/// The full report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description, echoed from the spec.
    pub description: String,
    /// Wall-clock metadata.
    pub meta: Meta,
    /// Seed-derived section.
    pub deterministic: Deterministic,
    /// One entry per (backend × policy).
    pub runs: Vec<RunResult>,
    /// Hot-path microbench section, when the spec declares `[hotpath]`.
    /// Wall-clock ns/op numbers — kept outside `deterministic` so the
    /// reproducibility diff never sees them.
    pub hotpath: Option<crate::hotpath::HotpathResult>,
}

impl BenchReport {
    /// The canonical output file name.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Serializes with the stable v1 schema and key order.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Str(BENCH_SCHEMA.into())),
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("description".into(), Json::Str(self.description.clone())),
            (
                "meta".into(),
                Json::Obj(vec![
                    (
                        "created_unix_ms".into(),
                        Json::Int(self.meta.created_unix_ms as i64),
                    ),
                    ("wall_ms".into(), Json::Int(self.meta.wall_ms as i64)),
                    ("git_commit".into(), Json::Str(self.meta.git_commit.clone())),
                    ("host".into(), Json::Str(self.meta.host.clone())),
                ]),
            ),
            ("deterministic".into(), self.deterministic.to_json()),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(RunResult::to_json).collect()),
            ),
        ];
        // Appended last so reports without a [hotpath] tier stay
        // byte-identical under the same schema version.
        if let Some(h) = &self.hotpath {
            fields.push(("hotpath".into(), h.to_json()));
        }
        Json::Obj(fields)
    }

    /// Renders the report text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_bench;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::from_toml(
            r#"
name = "bench_unit"
seed = 3
workers = 4
duration_ms = 5.0

[[types]]
name = "SHORT"
ratio = 0.5
service = { dist = "constant", mean_us = 1.0 }

[[types]]
name = "LONG"
ratio = 0.5
service = { dist = "constant", mean_us = 100.0 }
"#,
        )
        .unwrap()
    }

    #[test]
    fn deterministic_section_is_seed_stable() {
        let s = spec();
        let a = Deterministic::derive(&s, &s.build_trace());
        let b = Deterministic::derive(&s, &s.build_trace());
        assert_eq!(a, b);
        assert_eq!(a.arrivals, a.arrivals_per_type.iter().sum::<u64>());
        assert_eq!(a.schedule_hash.len(), 16);
    }

    #[test]
    fn report_validates_against_the_schema() {
        let s = spec();
        let trace = s.build_trace();
        let report = BenchReport {
            scenario: s.name.clone(),
            description: s.description.clone(),
            meta: Meta::fixed(),
            deterministic: Deterministic::derive(&s, &trace),
            runs: vec![RunResult {
                backend: "sim".into(),
                policy: "DARC".into(),
                rack_policy: None,
                servers: 1,
                offered_load: 0.7,
                achieved_rps: 1000.0,
                sent: 10,
                completions: 10,
                dropped: 0,
                rejected: 0,
                timed_out: 0,
                expired: 0,
                shed_at_shutdown: 0,
                quarantines: 0,
                overall_slowdown: Pcts::default(),
                per_type: vec![TypeResult {
                    name: "SHORT".into(),
                    count: 5,
                    latency_us: Pcts::default(),
                    slowdown: Pcts::default(),
                }],
                telemetry: None,
            }],
            hotpath: None,
        };
        let text = report.render();
        let parsed = Json::parse(&text).unwrap();
        let problems = validate_bench(&parsed);
        assert!(problems.is_empty(), "schema problems: {problems:?}");
        assert_eq!(report.file_name(), "BENCH_bench_unit.json");
    }
}
