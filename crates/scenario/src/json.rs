//! A minimal JSON value, parser, and deterministic renderer.
//!
//! Same zero-registry-dependency rationale as [`crate::toml`]: the
//! scenario engine needs to *emit* `BENCH_*.json` byte-stably (the
//! reproducibility tests diff the output of two same-seed runs) and to
//! *re-read* emitted files for `scenario validate` and the CI schema
//! check. Objects preserve insertion order; rendering is fully
//! deterministic (2-space indent, `\u{...}` escapes only where JSON
//! requires them, shortest-round-trip float formatting).

use std::fmt;

/// A JSON value. Integers and floats are kept apart so `u64` counters
/// render exactly (`42`, never `42.0`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (all BENCH counters).
    Int(i64),
    /// A float (latencies, ratios).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A short human name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Int(_) | Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => out.push_str(&render_f64(*f)),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_f64(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no inf/nan; null is the closest faithful encoding.
        return "null".to_string();
    }
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure with a byte offset.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), JsonError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", want as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit(b"true", Json::Bool(true)),
            Some(b'f') => self.parse_lit(b"false", Json::Bool(false)),
            Some(b'n') => self.parse_lit(b"null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &[u8], v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{}`", String::from_utf8_lossy(lit))))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            raw.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err(format!("`{raw}` is not a number")))
        } else {
            raw.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("`{raw}` is not an integer")))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    self.pos += 1;
                    while matches!(self.bytes.get(self.pos), Some(c) if *c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// BENCH schema validation
// ---------------------------------------------------------------------------

/// The BENCH schema identifier the validator accepts.
pub const BENCH_SCHEMA: &str = "persephone-bench-v1";

/// Validates a parsed `BENCH_*.json` document against the v1 schema and
/// returns every problem found (empty ⇒ valid). Checked structure:
///
/// ```text
/// schema: "persephone-bench-v1"
/// scenario: string
/// meta: { created_unix_ms, wall_ms: number; git_commit, host: string }
/// deterministic: { seed, workers, shards, arrivals: number;
///                  types: [string]; arrivals_per_type: [number];
///                  schedule_hash: string; total_duration_ms: number }
/// runs: non-empty [ { backend, policy: string; offered_load,
///                     achieved_rps: number; sent, completions: number;
///                     overall_slowdown: pcts;
///                     per_type: [ { name: string; count: number;
///                                   latency_us: pcts; slowdown: pcts } ] } ]
/// pcts = { p50, p99, p999: number }
/// ```
pub fn validate_bench(doc: &Json) -> Vec<String> {
    let mut c = Checker {
        problems: Vec::new(),
    };

    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        Some(other) => c
            .problems
            .push(format!("`schema` is `{other}`, expected `{BENCH_SCHEMA}`")),
        None => c.problems.push("missing field `schema`".into()),
    }
    c.check("scenario", doc.get("scenario"), "string");

    if c.check("meta", doc.get("meta"), "object") {
        let meta = doc.get("meta").unwrap();
        c.check(
            "meta.created_unix_ms",
            meta.get("created_unix_ms"),
            "number",
        );
        c.check("meta.wall_ms", meta.get("wall_ms"), "number");
        c.check("meta.git_commit", meta.get("git_commit"), "string");
        c.check("meta.host", meta.get("host"), "string");
    }

    if c.check("deterministic", doc.get("deterministic"), "object") {
        let det = doc.get("deterministic").unwrap();
        for k in ["seed", "workers", "shards", "arrivals", "total_duration_ms"] {
            c.check(&format!("deterministic.{k}"), det.get(k), "number");
        }
        c.check("deterministic.types", det.get("types"), "array");
        c.check(
            "deterministic.arrivals_per_type",
            det.get("arrivals_per_type"),
            "array",
        );
        c.check(
            "deterministic.schedule_hash",
            det.get("schedule_hash"),
            "string",
        );
        if let (Some(types), Some(counts)) = (
            det.get("types").and_then(Json::as_arr),
            det.get("arrivals_per_type").and_then(Json::as_arr),
        ) {
            if types.len() != counts.len() {
                c.problems.push(format!(
                    "deterministic.types has {} entries but arrivals_per_type has {}",
                    types.len(),
                    counts.len()
                ));
            }
        }
    }

    if c.check("runs", doc.get("runs"), "array") {
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        if runs.is_empty() {
            c.problems.push("`runs` must not be empty".into());
        }
        for (i, run) in runs.iter().enumerate() {
            let at = |f: &str| format!("runs[{i}].{f}");
            c.check(&at("backend"), run.get("backend"), "string");
            c.check(&at("policy"), run.get("policy"), "string");
            c.check(&at("offered_load"), run.get("offered_load"), "number");
            c.check(&at("achieved_rps"), run.get("achieved_rps"), "number");
            c.check(&at("sent"), run.get("sent"), "number");
            c.check(&at("completions"), run.get("completions"), "number");
            if c.check(
                &at("overall_slowdown"),
                run.get("overall_slowdown"),
                "object",
            ) {
                let p = run.get("overall_slowdown").unwrap();
                for k in ["p50", "p99", "p999"] {
                    c.check(&at(&format!("overall_slowdown.{k}")), p.get(k), "number");
                }
            }
            if c.check(&at("per_type"), run.get("per_type"), "array") {
                for (t, entry) in run
                    .get("per_type")
                    .and_then(Json::as_arr)
                    .unwrap()
                    .iter()
                    .enumerate()
                {
                    let at = |f: &str| format!("runs[{i}].per_type[{t}].{f}");
                    c.check(&at("name"), entry.get("name"), "string");
                    c.check(&at("count"), entry.get("count"), "number");
                    for obj in ["latency_us", "slowdown"] {
                        if c.check(&at(obj), entry.get(obj), "object") {
                            let p = entry.get(obj).unwrap();
                            for k in ["p50", "p99", "p999"] {
                                c.check(&at(&format!("{obj}.{k}")), p.get(k), "number");
                            }
                        }
                    }
                }
            }
        }
    }
    c.problems
}

struct Checker {
    problems: Vec<String>,
}

impl Checker {
    fn check(&mut self, path: &str, v: Option<&Json>, want: &str) -> bool {
        match v {
            None => {
                self.problems.push(format!("missing field `{path}`"));
                false
            }
            Some(v) => {
                let ok = match want {
                    "string" => matches!(v, Json::Str(_)),
                    "number" => matches!(v, Json::Int(_) | Json::Num(_)),
                    "array" => matches!(v, Json::Arr(_)),
                    "object" => matches!(v, Json::Obj(_)),
                    _ => unreachable!("unknown want {want}"),
                };
                if !ok {
                    self.problems
                        .push(format!("`{path}` must be a {want}, found {}", v.kind()));
                }
                ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Int(1)),
            ("b".into(), Json::Num(0.5)),
            (
                "c".into(),
                Json::Arr(vec![
                    Json::Str("x\n\"y".into()),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Int(42).render(), "42\n");
        assert_eq!(Json::Num(42.0).render(), "42.0\n");
    }

    #[test]
    fn validator_flags_missing_and_mistyped_fields() {
        let doc = Json::parse(r#"{"schema": "persephone-bench-v1", "scenario": 3}"#).unwrap();
        let problems = validate_bench(&doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("`scenario` must be a string")));
        assert!(problems.iter().any(|p| p.contains("missing field `meta`")));
        assert!(problems.iter().any(|p| p.contains("missing field `runs`")));
    }
}
