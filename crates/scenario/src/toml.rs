//! A minimal TOML parser and renderer.
//!
//! The workspace is offline-buildable with zero registry dependencies
//! (see ROADMAP §constraints), so the scenario engine carries its own
//! parser for the subset of TOML the specs use: bare/quoted keys, dotted
//! keys, `[table]` and `[[array-of-tables]]` headers, basic and literal
//! strings, integers (with `_` separators), floats, booleans, possibly
//! multi-line arrays, and single-line inline tables. Dates and
//! hex/octal/binary integers are rejected with a pointed error rather
//! than silently misparsed.
//!
//! [`render`] is the inverse, used by golden-file round-trip tests and
//! `scenario print` (the effective spec after env overrides).

use std::fmt;

use crate::value::{Table, Value};

/// A parse failure, with the 1-based source line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong, with the offending token where helpful.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a TOML document into a [`Table`].
pub fn parse(text: &str) -> Result<Table, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Table::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            return Ok(root);
        }
        if p.peek() == Some(b'[') {
            p.bump();
            let array_of_tables = p.peek() == Some(b'[');
            if array_of_tables {
                p.bump();
            }
            p.skip_spaces();
            let path = p.parse_dotted_key()?;
            p.skip_spaces();
            p.expect(b']')?;
            if array_of_tables {
                p.expect(b']')?;
            }
            p.expect_line_end()?;
            if array_of_tables {
                push_array_table(&mut root, &path).map_err(|msg| p.err_at(msg))?;
            } else {
                open_table(&mut root, &path).map_err(|msg| p.err_at(msg))?;
            }
            current = path;
        } else {
            let path = p.parse_dotted_key()?;
            p.skip_spaces();
            p.expect(b'=')?;
            p.skip_spaces();
            let value = p.parse_value()?;
            p.expect_line_end()?;
            let table = navigate(&mut root, &current).map_err(|msg| p.err_at(msg))?;
            let (leaf, parents) = path.split_last().expect("parse_dotted_key is non-empty");
            let table = navigate(table, parents).map_err(|msg| p.err_at(msg))?;
            if table.contains(leaf) {
                return Err(p.err_at(format!("duplicate key `{leaf}`")));
            }
            table.insert(leaf.clone(), value);
        }
    }
}

/// Parses a single scalar value (for `PSP_SCENARIO_*` env overrides):
/// integer, float, boolean, quoted string, or array. Anything that does
/// not parse as one of those is taken as a bare string, so
/// `PSP_SCENARIO_POLICY=cfcfs` works without quoting.
pub fn parse_scalar(text: &str) -> Value {
    let trimmed = text.trim();
    let mut p = Parser {
        bytes: trimmed.as_bytes(),
        pos: 0,
        line: 1,
    };
    match p.parse_value() {
        Ok(v) if p.pos == trimmed.len() => v,
        _ => Value::Str(trimmed.to_string()),
    }
}

/// Walks `path` from `table`, creating intermediate tables; steps through
/// an array-of-tables into its last element.
fn navigate<'a>(mut table: &'a mut Table, path: &[String]) -> Result<&'a mut Table, String> {
    for seg in path {
        if !table.contains(seg) {
            table.insert(seg.clone(), Value::Table(Table::new()));
        }
        table = match table.get_mut(seg).expect("just inserted") {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(format!("`{seg}` is not an array of tables")),
            },
            other => {
                return Err(format!(
                    "`{seg}` is already a {}, not a table",
                    other.kind()
                ))
            }
        };
    }
    Ok(table)
}

fn open_table(root: &mut Table, path: &[String]) -> Result<(), String> {
    let (leaf, parents) = path.split_last().ok_or("empty table header")?;
    let parent = navigate(root, parents)?;
    match parent.get_mut(leaf) {
        None => {
            parent.insert(leaf.clone(), Value::Table(Table::new()));
            Ok(())
        }
        // Re-opening a table created implicitly by a deeper header is
        // fine; re-opening one that already got keys is a duplicate.
        Some(Value::Table(_)) => Ok(()),
        Some(other) => Err(format!(
            "`{leaf}` is already a {}, cannot open it as a table",
            other.kind()
        )),
    }
}

fn push_array_table(root: &mut Table, path: &[String]) -> Result<(), String> {
    let (leaf, parents) = path.split_last().ok_or("empty table header")?;
    let parent = navigate(root, parents)?;
    match parent.get_mut(leaf) {
        None => {
            parent.insert(leaf.clone(), Value::Array(vec![Value::Table(Table::new())]));
            Ok(())
        }
        Some(Value::Array(a)) => {
            a.push(Value::Table(Table::new()));
            Ok(())
        }
        Some(other) => Err(format!(
            "`{leaf}` is already a {}, cannot append a [[{leaf}]] table",
            other.kind()
        )),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn err_at(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            msg: msg.into(),
        }
    }

    /// Skips spaces and tabs.
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.err_at(format!(
                "expected `{}`, found `{}`",
                want as char, b as char
            ))),
            None => Err(self.err_at(format!("expected `{}`, found end of input", want as char))),
        }
    }

    /// Consumes trailing spaces, an optional comment, then a newline or EOF.
    fn expect_line_end(&mut self) -> Result<(), ParseError> {
        self.skip_spaces();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.bump();
                self.expect(b'\n')
            }
            Some(b) => Err(self.err_at(format!(
                "unexpected `{}` after value (one key = value pair per line)",
                b as char
            ))),
        }
    }

    fn parse_dotted_key(&mut self) -> Result<Vec<String>, ParseError> {
        let mut segs = vec![self.parse_key()?];
        loop {
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.bump();
                self.skip_spaces();
                segs.push(self.parse_key()?);
            } else {
                return Ok(segs);
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(b'"') => match self.parse_value()? {
                Value::Str(s) => Ok(s),
                _ => unreachable!("a leading quote parses as a string"),
            },
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
                {
                    self.bump();
                }
                Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
            }
            Some(b) => Err(self.err_at(format!("expected a key, found `{}`", b as char))),
            None => Err(self.err_at("expected a key, found end of input")),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(b) if b == b'+' || b == b'-' || b == b'.' || b.is_ascii_digit() => {
                self.parse_number()
            }
            Some(b) => Err(self.err_at(format!("expected a value, found `{}`", b as char))),
            None => Err(self.err_at("expected a value, found end of input")),
        }
    }

    fn parse_basic_string(&mut self) -> Result<Value, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(self.err_at("unterminated string (missing closing `\"`)"))
                }
                Some(b'"') => return Ok(Value::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b) => {
                        return Err(self.err_at(format!(
                            "unsupported escape `\\{}` (supported: \\\" \\\\ \\n \\t \\r)",
                            b as char
                        )))
                    }
                    None => return Err(self.err_at("unterminated escape at end of input")),
                },
                Some(b) => {
                    // Re-assemble UTF-8: collect continuation bytes.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while matches!(self.peek(), Some(c) if c & 0xC0 == 0x80) {
                            self.bump();
                        }
                        out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                    }
                }
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<Value, ParseError> {
        self.expect(b'\'')?;
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    return Err(self.err_at("unterminated string (missing closing `'`)"))
                }
                Some(b'\'') => {
                    let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.bump();
                    return Ok(Value::Str(s));
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_bool(&mut self) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(Value::Bool(true))
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(Value::Bool(false))
        } else {
            Err(self.err_at("expected `true` or `false`"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        // Letters are consumed too so `0xff` and `2021-10-26` reach the
        // pointed errors below instead of a generic "unexpected x".
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'+' | b'-' | b'.' | b'_')
        ) {
            self.bump();
        }
        let raw =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
        if cleaned.starts_with("0x") || cleaned.starts_with("0o") || cleaned.starts_with("0b") {
            return Err(self.err_at(format!(
                "`{raw}`: hex/octal/binary integers are not supported, use decimal"
            )));
        }
        if raw.contains('-') && !raw.starts_with('-') {
            return Err(self.err_at(format!(
                "`{raw}` looks like a date; dates are not supported, use a string"
            )));
        }
        if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
            cleaned
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err_at(format!("`{raw}` is not a valid float")))
        } else {
            cleaned
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err_at(format!("`{raw}` is not a valid integer")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return Err(self.err_at("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut t = Table::new();
        self.skip_spaces();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Table(t));
        }
        loop {
            self.skip_spaces();
            let key = self.parse_key()?;
            self.skip_spaces();
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.parse_value()?;
            if t.contains(&key) {
                return Err(self.err_at(format!("duplicate key `{key}` in inline table")));
            }
            t.insert(key, value);
            self.skip_spaces();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {
                    self.bump();
                    return Ok(Value::Table(t));
                }
                _ => return Err(self.err_at("expected `,` or `}` in inline table")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders a table back to TOML text. Scalar keys come first, then
/// `[sub.tables]`, then `[[arrays.of.tables]]`, preserving insertion
/// order within each group — re-parsing the output yields an equal tree.
pub fn render(table: &Table) -> String {
    let mut out = String::new();
    render_table(&mut out, table, &mut Vec::new());
    out
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(a) if !a.is_empty() && a.iter().all(|e| matches!(e, Value::Table(_))))
}

fn render_table(out: &mut String, table: &Table, path: &mut Vec<String>) {
    for (k, v) in table.entries() {
        if matches!(v, Value::Table(_)) || is_table_array(v) {
            continue;
        }
        out.push_str(&render_key(k));
        out.push_str(" = ");
        render_value(out, v);
        out.push('\n');
    }
    for (k, v) in table.entries() {
        if let Value::Table(t) = v {
            path.push(k.clone());
            out.push('\n');
            out.push('[');
            out.push_str(&render_path(path));
            out.push_str("]\n");
            render_table(out, t, path);
            path.pop();
        }
    }
    for (k, v) in table.entries() {
        if !is_table_array(v) {
            continue;
        }
        let Value::Array(elems) = v else {
            unreachable!()
        };
        path.push(k.clone());
        for elem in elems {
            let Value::Table(t) = elem else {
                unreachable!()
            };
            out.push('\n');
            out.push_str("[[");
            out.push_str(&render_path(path));
            out.push_str("]]\n");
            render_table(out, t, path);
        }
        path.pop();
    }
}

fn render_path(path: &[String]) -> String {
    path.iter()
        .map(|s| render_key(s))
        .collect::<Vec<_>>()
        .join(".")
}

fn render_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        format!("\"{}\"", escape(key))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn render_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => out.push_str(&render_float(*f)),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(out, item);
            }
            out.push(']');
        }
        Value::Table(t) => {
            // Inline table (only reached for tables nested inside arrays
            // of scalars or values set by env overrides).
            out.push('{');
            for (i, (k, v)) in t.entries().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push(' ');
                out.push_str(&render_key(k));
                out.push_str(" = ");
                render_value(out, v);
            }
            out.push_str(" }");
        }
    }
}

/// Renders a float so it re-parses as a float (`5` → `5.0`).
fn render_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a scenario
name = "demo"
seed = 42
load = 0.7
flag = true
ratios = [0.5, 0.5]
service = { dist = "constant", mean_us = 1.0 }

[engine]
queue_capacity = 0

[[types]]
name = "SHORT"
ratio = 0.5

[[types]]
name = "LONG"
ratio = 0.5
"#;

    #[test]
    fn parses_the_full_subset() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(t.get("seed").unwrap().as_u64(), Some(42));
        assert_eq!(t.get("load").unwrap().as_f64(), Some(0.7));
        assert_eq!(t.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(t.get("ratios").unwrap().as_array().unwrap().len(), 2);
        let svc = t.get("service").unwrap().as_table().unwrap();
        assert_eq!(svc.get("dist").unwrap().as_str(), Some("constant"));
        let types = t.get("types").unwrap().as_array().unwrap();
        assert_eq!(types.len(), 2);
        assert_eq!(
            types[1].as_table().unwrap().get("name").unwrap().as_str(),
            Some("LONG")
        );
    }

    #[test]
    fn round_trips_through_render() {
        let t = parse(SAMPLE).unwrap();
        let rendered = render(&t);
        let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("{e}\n---\n{rendered}"));
        assert_eq!(t, reparsed, "render → parse must be the identity");
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("a = 1\nb = @\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains('@'), "{}", err.msg);
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.msg.contains("duplicate key `a`"), "{}", err.msg);
    }

    #[test]
    fn rejects_unsupported_forms_pointedly() {
        let err = parse("x = 0xff\n").unwrap_err();
        assert!(err.msg.contains("hex"), "{}", err.msg);
        let err = parse("when = 2021-10-26\n").unwrap_err();
        assert!(err.msg.contains("date"), "{}", err.msg);
    }

    #[test]
    fn multiline_arrays_and_underscore_ints() {
        let t = parse("xs = [\n  1_000,\n  2_000, # comment\n]\nbig = 50_000\n").unwrap();
        assert_eq!(
            t.get("xs").unwrap().as_array().unwrap(),
            &[Value::Int(1000), Value::Int(2000)]
        );
        assert_eq!(t.get("big").unwrap().as_u64(), Some(50_000));
    }

    #[test]
    fn scalar_parser_falls_back_to_string() {
        assert_eq!(parse_scalar("0.8"), Value::Float(0.8));
        assert_eq!(parse_scalar("42"), Value::Int(42));
        assert_eq!(parse_scalar("true"), Value::Bool(true));
        assert_eq!(parse_scalar("cfcfs"), Value::Str("cfcfs".into()));
        assert_eq!(
            parse_scalar("[0.9, 0.1]"),
            Value::Array(vec![Value::Float(0.9), Value::Float(0.1)])
        );
        assert_eq!(parse_scalar("\"quoted\""), Value::Str("quoted".into()));
    }
}
