//! The dynamic value tree scenario TOML parses into.
//!
//! Tables preserve insertion order so [`crate::toml::render`] is
//! deterministic and golden-file tests stay byte-stable. The tree is the
//! substrate env-var overrides ([`crate::env`]) operate on *before* typed
//! parsing ([`crate::spec`]), which makes override precedence trivial:
//! whatever reaches the typed layer wins.

use std::fmt;

/// A TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array (scalars or tables, homogeneous in practice).
    Array(Vec<Value>),
    /// A nested table.
    Table(Table),
}

impl Value {
    /// A short human name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// The value as a float, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a table.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// An insertion-ordered string-keyed table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    entries: Vec<(String, Value)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks a key up mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Inserts or replaces a key, preserving its original position when
    /// replacing.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.get_mut(&key) {
            Some(slot) => *slot = value,
            None => self.entries.push((key, value)),
        }
    }

    /// True when the key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Error from [`set_path`].
#[derive(Debug, PartialEq, Eq)]
pub struct PathError(pub String);

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Sets `value` at a dotted path. Segment rules: a name indexes a table
/// (intermediate tables are created on demand); a decimal number indexes
/// an existing array element. Used by the env-override layer, where
/// `PSP_SCENARIO_PHASES__0__LOAD` becomes the path `["phases","0","load"]`.
pub fn set_path(root: &mut Table, path: &[&str], value: Value) -> Result<(), PathError> {
    if path.is_empty() {
        return Err(PathError("empty override path".into()));
    }
    set_in_table(root, path, value, &mut String::new())
}

fn set_in_table(
    table: &mut Table,
    path: &[&str],
    value: Value,
    walked: &mut String,
) -> Result<(), PathError> {
    let seg = path[0];
    if !walked.is_empty() {
        walked.push('.');
    }
    walked.push_str(seg);
    if path.len() == 1 {
        table.insert(seg, value);
        return Ok(());
    }
    if !table.contains(seg) {
        // Creating an intermediate array makes no sense (we cannot know
        // its length); tables are safe to create.
        if path[1].parse::<usize>().is_ok() {
            return Err(PathError(format!(
                "`{walked}` does not exist, cannot index into it with `{}`",
                path[1]
            )));
        }
        table.insert(seg, Value::Table(Table::new()));
    }
    match table.get_mut(seg).expect("just ensured present") {
        Value::Table(t) => set_in_table(t, &path[1..], value, walked),
        Value::Array(a) => set_in_array(a, &path[1..], value, walked),
        other => Err(PathError(format!(
            "`{walked}` is a {}, not a table or array",
            other.kind()
        ))),
    }
}

fn set_in_array(
    array: &mut [Value],
    path: &[&str],
    value: Value,
    walked: &mut String,
) -> Result<(), PathError> {
    let seg = path[0];
    let idx: usize = seg.parse().map_err(|_| {
        PathError(format!(
            "`{walked}` is an array; expected a numeric index, got `{seg}`"
        ))
    })?;
    let len = array.len();
    let slot = array.get_mut(idx).ok_or_else(|| {
        PathError(format!(
            "`{walked}` has {len} elements, index {idx} is out of range"
        ))
    })?;
    walked.push('.');
    walked.push_str(seg);
    if path.len() == 1 {
        *slot = value;
        return Ok(());
    }
    match slot {
        Value::Table(t) => set_in_table(t, &path[1..], value, walked),
        Value::Array(a) => set_in_array(a, &path[1..], value, walked),
        other => Err(PathError(format!(
            "`{walked}` is a {}, not a table or array",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(pairs: Vec<(&str, Value)>) -> Table {
        let mut t = Table::new();
        for (k, v) in pairs {
            t.insert(k, v);
        }
        t
    }

    #[test]
    fn insert_preserves_position_on_replace() {
        let mut t = table(vec![("a", Value::Int(1)), ("b", Value::Int(2))]);
        t.insert("a", Value::Int(9));
        assert_eq!(t.entries()[0], ("a".to_string(), Value::Int(9)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn set_path_top_level_and_nested() {
        let mut t = table(vec![("load", Value::Float(0.5))]);
        set_path(&mut t, &["load"], Value::Float(0.8)).unwrap();
        assert_eq!(t.get("load"), Some(&Value::Float(0.8)));
        set_path(&mut t, &["engine", "queue_capacity"], Value::Int(64)).unwrap();
        let engine = t.get("engine").unwrap().as_table().unwrap();
        assert_eq!(engine.get("queue_capacity"), Some(&Value::Int(64)));
    }

    #[test]
    fn set_path_array_index() {
        let mut t = Table::new();
        t.insert(
            "phases",
            Value::Array(vec![
                Value::Table(table(vec![("load", Value::Float(0.5))])),
                Value::Table(table(vec![("load", Value::Float(0.6))])),
            ]),
        );
        set_path(&mut t, &["phases", "1", "load"], Value::Float(0.9)).unwrap();
        let phases = t.get("phases").unwrap().as_array().unwrap();
        let p1 = phases[1].as_table().unwrap();
        assert_eq!(p1.get("load"), Some(&Value::Float(0.9)));
    }

    #[test]
    fn set_path_errors_are_actionable() {
        let mut t = table(vec![("load", Value::Float(0.5))]);
        let err = set_path(&mut t, &["load", "deep"], Value::Int(1)).unwrap_err();
        assert!(err.0.contains("`load` is a float"), "{}", err.0);
        let err = set_path(&mut t, &["phases", "0", "load"], Value::Int(1)).unwrap_err();
        assert!(err.0.contains("does not exist"), "{}", err.0);
        t.insert("xs", Value::Array(vec![Value::Int(1)]));
        let err = set_path(&mut t, &["xs", "5"], Value::Int(1)).unwrap_err();
        assert!(err.0.contains("out of range"), "{}", err.0);
    }
}
