//! The typed scenario model and its validating parser.
//!
//! A scenario is a declarative TOML description of one experiment:
//! request-type mix (optionally Zipf-skewed), per-type service
//! distributions, open-loop arrival process (Poisson, optionally
//! MMPP-bursty), a script of time-varying phases (load ramps, service
//! swaps, ratio shifts — generalizing the paper's §5.5 Figure 7 script),
//! scheduling policy/policies, engine tuning, and fault injection.
//!
//! Parsing is two-layered: the raw [`crate::value::Table`] (where
//! [`crate::env`] overrides apply) is lowered here into [`ScenarioSpec`]
//! with *actionable* errors — every failure names the offending path,
//! what was found, and what would be accepted. Unknown keys are rejected
//! so a typo (`worker = 14`) cannot silently run with a default.

use std::fmt;

use persephone_core::dist::Dist;
use persephone_core::policy::Policy;
use persephone_core::time::Nanos;
use persephone_sim::workload::{
    Arrival, ArrivalGen, BurstModel, Phase, PhasedWorkload, TypeMix, Workload,
};

use crate::value::{Table, Value};

/// A spec-validation failure: the TOML path and what to fix.
#[derive(Debug)]
pub struct SpecError {
    /// Dotted path of the offending key (`phases[1].load`).
    pub path: String,
    /// What went wrong and what is accepted.
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "scenario spec error: {}", self.msg)
        } else {
            write!(f, "scenario spec error at `{}`: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(path: impl Into<String>, msg: impl Into<String>) -> SpecError {
    SpecError {
        path: path.into(),
        msg: msg.into(),
    }
}

/// One request type: display name, traffic share, service distribution.
#[derive(Clone, Debug)]
pub struct TypeSpec {
    /// Display name ("SHORT", "Payment", ...).
    pub name: String,
    /// Fraction of traffic, in `(0, 1]`. Overwritten when `zipf` is set.
    pub ratio: f64,
    /// Service-time distribution.
    pub service: Dist,
}

/// One phase of the time-varying script.
#[derive(Clone, Debug)]
pub struct PhaseSpec {
    /// Phase length, milliseconds of scenario time.
    pub duration_ms: f64,
    /// Offered load (fraction of peak); defaults to the top-level `load`.
    pub load: Option<f64>,
    /// Per-type ratio overrides for this phase (same arity as `types`).
    pub ratios: Option<Vec<f64>>,
    /// Per-type constant service-time overrides, microseconds.
    pub service_us: Option<Vec<f64>>,
}

/// The arrival process.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalSpec {
    /// Plain open-loop Poisson (the paper's §5.1 client).
    Poisson,
    /// Poisson modulated by a two-state MMPP burst model.
    Bursty {
        /// Mean dwell in the calm state, ms.
        calm_ms: f64,
        /// Mean dwell in the burst state, ms.
        burst_ms: f64,
        /// Rate multiplier while bursting (> 1).
        amplification: f64,
    },
}

/// Engine tuning shared by both backends.
#[derive(Clone, Debug)]
pub struct EngineTuning {
    /// DARC profiling-window size (completions per reservation update).
    pub darc_min_samples: u64,
    /// Per-type queue capacity; 0 = unbounded.
    pub queue_capacity: usize,
}

/// A scripted worker stall (reuses `persephone-runtime`'s `FaultPlan`).
#[derive(Clone, Debug)]
pub struct StallSpec {
    /// Global worker index to stall.
    pub worker: usize,
    /// Fire after this many requests handled by that worker.
    pub after_requests: u64,
    /// Stall length, milliseconds of wall time.
    pub stall_ms: f64,
}

/// Fault injection: NIC drops and worker stalls.
#[derive(Clone, Debug, Default)]
pub struct FaultsSpec {
    /// Drop every n-th client→server packet (0 = off); maps onto
    /// `NicFaultPlan::drop_every`.
    pub nic_drop_every: u64,
    /// Worker stalls (threaded backend only).
    pub stalls: Vec<StallSpec>,
}

/// Simulator-only tuning.
#[derive(Clone, Debug)]
pub struct SimTuning {
    /// Fraction of the run discarded as warm-up.
    pub warmup_fraction: f64,
    /// Reporting-only network RTT, microseconds.
    pub rtt_us: f64,
}

/// The rack tier: replicate the server N times behind inter-server
/// steering policies (crate `persephone-rack`).
///
/// When present, each backend additionally runs a 1-server baseline plus
/// one N-server rack run per steering policy, with the arrival rate
/// scaled to the rack's total capacity — so per-server offered load is
/// held constant while servers are added (the RackSched scaling claim).
#[derive(Clone, Debug)]
pub struct RackSpec {
    /// Servers in the rack (each gets `workers` workers, `shards`
    /// dispatcher shards, and its own engine).
    pub servers: usize,
    /// Steering policies to run; each becomes one rack run per backend.
    pub policies: Vec<String>,
}

/// The in-process hot-path microbench tier (see [`crate::hotpath`]).
///
/// When present, the report grows a `hotpath` section: per-policy
/// enqueue → poll → complete nanoseconds, the DARC idle-poll and
/// poll+complete decision costs, and a 1..=`shards_max` shard-scaling
/// curve. All wall-clock, machine-dependent — kept outside the
/// `deterministic` section by construction.
#[derive(Clone, Debug)]
pub struct HotpathSpec {
    /// Dispatch cycles per timed repetition.
    pub cycles: u64,
    /// Repetitions per metric; the fastest is reported.
    pub reps: usize,
    /// Largest shard count on the scaling curve (clamped to `workers`).
    pub shards_max: usize,
    /// Reference numbers echoed into the report (policy name → ns/op),
    /// recorded at an earlier commit on the same reference host — the
    /// "before" half of the committed before/after trajectory.
    pub baseline_ns: Vec<(String, f64)>,
}

/// Threaded-runtime-only tuning.
#[derive(Clone, Debug)]
pub struct ThreadedTuning {
    /// Uniform time compression: arrival times *and* service times are
    /// multiplied by this, so utilization (and thus slowdown) is
    /// preserved while a long simulated script replays in bounded wall
    /// time.
    pub time_scale: f64,
    /// NIC ring depth per queue.
    pub ring_depth: usize,
    /// Client packet-pool size.
    pub pool_buffers: usize,
    /// Packet buffer size, bytes.
    pub buf_size: usize,
    /// Post-run drain grace, milliseconds.
    pub grace_ms: u64,
    /// Per-request spin clamp, milliseconds (guards a corrupt payload).
    pub max_service_ms: f64,
    /// RX steering: `"rss"` or `"by_type"` (round-robin types → queues).
    pub steering: String,
    /// Wire between client and server: `"loopback"` (in-process rings)
    /// or `"udp"` (one real 127.0.0.1 socket per shard).
    pub transport: String,
    /// How workers burn the payload-carried service demand: `"spin"`
    /// (calibrated busy loop — exact, but costs real CPU) or `"sleep"`
    /// (OS sleep — occupancy without CPU, for many-server rack scenarios
    /// on small machines; needs service times ≳ hundreds of µs).
    pub handler: String,
    /// Idle park per unproductive loop iteration, microseconds; `0.0`
    /// (the default) busy-yields. Applied to every server's dispatchers
    /// and workers ([`ServerBuilder::idle_backoff`]) and to the rack
    /// ingress. Set it (50–100µs) whenever the scenario runs more
    /// threads than the host has cores and service times are long enough
    /// to hide the wake-up latency — otherwise idle threads drown the
    /// busy ones in scheduler noise and the tail measurements are noise,
    /// not scheduling.
    ///
    /// [`ServerBuilder::idle_backoff`]: persephone_runtime::ServerBuilder::idle_backoff
    pub idle_backoff_us: f64,
}

/// A fully validated scenario.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name; the report lands in `BENCH_<name>.json`.
    pub name: String,
    /// Free-form description, carried into the report.
    pub description: String,
    /// Master seed for every RNG stream.
    pub seed: u64,
    /// Worker cores.
    pub workers: usize,
    /// Dispatcher shards (threaded backend; the simulator is unsharded).
    pub shards: usize,
    /// Policies to run; each becomes one entry in the report's `runs`.
    pub policies: Vec<Policy>,
    /// Default offered load (fraction of peak service rate).
    pub load: f64,
    /// Zipf popularity exponent: when set, type ratios are replaced by a
    /// Zipf(s) distribution over the declared type order.
    pub zipf: Option<f64>,
    /// The request types.
    pub types: Vec<TypeSpec>,
    /// The phase script (always at least one phase after validation).
    pub phases: Vec<PhaseSpec>,
    /// Arrival process.
    pub arrival: ArrivalSpec,
    /// Engine tuning.
    pub engine: EngineTuning,
    /// Fault injection.
    pub faults: FaultsSpec,
    /// Simulator tuning.
    pub sim: SimTuning,
    /// Threaded-runtime tuning.
    pub threaded: ThreadedTuning,
    /// Optional rack tier (N servers behind inter-server steering).
    pub rack: Option<RackSpec>,
    /// Optional hot-path microbench tier.
    pub hotpath: Option<HotpathSpec>,
}

/// Zipf weights over ranks 1..=n with exponent `s`, normalized to sum 1.
pub fn zipf_ratios(n: usize, s: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

// ---------------------------------------------------------------------------
// Parsing helpers
// ---------------------------------------------------------------------------

/// A table plus the dotted path that reached it, for error reporting.
struct Ctx<'a> {
    table: &'a Table,
    path: String,
}

impl<'a> Ctx<'a> {
    fn at(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{}", self.path, key)
        }
    }

    /// Rejects keys outside `allowed`, listing what is accepted.
    fn known_keys(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (k, _) in self.table.entries() {
            if !allowed.contains(&k.as_str()) {
                return Err(err(
                    self.at(k),
                    format!("unknown key (accepted here: {})", allowed.join(", ")),
                ));
            }
        }
        Ok(())
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or_else(|| {
                err(
                    self.at(key),
                    format!("expected a number, found {}", v.kind()),
                )
            }),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        Ok(self.opt_f64(key)?.unwrap_or(default))
    }

    fn req_f64(&self, key: &str) -> Result<f64, SpecError> {
        self.opt_f64(key)?
            .ok_or_else(|| err(self.at(key), "required number is missing"))
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                err(
                    self.at(key),
                    format!("expected a non-negative integer, found {}", v.kind()),
                )
            }),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        Ok(self.opt_u64(key)?.unwrap_or(default))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, SpecError> {
        Ok(self.u64_or(key, default as u64)? as usize)
    }

    fn opt_str(&self, key: &str) -> Result<Option<&'a str>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(v) => v.as_str().map(Some).ok_or_else(|| {
                err(
                    self.at(key),
                    format!("expected a string, found {}", v.kind()),
                )
            }),
        }
    }

    fn req_str(&self, key: &str) -> Result<&'a str, SpecError> {
        self.opt_str(key)?
            .ok_or_else(|| err(self.at(key), "required string is missing"))
    }

    fn opt_str_array(&self, key: &str) -> Result<Vec<String>, SpecError> {
        match self.table.get(key) {
            None => Ok(Vec::new()),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let path = format!("{}[{i}]", self.at(key));
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| err(path, format!("expected a string, found {}", v.kind())))
                })
                .collect(),
            Some(v) => Err(err(
                self.at(key),
                format!("expected an array of strings, found {}", v.kind()),
            )),
        }
    }

    fn opt_table(&self, key: &str) -> Result<Option<Ctx<'a>>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Table(t)) => Ok(Some(Ctx {
                table: t,
                path: self.at(key),
            })),
            Some(v) => Err(err(
                self.at(key),
                format!("expected a table, found {}", v.kind()),
            )),
        }
    }

    /// An array of tables (`[[key]]`), as contexts.
    fn table_array(&self, key: &str) -> Result<Vec<Ctx<'a>>, SpecError> {
        match self.table.get(key) {
            None => Ok(Vec::new()),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Table(t) => Ok(Ctx {
                        table: t,
                        path: format!("{}[{i}]", self.at(key)),
                    }),
                    other => Err(err(
                        format!("{}[{i}]", self.at(key)),
                        format!("expected a table, found {}", other.kind()),
                    )),
                })
                .collect(),
            Some(v) => Err(err(
                self.at(key),
                format!("expected an array of tables, found {}", v.kind()),
            )),
        }
    }

    fn opt_f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, SpecError> {
        match self.table.get(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_f64().ok_or_else(|| {
                        err(
                            format!("{}[{i}]", self.at(key)),
                            format!("expected a number, found {}", v.kind()),
                        )
                    })
                })
                .collect::<Result<Vec<f64>, _>>()
                .map(Some),
            Some(v) => Err(err(
                self.at(key),
                format!("expected an array of numbers, found {}", v.kind()),
            )),
        }
    }
}

fn parse_policy(s: &str, path: &str) -> Result<Policy, SpecError> {
    let lower = s.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("darc-static") {
        let reserved_short = match rest.strip_prefix(':') {
            None if rest.is_empty() => 1,
            Some(n) => n.parse().map_err(|_| {
                err(
                    path,
                    format!("`{s}`: expected darc-static:<cores>, e.g. darc-static:2"),
                )
            })?,
            _ => {
                return Err(err(
                    path,
                    format!("unknown policy `{s}` (did you mean darc-static:<cores>?)"),
                ))
            }
        };
        return Ok(Policy::DarcStatic { reserved_short });
    }
    match lower.as_str() {
        "darc" => Ok(Policy::Darc),
        "cfcfs" | "c-fcfs" => Ok(Policy::CFcfs),
        "dfcfs" | "d-fcfs" => Ok(Policy::DFcfs),
        "sjf" => Ok(Policy::Sjf),
        "fp" | "fixed-priority" => Ok(Policy::FixedPriority),
        _ => Err(err(
            path,
            format!(
                "unknown policy `{s}` (accepted: darc, darc-static[:<cores>], cfcfs, dfcfs, sjf, fp)"
            ),
        )),
    }
}

fn parse_service(ctx: &Ctx<'_>) -> Result<Dist, SpecError> {
    let dist = ctx.req_str("dist")?;
    let us = |v: f64| Nanos::from_micros_f64(v);
    match dist {
        "constant" => {
            ctx.known_keys(&["dist", "mean_us"])?;
            Ok(Dist::Constant(us(ctx.req_f64("mean_us")?)))
        }
        "exponential" => {
            ctx.known_keys(&["dist", "mean_us"])?;
            Ok(Dist::Exponential(us(ctx.req_f64("mean_us")?)))
        }
        "uniform" => {
            ctx.known_keys(&["dist", "low_us", "high_us"])?;
            let lo = ctx.req_f64("low_us")?;
            let hi = ctx.req_f64("high_us")?;
            if hi <= lo {
                return Err(err(
                    ctx.at("high_us"),
                    format!("high_us ({hi}) must exceed low_us ({lo})"),
                ));
            }
            Ok(Dist::Uniform(us(lo), us(hi)))
        }
        "lognormal" => {
            ctx.known_keys(&["dist", "mean_us", "sigma"])?;
            Ok(Dist::LogNormal {
                mean: us(ctx.req_f64("mean_us")?),
                sigma: ctx.req_f64("sigma")?,
            })
        }
        other => Err(err(
            ctx.at("dist"),
            format!(
                "unknown distribution `{other}` (accepted: constant, exponential, uniform, lognormal)"
            ),
        )),
    }
}

impl ScenarioSpec {
    /// Lowers a raw TOML table (post env-overrides) into a validated spec.
    pub fn from_table(table: &Table) -> Result<ScenarioSpec, SpecError> {
        let root = Ctx {
            table,
            path: String::new(),
        };
        root.known_keys(&[
            "name",
            "description",
            "seed",
            "workers",
            "shards",
            "policy",
            "policies",
            "load",
            "duration_ms",
            "zipf",
            "types",
            "phases",
            "arrival",
            "engine",
            "faults",
            "sim",
            "threaded",
            "rack",
            "hotpath",
        ])?;

        let name = root.req_str("name")?.to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(err(
                "name",
                format!("`{name}` must be non-empty [A-Za-z0-9_-] (it names BENCH_<name>.json)"),
            ));
        }
        let description = root.opt_str("description")?.unwrap_or("").to_string();
        let seed = root.u64_or("seed", 1)?;
        let workers = root.usize_or("workers", 14)?;
        let shards = root.usize_or("shards", 1)?;
        if workers == 0 {
            return Err(err("workers", "must be at least 1"));
        }
        if shards == 0 || shards > workers {
            return Err(err(
                "shards",
                format!("must be in 1..={workers} (one dispatcher shard per group of workers)"),
            ));
        }

        let policies = match (root.opt_str("policy")?, root.table.get("policies")) {
            (Some(_), Some(_)) => {
                return Err(err(
                    "policies",
                    "set either `policy` or `policies`, not both",
                ))
            }
            (Some(p), None) => vec![parse_policy(p, "policy")?],
            (None, Some(Value::Array(items))) => {
                if items.is_empty() {
                    return Err(err("policies", "must list at least one policy"));
                }
                items
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let path = format!("policies[{i}]");
                        let s = v.as_str().ok_or_else(|| {
                            err(&path, format!("expected a string, found {}", v.kind()))
                        })?;
                        parse_policy(s, &path)
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            (None, Some(v)) => {
                return Err(err(
                    "policies",
                    format!("expected an array of strings, found {}", v.kind()),
                ))
            }
            (None, None) => vec![Policy::Darc],
        };

        let load = root.f64_or("load", 0.7)?;
        if !(load > 0.0 && load <= 2.0) {
            return Err(err(
                "load",
                format!("{load} is outside (0, 2] (fraction of peak service rate)"),
            ));
        }

        let zipf = root.opt_f64("zipf")?;
        if let Some(s) = zipf {
            if s <= 0.0 {
                return Err(err("zipf", format!("exponent {s} must be positive")));
            }
        }

        let type_ctxs = root.table_array("types")?;
        if type_ctxs.is_empty() {
            return Err(err(
                "types",
                "at least one [[types]] entry is required (name, ratio, service)",
            ));
        }
        let mut types = Vec::with_capacity(type_ctxs.len());
        for ctx in &type_ctxs {
            ctx.known_keys(&["name", "ratio", "service"])?;
            let ty_name = ctx.req_str("name")?.to_string();
            let ratio = if zipf.is_some() {
                // Zipf overwrites ratios; accept-and-ignore would hide a
                // conflicting intent, so reject the combination.
                if ctx.table.contains("ratio") {
                    return Err(err(
                        ctx.at("ratio"),
                        "remove per-type ratios when `zipf` is set (zipf assigns them by rank)",
                    ));
                }
                0.0
            } else {
                let r = ctx.req_f64("ratio")?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(err(ctx.at("ratio"), format!("{r} is outside [0, 1]")));
                }
                r
            };
            let service_ctx = ctx.opt_table("service")?.ok_or_else(|| {
                err(
                    ctx.at("service"),
                    "required table is missing, e.g. service = { dist = \"constant\", mean_us = 1.0 }",
                )
            })?;
            let service = parse_service(&service_ctx)?;
            types.push(TypeSpec {
                name: ty_name,
                ratio,
                service,
            });
        }
        if let Some(s) = zipf {
            for (ty, r) in types.iter_mut().zip(zipf_ratios(type_ctxs.len(), s)) {
                ty.ratio = r;
            }
        } else {
            let total: f64 = types.iter().map(|t| t.ratio).sum();
            if (total - 1.0).abs() >= 0.01 {
                return Err(err(
                    "types",
                    format!("type ratios must sum to 1 (±1%), got {total}"),
                ));
            }
        }

        let phase_ctxs = root.table_array("phases")?;
        let phases = if phase_ctxs.is_empty() {
            let duration_ms = root.opt_f64("duration_ms")?.ok_or_else(|| {
                err(
                    "duration_ms",
                    "required when no [[phases]] are declared (single-phase run length)",
                )
            })?;
            if duration_ms <= 0.0 {
                return Err(err(
                    "duration_ms",
                    format!("{duration_ms} must be positive"),
                ));
            }
            vec![PhaseSpec {
                duration_ms,
                load: None,
                ratios: None,
                service_us: None,
            }]
        } else {
            if root.table.contains("duration_ms") {
                return Err(err(
                    "duration_ms",
                    "remove the top-level duration when [[phases]] declare their own",
                ));
            }
            let mut out = Vec::with_capacity(phase_ctxs.len());
            for ctx in &phase_ctxs {
                ctx.known_keys(&["duration_ms", "load", "ratios", "service_us"])?;
                let duration_ms = ctx.req_f64("duration_ms")?;
                if duration_ms <= 0.0 {
                    return Err(err(
                        ctx.at("duration_ms"),
                        format!("{duration_ms} must be positive"),
                    ));
                }
                let p_load = ctx.opt_f64("load")?;
                if let Some(l) = p_load {
                    if !(l > 0.0 && l <= 2.0) {
                        return Err(err(ctx.at("load"), format!("{l} is outside (0, 2]")));
                    }
                }
                let ratios = ctx.opt_f64_array("ratios")?;
                if let Some(rs) = &ratios {
                    if rs.len() != types.len() {
                        return Err(err(
                            ctx.at("ratios"),
                            format!("{} entries for {} types", rs.len(), types.len()),
                        ));
                    }
                    let total: f64 = rs.iter().sum();
                    if (total - 1.0).abs() >= 0.01 {
                        return Err(err(
                            ctx.at("ratios"),
                            format!("must sum to 1 (±1%), got {total}"),
                        ));
                    }
                }
                let service_us = ctx.opt_f64_array("service_us")?;
                if let Some(ss) = &service_us {
                    if ss.len() != types.len() {
                        return Err(err(
                            ctx.at("service_us"),
                            format!("{} entries for {} types", ss.len(), types.len()),
                        ));
                    }
                    if let Some(bad) = ss.iter().find(|s| **s <= 0.0) {
                        return Err(err(
                            ctx.at("service_us"),
                            format!("{bad} µs: service times must be positive"),
                        ));
                    }
                }
                out.push(PhaseSpec {
                    duration_ms,
                    load: p_load,
                    ratios,
                    service_us,
                });
            }
            out
        };

        let arrival = match root.opt_table("arrival")? {
            None => ArrivalSpec::Poisson,
            Some(ctx) => {
                ctx.known_keys(&["process", "calm_ms", "burst_ms", "amplification"])?;
                match ctx.opt_str("process")?.unwrap_or("poisson") {
                    "poisson" => ArrivalSpec::Poisson,
                    "bursty" => {
                        let calm_ms = ctx.f64_or("calm_ms", 10.0)?;
                        let burst_ms = ctx.f64_or("burst_ms", 1.0)?;
                        let amplification = ctx.f64_or("amplification", 3.0)?;
                        if calm_ms <= 0.0 || burst_ms <= 0.0 {
                            return Err(err(
                                ctx.at("calm_ms"),
                                "dwell times must be positive milliseconds",
                            ));
                        }
                        if amplification <= 1.0 {
                            return Err(err(
                                ctx.at("amplification"),
                                format!(
                                    "{amplification} must exceed 1 (burst-state rate multiplier)"
                                ),
                            ));
                        }
                        // Mirrors ArrivalGen::with_bursts' feasibility
                        // assertion, as a spec error instead of a panic.
                        if amplification * burst_ms / (burst_ms + calm_ms) >= 1.0 {
                            return Err(err(
                                ctx.at("amplification"),
                                "burst state would exceed the total rate budget; \
                                 lower amplification or burst_ms",
                            ));
                        }
                        ArrivalSpec::Bursty {
                            calm_ms,
                            burst_ms,
                            amplification,
                        }
                    }
                    other => {
                        return Err(err(
                            ctx.at("process"),
                            format!("unknown process `{other}` (accepted: poisson, bursty)"),
                        ))
                    }
                }
            }
        };

        let engine = match root.opt_table("engine")? {
            None => EngineTuning {
                darc_min_samples: 5_000,
                queue_capacity: 0,
            },
            Some(ctx) => {
                ctx.known_keys(&["darc_min_samples", "queue_capacity"])?;
                EngineTuning {
                    darc_min_samples: ctx.u64_or("darc_min_samples", 5_000)?,
                    queue_capacity: ctx.usize_or("queue_capacity", 0)?,
                }
            }
        };

        let faults = match root.opt_table("faults")? {
            None => FaultsSpec::default(),
            Some(ctx) => {
                ctx.known_keys(&["nic_drop_every", "stall"])?;
                let nic_drop_every = ctx.u64_or("nic_drop_every", 0)?;
                let mut stalls = Vec::new();
                for sctx in ctx.table_array("stall")? {
                    sctx.known_keys(&["worker", "after_requests", "stall_ms"])?;
                    let worker = sctx.usize_or("worker", usize::MAX)?;
                    if worker >= workers {
                        return Err(err(
                            sctx.at("worker"),
                            format!("worker index must be below workers ({workers})"),
                        ));
                    }
                    stalls.push(StallSpec {
                        worker,
                        after_requests: sctx.u64_or("after_requests", 0)?,
                        stall_ms: sctx.req_f64("stall_ms")?,
                    });
                }
                FaultsSpec {
                    nic_drop_every,
                    stalls,
                }
            }
        };

        let sim = match root.opt_table("sim")? {
            None => SimTuning {
                warmup_fraction: 0.1,
                rtt_us: 0.0,
            },
            Some(ctx) => {
                ctx.known_keys(&["warmup_fraction", "rtt_us"])?;
                let warmup_fraction = ctx.f64_or("warmup_fraction", 0.1)?;
                if !(0.0..1.0).contains(&warmup_fraction) {
                    return Err(err(
                        ctx.at("warmup_fraction"),
                        format!("{warmup_fraction} is outside [0, 1)"),
                    ));
                }
                SimTuning {
                    warmup_fraction,
                    rtt_us: ctx.f64_or("rtt_us", 0.0)?,
                }
            }
        };

        let threaded = match root.opt_table("threaded")? {
            None => ThreadedTuning::default(),
            Some(ctx) => {
                ctx.known_keys(&[
                    "time_scale",
                    "ring_depth",
                    "pool_buffers",
                    "buf_size",
                    "grace_ms",
                    "max_service_ms",
                    "steering",
                    "transport",
                    "handler",
                    "idle_backoff_us",
                ])?;
                let time_scale = ctx.f64_or("time_scale", 1.0)?;
                if time_scale <= 0.0 {
                    return Err(err(
                        ctx.at("time_scale"),
                        format!("{time_scale} must be positive"),
                    ));
                }
                let steering = ctx.opt_str("steering")?.unwrap_or("rss").to_string();
                if steering != "rss" && steering != "by_type" {
                    return Err(err(
                        ctx.at("steering"),
                        format!("unknown steering `{steering}` (accepted: rss, by_type)"),
                    ));
                }
                let transport = ctx.opt_str("transport")?.unwrap_or("loopback").to_string();
                if transport != "loopback" && transport != "udp" {
                    return Err(err(
                        ctx.at("transport"),
                        format!("unknown transport `{transport}` (accepted: loopback, udp)"),
                    ));
                }
                let handler = ctx.opt_str("handler")?.unwrap_or("spin").to_string();
                if handler != "spin" && handler != "sleep" {
                    return Err(err(
                        ctx.at("handler"),
                        format!("unknown handler `{handler}` (accepted: spin, sleep)"),
                    ));
                }
                let idle_backoff_us = ctx.f64_or("idle_backoff_us", 0.0)?;
                if !idle_backoff_us.is_finite() || idle_backoff_us < 0.0 {
                    return Err(err(
                        ctx.at("idle_backoff_us"),
                        format!("{idle_backoff_us} must be finite and >= 0 (0 busy-yields)"),
                    ));
                }
                ThreadedTuning {
                    time_scale,
                    ring_depth: ctx.usize_or("ring_depth", 4096)?,
                    pool_buffers: ctx.usize_or("pool_buffers", 4096)?,
                    buf_size: ctx.usize_or("buf_size", 128)?,
                    grace_ms: ctx.u64_or("grace_ms", 200)?,
                    max_service_ms: ctx.f64_or("max_service_ms", 50.0)?,
                    steering,
                    transport,
                    handler,
                    idle_backoff_us,
                }
            }
        };

        let rack = match root.opt_table("rack")? {
            None => None,
            Some(ctx) => {
                ctx.known_keys(&["servers", "policy", "policies"])?;
                let servers = ctx.usize_or("servers", 2)?;
                if servers < 2 {
                    return Err(err(
                        ctx.at("servers"),
                        format!("{servers} must be at least 2 (1-server baseline runs anyway)"),
                    ));
                }
                let mut rack_policies = Vec::new();
                if let Some(one) = ctx.opt_str("policy")? {
                    rack_policies.push(one.to_string());
                }
                for p in ctx.opt_str_array("policies")? {
                    rack_policies.push(p);
                }
                if rack_policies.is_empty() {
                    return Err(err(
                        ctx.at("policy"),
                        "need `policy = \"...\"` or `policies = [...]`",
                    ));
                }
                for p in &rack_policies {
                    if let Err(e) = persephone_rack::build_rack_policy(p, 0) {
                        return Err(err(ctx.at("policy"), e));
                    }
                }
                Some(RackSpec {
                    servers,
                    policies: rack_policies,
                })
            }
        };

        let hotpath = match root.opt_table("hotpath")? {
            None => None,
            Some(ctx) => {
                ctx.known_keys(&["cycles", "reps", "shards_max", "baseline_ns"])?;
                let cycles = ctx.u64_or("cycles", 200_000)?;
                if cycles == 0 {
                    return Err(err(ctx.at("cycles"), "must be at least 1"));
                }
                let reps = ctx.usize_or("reps", 5)?;
                if reps == 0 {
                    return Err(err(ctx.at("reps"), "must be at least 1"));
                }
                let shards_max = ctx.usize_or("shards_max", 8)?;
                if shards_max == 0 {
                    return Err(err(ctx.at("shards_max"), "must be at least 1"));
                }
                let mut baseline_ns = Vec::new();
                if let Some(b) = ctx.opt_table("baseline_ns")? {
                    for (k, v) in b.table.entries() {
                        let ns = v.as_f64().ok_or_else(|| {
                            err(
                                b.at(k),
                                format!("expected nanoseconds (a number), found {}", v.kind()),
                            )
                        })?;
                        if !(ns.is_finite() && ns > 0.0) {
                            return Err(err(
                                b.at(k),
                                format!("{ns} is not a positive ns/op baseline"),
                            ));
                        }
                        baseline_ns.push((k.clone(), ns));
                    }
                }
                Some(HotpathSpec {
                    cycles,
                    reps,
                    shards_max,
                    baseline_ns,
                })
            }
        };

        Ok(ScenarioSpec {
            name,
            description,
            seed,
            workers,
            shards,
            policies,
            load,
            zipf,
            types,
            phases,
            arrival,
            engine,
            faults,
            sim,
            threaded,
            rack,
            hotpath,
        })
    }

    /// Parses TOML text straight into a validated spec.
    pub fn from_toml(text: &str) -> Result<ScenarioSpec, SpecError> {
        let table = crate::toml::parse(text).map_err(|e| err("", e.to_string()))?;
        ScenarioSpec::from_table(&table)
    }

    /// The workload of one phase: base types with the phase's ratio and
    /// service overrides applied.
    fn phase_workload(&self, phase: &PhaseSpec) -> Workload {
        let mixes = self
            .types
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let ratio = phase.ratios.as_ref().map_or(ty.ratio, |rs| rs[i]);
                let service = match &phase.service_us {
                    Some(ss) => Dist::const_micros(ss[i]),
                    None => ty.service,
                };
                TypeMix {
                    name: ty.name.clone(),
                    ratio,
                    service,
                }
            })
            .collect();
        Workload {
            name: self.name.clone(),
            types: mixes,
        }
    }

    /// The full phase script as the simulator's [`PhasedWorkload`].
    pub fn phased_workload(&self) -> PhasedWorkload {
        PhasedWorkload::new(
            self.phases
                .iter()
                .map(|p| Phase {
                    duration: Nanos::from_micros_f64(p.duration_ms * 1_000.0),
                    workload: self.phase_workload(p),
                    load: p.load.unwrap_or(self.load),
                })
                .collect(),
        )
    }

    /// The first phase's workload — the mix engines are built from
    /// (hints, SJF/FP ordering, DARC's initial profile).
    pub fn base_workload(&self) -> Workload {
        self.phase_workload(&self.phases[0])
    }

    /// Per-type service-time hints for the engines, from the base mix.
    pub fn hints(&self) -> Vec<Option<Nanos>> {
        self.base_workload()
            .types
            .iter()
            .map(|t| Some(t.service.mean()))
            .collect()
    }

    /// Total scripted duration.
    pub fn total_duration(&self) -> Nanos {
        self.phased_workload().total_duration()
    }

    /// Materializes the arrival schedule both backends replay: the
    /// single seeded-RNG source of arrival times, request types, and
    /// per-request service demands.
    pub fn build_trace(&self) -> Vec<Arrival> {
        self.build_trace_for(self.workers)
    }

    /// Like [`build_trace`](Self::build_trace), but with the arrival rate
    /// scaled to `capacity_workers` worker cores — used by rack runs to
    /// hold per-server offered load constant as servers are added.
    pub fn build_trace_for(&self, capacity_workers: usize) -> Vec<Arrival> {
        let pw = self.phased_workload();
        let mut gen = ArrivalGen::phased(&pw, capacity_workers, self.seed);
        if let ArrivalSpec::Bursty {
            calm_ms,
            burst_ms,
            amplification,
        } = self.arrival
        {
            gen = gen.with_bursts(BurstModel {
                calm_mean: Nanos::from_micros_f64(calm_ms * 1_000.0),
                burst_mean: Nanos::from_micros_f64(burst_ms * 1_000.0),
                amplification,
            });
        }
        gen.collect()
    }
}

impl Default for ThreadedTuning {
    fn default() -> Self {
        ThreadedTuning {
            time_scale: 1.0,
            ring_depth: 4096,
            pool_buffers: 4096,
            buf_size: 128,
            grace_ms: 200,
            max_service_ms: 50.0,
            steering: "rss".to_string(),
            transport: "loopback".to_string(),
            handler: "spin".to_string(),
            idle_backoff_us: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
name = "unit"
seed = 7
workers = 4
duration_ms = 10.0

[[types]]
name = "SHORT"
ratio = 0.5
service = { dist = "constant", mean_us = 1.0 }

[[types]]
name = "LONG"
ratio = 0.5
service = { dist = "constant", mean_us = 100.0 }
"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.policies, vec![Policy::Darc]);
        assert_eq!(spec.phases.len(), 1);
        assert_eq!(spec.load, 0.7);
        assert_eq!(spec.engine.darc_min_samples, 5_000);
        assert_eq!(spec.arrival, ArrivalSpec::Poisson);
        let trace = spec.build_trace();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn unknown_keys_are_rejected_with_the_accepted_list() {
        let bad = MINIMAL.replace("workers = 4", "worker = 4");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "worker");
        assert!(e.msg.contains("unknown key"), "{e}");
        assert!(e.msg.contains("workers"), "lists accepted keys: {e}");
    }

    #[test]
    fn transport_key_parses_and_rejects_unknown_wires() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert_eq!(spec.threaded.transport, "loopback", "default wire");
        let udp = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[threaded]\ntransport = \"udp\"",
        );
        let spec = ScenarioSpec::from_toml(&udp).unwrap();
        assert_eq!(spec.threaded.transport, "udp");
        let bad = udp.replace("\"udp\"", "\"rdma\"");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "threaded.transport");
        assert!(e.msg.contains("loopback, udp"), "lists accepted wires: {e}");
    }

    #[test]
    fn handler_key_parses_and_rejects_unknown_handlers() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert_eq!(spec.threaded.handler, "spin", "default handler");
        let sleepy = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[threaded]\nhandler = \"sleep\"",
        );
        let spec = ScenarioSpec::from_toml(&sleepy).unwrap();
        assert_eq!(spec.threaded.handler, "sleep");
        let bad = sleepy.replace("\"sleep\"", "\"yield\"");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "threaded.handler");
        assert!(e.msg.contains("spin, sleep"), "lists accepted: {e}");
    }

    #[test]
    fn idle_backoff_parses_and_rejects_negatives() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert_eq!(spec.threaded.idle_backoff_us, 0.0, "default busy-yields");
        let parked = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[threaded]\nidle_backoff_us = 50.0",
        );
        let spec = ScenarioSpec::from_toml(&parked).unwrap();
        assert_eq!(spec.threaded.idle_backoff_us, 50.0);
        let bad = parked.replace("50.0", "-1.0");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "threaded.idle_backoff_us");
        assert!(e.msg.contains(">= 0"), "states the bound: {e}");
    }

    #[test]
    fn rack_section_round_trips_and_rejects_bad_input() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert!(spec.rack.is_none(), "no [rack] means no rack tier");

        let racked = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[rack]\nservers = 4\npolicies = [\"random\", \"po2c\"]",
        );
        let spec = ScenarioSpec::from_toml(&racked).unwrap();
        let rack = spec.rack.expect("[rack] parses");
        assert_eq!(rack.servers, 4);
        assert_eq!(rack.policies, vec!["random", "po2c"]);

        let single = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[rack]\nservers = 2\npolicy = \"sed\"",
        );
        let rack = ScenarioSpec::from_toml(&single).unwrap().rack.unwrap();
        assert_eq!(rack.policies, vec!["sed"]);

        // Unknown steering policy names are rejected at parse time.
        let bad = racked.replace("\"po2c\"", "\"jsq2\"");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(e.msg.contains("jsq2"), "names the offender: {e}");

        // Unknown keys inside [rack] are rejected with the accepted list.
        let bad = racked.replace("servers = 4", "servers = 4\nreplicas = 3");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(e.msg.contains("servers"), "lists accepted keys: {e}");

        // A rack of one is a misconfiguration, not a degenerate run.
        let bad = racked.replace("servers = 4", "servers = 1");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "rack.servers");

        // A [rack] with no policy at all is rejected.
        let bad = racked.replace("\npolicies = [\"random\", \"po2c\"]", "");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "rack.policy");
    }

    #[test]
    fn hotpath_section_round_trips_and_rejects_bad_input() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        assert!(spec.hotpath.is_none(), "no [hotpath] means no microbench");

        let hot = MINIMAL.replace(
            "duration_ms = 10.0",
            "duration_ms = 10.0\n\n[hotpath]\ncycles = 1000\nreps = 3\nshards_max = 4\n\
             \n[hotpath.baseline_ns]\ndarc = 22.3\ncfcfs = 15.6",
        );
        let spec = ScenarioSpec::from_toml(&hot).unwrap();
        let h = spec.hotpath.expect("[hotpath] parses");
        assert_eq!(h.cycles, 1000);
        assert_eq!(h.reps, 3);
        assert_eq!(h.shards_max, 4);
        assert_eq!(
            h.baseline_ns,
            vec![("darc".to_string(), 22.3), ("cfcfs".to_string(), 15.6)]
        );

        // Defaults when the table is present but sparse.
        let sparse = MINIMAL.replace("duration_ms = 10.0", "duration_ms = 10.0\n\n[hotpath]");
        let h = ScenarioSpec::from_toml(&sparse).unwrap().hotpath.unwrap();
        assert_eq!((h.cycles, h.reps, h.shards_max), (200_000, 5, 8));
        assert!(h.baseline_ns.is_empty());

        // Unknown keys and non-positive baselines are rejected.
        let bad = hot.replace("cycles = 1000", "cycles = 1000\nwarmup = 5");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(e.msg.contains("shards_max"), "lists accepted keys: {e}");
        let bad = hot.replace("darc = 22.3", "darc = -1.0");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert_eq!(e.path, "hotpath.baseline_ns.darc");
    }

    #[test]
    fn trace_for_scaled_capacity_keeps_per_server_load_constant() {
        let spec = ScenarioSpec::from_toml(MINIMAL).unwrap();
        let one = spec.build_trace();
        let four = spec.build_trace_for(spec.workers * 4);
        // Same duration, ~4x the arrivals: per-server offered load holds.
        let ratio = four.len() as f64 / one.len() as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "expected ~4x arrivals, got {}x ({} vs {})",
            ratio,
            four.len(),
            one.len()
        );
        assert_eq!(
            spec.build_trace_for(spec.workers).len(),
            one.len(),
            "build_trace == build_trace_for(workers)"
        );
    }

    #[test]
    fn bad_ratio_sum_and_bad_dist_are_actionable() {
        let bad = MINIMAL.replace("ratio = 0.5", "ratio = 0.4");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(e.msg.contains("sum to 1"), "{e}");
        let bad = MINIMAL.replace("constant", "gaussian");
        let e = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(e.path.contains("service.dist"), "{e}");
        assert!(e.msg.contains("lognormal"), "lists alternatives: {e}");
    }

    #[test]
    fn zipf_assigns_ratios_by_rank() {
        let spec_text = MINIMAL
            .replace("duration_ms = 10.0", "duration_ms = 10.0\nzipf = 1.0")
            .replace("ratio = 0.5\n", "");
        let spec = ScenarioSpec::from_toml(&spec_text).unwrap();
        assert!(spec.types[0].ratio > spec.types[1].ratio);
        let sum: f64 = spec.types.iter().map(|t| t.ratio).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // zipf + explicit ratio is a contradiction, not a silent override.
        let e = ScenarioSpec::from_toml(
            &MINIMAL.replace("duration_ms = 10.0", "duration_ms = 10.0\nzipf = 1.0"),
        )
        .unwrap_err();
        assert!(e.msg.contains("zipf"), "{e}");
    }

    #[test]
    fn phases_override_load_ratios_and_service() {
        let text = r#"
name = "shifty"
workers = 4

[[types]]
name = "A"
ratio = 0.5
service = { dist = "constant", mean_us = 1.0 }

[[types]]
name = "B"
ratio = 0.5
service = { dist = "constant", mean_us = 100.0 }

[[phases]]
duration_ms = 5.0

[[phases]]
duration_ms = 5.0
load = 0.9
ratios = [0.9, 0.1]
service_us = [100.0, 1.0]
"#;
        let spec = ScenarioSpec::from_toml(text).unwrap();
        let pw = spec.phased_workload();
        assert_eq!(pw.phases.len(), 2);
        assert_eq!(pw.phases[0].load, 0.7);
        assert_eq!(pw.phases[1].load, 0.9);
        assert_eq!(pw.phases[1].workload.types[0].ratio, 0.9);
        assert_eq!(
            pw.phases[1].workload.types[0].service,
            Dist::const_micros(100.0)
        );
    }

    #[test]
    fn policies_parse_including_static_darc() {
        let text = MINIMAL.replace(
            "seed = 7",
            "seed = 7\npolicies = [\"darc\", \"darc-static:2\", \"cfcfs\"]",
        );
        let spec = ScenarioSpec::from_toml(&text).unwrap();
        assert_eq!(
            spec.policies,
            vec![
                Policy::Darc,
                Policy::DarcStatic { reserved_short: 2 },
                Policy::CFcfs
            ]
        );
        let e =
            ScenarioSpec::from_toml(&MINIMAL.replace("seed = 7", "seed = 7\npolicy = \"lifo\""))
                .unwrap_err();
        assert!(e.msg.contains("accepted"), "{e}");
    }

    #[test]
    fn infeasible_burst_model_is_a_spec_error_not_a_panic() {
        let text = format!(
            "{MINIMAL}\n[arrival]\nprocess = \"bursty\"\ncalm_ms = 1.0\nburst_ms = 10.0\namplification = 5.0\n"
        );
        let e = ScenarioSpec::from_toml(&text).unwrap_err();
        assert!(e.msg.contains("rate budget"), "{e}");
    }

    #[test]
    fn same_seed_same_trace() {
        let a = ScenarioSpec::from_toml(MINIMAL).unwrap().build_trace();
        let b = ScenarioSpec::from_toml(MINIMAL).unwrap().build_trace();
        assert_eq!(a, b);
    }
}
