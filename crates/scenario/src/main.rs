//! `scenario` — run declarative workload scenarios.
//!
//! ```text
//! scenario run <spec.toml> [--backend sim|threaded|both] [--out DIR] [--no-env] [--quiet]
//! scenario print <spec.toml>        # effective spec after env overrides
//! scenario validate <bench.json>    # check a report against the schema
//! scenario list [DIR]               # list specs in a directory
//! ```
//!
//! `run` writes `BENCH_<name>.json` into `--out` (default: the current
//! directory) and prints a one-line summary per (backend × policy).
//! Every scenario field can be overridden per-run via `PSP_SCENARIO_*`
//! environment variables (see `persephone_scenario::env`); `--no-env`
//! disables that layer.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use persephone_scenario::bench::Meta;
use persephone_scenario::json::{validate_bench, Json};
use persephone_scenario::runner::{run_scenario, summarize, Backend};
use persephone_scenario::spec::ScenarioSpec;
use persephone_scenario::{env as scenario_env, toml};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("run") => cmd_run(&args[1..]),
        Some("print") => cmd_print(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
scenario — run declarative Perséphone workload scenarios

USAGE:
    scenario run <spec.toml> [--backend sim|threaded|both] [--out DIR] [--no-env] [--quiet]
    scenario print <spec.toml>
    scenario validate <bench.json>
    scenario list [DIR]

Every scenario field can be overridden per-run with PSP_SCENARIO_* env
vars, e.g. PSP_SCENARIO_LOAD=0.8 or PSP_SCENARIO_PHASES__0__LOAD=0.95.
";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Loads a spec file, applies env overrides (unless disabled), and
/// returns the effective raw table plus the validated spec.
fn load_spec(
    path: &Path,
    use_env: bool,
    quiet: bool,
) -> Result<(persephone_scenario::value::Table, ScenarioSpec), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut table = toml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if use_env {
        let applied = scenario_env::apply_env_overrides(&mut table)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if !quiet {
            for line in &applied {
                eprintln!("override: {line}");
            }
        }
    }
    let spec = ScenarioSpec::from_table(&table).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((table, spec))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut spec_path: Option<PathBuf> = None;
    let mut backends = vec![Backend::Sim, Backend::Threaded];
    let mut out_dir = PathBuf::from(".");
    let mut use_env = true;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => match it.next().map(|s| Backend::parse_list(s)) {
                Some(Ok(b)) => backends = b,
                Some(Err(e)) => return fail(e),
                None => return fail("--backend needs a value (sim, threaded, both)"),
            },
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => return fail("--out needs a directory"),
            },
            "--no-env" => use_env = false,
            "--quiet" => quiet = true,
            other if spec_path.is_none() && !other.starts_with('-') => {
                spec_path = Some(PathBuf::from(other))
            }
            other => return fail(format!("unexpected argument `{other}`")),
        }
    }
    let Some(spec_path) = spec_path else {
        return fail("missing <spec.toml> (try: scenario run scenarios/smoke.toml)");
    };
    let (_, spec) = match load_spec(&spec_path, use_env, quiet) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };

    let started = Instant::now();
    let mut report = run_scenario(&spec, &backends, Meta::fixed());
    report.meta = Meta {
        created_unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        wall_ms: started.elapsed().as_millis() as u64,
        git_commit: git_commit(),
        host: std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".into()),
    };

    let out_path = out_dir.join(report.file_name());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(format!("cannot create {}: {e}", out_dir.display()));
    }
    if let Err(e) = std::fs::write(&out_path, report.render()) {
        return fail(format!("cannot write {}: {e}", out_path.display()));
    }
    if !quiet {
        print!("{}", summarize(&report));
    }
    println!("wrote {}", out_path.display());
    ExitCode::SUCCESS
}

fn cmd_print(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("missing <spec.toml>");
    };
    match load_spec(Path::new(path), true, true) {
        Ok((table, _)) => {
            print!("{}", toml::render(&table));
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("missing <bench.json>");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let problems = validate_bench(&doc);
    if problems.is_empty() {
        println!(
            "{path}: valid ({})",
            persephone_scenario::json::BENCH_SCHEMA
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("{path}: {} schema problem(s):", problems.len());
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_list(args: &[String]) -> ExitCode {
    let dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("scenarios"));
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => return fail(format!("cannot read {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    for path in paths {
        match load_spec(&path, false, true) {
            Ok((_, spec)) => println!(
                "{:<28} {} type(s), {} phase(s), {} policy(ies) — {}",
                path.display(),
                spec.types.len(),
                spec.phases.len(),
                spec.policies.len(),
                if spec.description.is_empty() {
                    "(no description)"
                } else {
                    &spec.description
                }
            ),
            Err(e) => println!("{:<28} INVALID: {e}", path.display()),
        }
    }
    ExitCode::SUCCESS
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}
