//! In-process hot-path microbench tier (`[hotpath]` in a spec).
//!
//! Where the sim/threaded runs measure *scheduling quality* (tail
//! slowdown under a workload), this tier measures *mechanism cost*: the
//! wall-clock nanoseconds of the dispatcher's per-request critical path
//! — `enqueue → poll → complete` — per policy, plus the DARC decision
//! paths and a shard-scaling curve. The numbers land in a `hotpath`
//! section of `BENCH_<name>.json`, outside `deterministic` (they are
//! machine-dependent by nature; CI byte-diffs only the deterministic
//! section).
//!
//! Methodology, chosen for noisy shared machines:
//!
//! * Each metric is measured `reps` times over `cycles` operations and
//!   the **fastest** repetition is reported — the minimum is the run
//!   least disturbed by preemption and frequency drift, and mechanism
//!   cost has a hard floor, not a distribution worth averaging.
//! * Engines are pinned in their warm-up (centralized-FCFS) phase by an
//!   unreachable profiling-window size, so a reservation rebuild never
//!   lands inside a timed region; the FCFS min-fold over the dense
//!   queue array *is* the measured decision.
//! * The spec's `[hotpath] baseline_ns` table (numbers recorded at an
//!   earlier commit, same reference host) is echoed into the report, so
//!   one file shows the before/after trajectory on the same axis.

use std::time::Instant;

use persephone_core::dispatch::{
    CfcfsEngine, DarcEngine, DfcfsEngine, EngineConfig, FixedPriorityEngine, ScheduleEngine,
    SjfEngine,
};
use persephone_core::policy::Policy;
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;

use crate::json::Json;
use crate::spec::{HotpathSpec, ScenarioSpec};

/// One policy's measured cycle cost.
#[derive(Clone, Debug)]
pub struct PolicyHotpath {
    /// Policy display name (`Policy::name`).
    pub policy: String,
    /// Fastest-rep ns per full enqueue → poll → complete cycle.
    pub cycle_ns: f64,
}

/// One point of the shard-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Dispatcher shards (independent engines behind RSS-style steering).
    pub shards: usize,
    /// Fastest-rep ns per steered cycle.
    pub cycle_ns: f64,
}

/// The `hotpath` report section.
#[derive(Clone, Debug)]
pub struct HotpathResult {
    /// Cycles per repetition.
    pub cycles: u64,
    /// Repetitions per metric (fastest wins).
    pub reps: usize,
    /// Per-policy full-cycle cost, spec order.
    pub policies: Vec<PolicyHotpath>,
    /// DARC poll with every worker busy: the non-work-conserving
    /// "decide to idle" path (queue min-fold + free-worker probe).
    pub darc_idle_poll_ns: f64,
    /// DARC poll + complete with enqueues amortized out (batch refill
    /// every 1024 ops): the dispatch decision plus worker bookkeeping.
    pub darc_poll_complete_ns: f64,
    /// Cycle cost as the dispatch plane is split into K shards.
    pub shard_curve: Vec<ShardPoint>,
    /// Reference numbers echoed from the spec (policy name → ns).
    pub baseline_ns: Vec<(String, f64)>,
}

impl HotpathResult {
    /// Renders the section with a stable key order.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cycles".into(), Json::Int(self.cycles as i64)),
            ("reps".into(), Json::Int(self.reps as i64)),
            (
                "policies".into(),
                Json::Arr(
                    self.policies
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("policy".into(), Json::Str(p.policy.clone())),
                                ("cycle_ns".into(), Json::Num(p.cycle_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "darc_idle_poll_ns".into(),
                Json::Num(self.darc_idle_poll_ns),
            ),
            (
                "darc_poll_complete_ns".into(),
                Json::Num(self.darc_poll_complete_ns),
            ),
            (
                "shard_curve".into(),
                Json::Arr(
                    self.shard_curve
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("shards".into(), Json::Int(s.shards as i64)),
                                ("cycle_ns".into(), Json::Num(s.cycle_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "baseline_ns".into(),
                Json::Obj(
                    self.baseline_ns
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Engine config shared by every measurement: warm-up pinned, unbounded
/// queues (pre-grown to their high-water mark by the measurement loop
/// itself, so the timed region never allocates).
fn engine_config(workers: usize) -> EngineConfig {
    let mut cfg = EngineConfig::darc(workers);
    cfg.profiler.min_samples = u64::MAX;
    cfg
}

fn hints(spec: &ScenarioSpec) -> Vec<Option<Nanos>> {
    spec.hints()
}

/// Fastest-rep ns/op of the full dispatch cycle on a concrete engine
/// type (monomorphized — no virtual dispatch inside the timed loop).
fn cycle_ns<E: ScheduleEngine<u64>>(eng: &mut E, num_types: u32, h: &HotpathSpec) -> f64 {
    let mut best = f64::INFINITY;
    let mut i = 0u64;
    for _ in 0..h.reps {
        let start = Instant::now();
        for _ in 0..h.cycles {
            let ty = TypeId::new((i % num_types as u64) as u32);
            let now = Nanos::from_nanos(i);
            eng.enqueue(ty, i, now)
                .expect("hotpath queues are unbounded");
            let d = eng.poll(now).expect("a worker is free");
            eng.complete(d.worker, Nanos::from_micros(1), now);
            i += 1;
        }
        best = best.min(start.elapsed().as_nanos() as f64 / h.cycles as f64);
    }
    best
}

/// DARC poll with all workers busy and queues non-empty: the paper's
/// "idling is ideal" decision — scan, find no eligible worker, return.
fn darc_idle_poll_ns(spec: &ScenarioSpec, h: &HotpathSpec) -> f64 {
    let hv = hints(spec);
    let mut eng: DarcEngine<u64> = DarcEngine::new(engine_config(spec.workers), hv.len(), &hv);
    let num_types = hv.len() as u64;
    // Occupy every worker and leave work queued.
    for i in 0..(spec.workers as u64 + 8) {
        let ty = TypeId::new((i % num_types) as u32);
        eng.enqueue(ty, i, Nanos::from_nanos(i))
            .expect("hotpath queues are unbounded");
    }
    for _ in 0..spec.workers {
        eng.poll(Nanos::ZERO).expect("a worker is free");
    }
    let mut best = f64::INFINITY;
    for _ in 0..h.reps {
        let start = Instant::now();
        for i in 0..h.cycles {
            let got = eng.poll(Nanos::from_nanos(i));
            debug_assert!(got.is_none());
            std::hint::black_box(&got);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / h.cycles as f64);
    }
    best
}

/// DARC poll + complete with enqueue cost amortized out: the queue is
/// refilled in batches of 1024, so ~99.9% of timed iterations are pure
/// dispatch decision + worker bookkeeping.
fn darc_poll_complete_ns(spec: &ScenarioSpec, h: &HotpathSpec) -> f64 {
    const BATCH: u64 = 1024;
    let hv = hints(spec);
    let mut eng: DarcEngine<u64> = DarcEngine::new(engine_config(spec.workers), hv.len(), &hv);
    let num_types = hv.len() as u64;
    let mut seq = 0u64;
    let refill = |eng: &mut DarcEngine<u64>, seq: &mut u64| {
        for _ in 0..BATCH {
            let ty = TypeId::new((*seq % num_types) as u32);
            eng.enqueue(ty, *seq, Nanos::from_nanos(*seq))
                .expect("hotpath queues are unbounded");
            *seq += 1;
        }
    };
    refill(&mut eng, &mut seq);
    let mut best = f64::INFINITY;
    for _ in 0..h.reps {
        let mut done = 0u64;
        let start = Instant::now();
        while done < h.cycles {
            let now = Nanos::from_nanos(done);
            match eng.poll(now) {
                Some(d) => {
                    eng.complete(d.worker, Nanos::from_micros(1), now);
                    done += 1;
                }
                None => refill(&mut eng, &mut seq),
            }
        }
        best = best.min(start.elapsed().as_nanos() as f64 / h.cycles as f64);
    }
    best
}

/// FNV-1a-64 of a request sequence number — stands in for the NIC's
/// RSS hash over the 5-tuple.
#[inline]
fn rss_hash(seq: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seq.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Cycle cost with the dispatch plane split into `k` independent DARC
/// engines behind RSS-style steering — the in-process model of
/// `ServerBuilder::shards(k)` (contiguous worker partition, hash
/// steering), minus the NIC rings.
fn sharded_cycle_ns(spec: &ScenarioSpec, h: &HotpathSpec, k: usize) -> f64 {
    let hv = hints(spec);
    let num_types = hv.len() as u64;
    // Contiguous partition, first shards take the remainder — mirrors
    // the runtime's worker split.
    let base = spec.workers / k;
    let rem = spec.workers % k;
    let mut engines: Vec<DarcEngine<u64>> = (0..k)
        .map(|s| {
            let w = (base + usize::from(s < rem)).max(1);
            DarcEngine::new(engine_config(w), hv.len(), &hv)
        })
        .collect();
    let mut best = f64::INFINITY;
    let mut i = 0u64;
    for _ in 0..h.reps {
        let start = Instant::now();
        for _ in 0..h.cycles {
            let shard = (rss_hash(i) % k as u64) as usize;
            let eng = &mut engines[shard];
            let ty = TypeId::new((i % num_types) as u32);
            let now = Nanos::from_nanos(i);
            eng.enqueue(ty, i, now)
                .expect("hotpath queues are unbounded");
            let d = eng.poll(now).expect("a worker is free");
            eng.complete(d.worker, Nanos::from_micros(1), now);
            i += 1;
        }
        best = best.min(start.elapsed().as_nanos() as f64 / h.cycles as f64);
    }
    best
}

/// Runs the whole hotpath tier for a spec.
pub fn run(spec: &ScenarioSpec, h: &HotpathSpec) -> HotpathResult {
    let hv = hints(spec);
    let num_types = hv.len() as u32;
    let mut policies = Vec::new();
    for policy in &spec.policies {
        let cfg = engine_config(spec.workers);
        // One arm per concrete engine type so the timed loop is fully
        // monomorphized; preemptive/sim-only policies have no hot path
        // on the threaded dispatcher and are skipped.
        let ns = match policy {
            Policy::Darc | Policy::DarcStatic { .. } => {
                let mut e: DarcEngine<u64> = DarcEngine::new(cfg, hv.len(), &hv);
                cycle_ns(&mut e, num_types, h)
            }
            Policy::CFcfs => {
                let mut e: CfcfsEngine<u64> = CfcfsEngine::new(cfg, hv.len(), &hv);
                cycle_ns(&mut e, num_types, h)
            }
            Policy::Sjf => {
                let mut e: SjfEngine<u64> = SjfEngine::new(cfg, hv.len(), &hv);
                cycle_ns(&mut e, num_types, h)
            }
            Policy::FixedPriority => {
                let mut e: FixedPriorityEngine<u64> = FixedPriorityEngine::new(cfg, hv.len(), &hv);
                cycle_ns(&mut e, num_types, h)
            }
            Policy::DFcfs => {
                let mut e: DfcfsEngine<u64> = DfcfsEngine::new(cfg, hv.len(), &hv);
                cycle_ns(&mut e, num_types, h)
            }
            Policy::TimeSharing(_) => continue,
        };
        policies.push(PolicyHotpath {
            policy: policy.name(),
            cycle_ns: ns,
        });
    }
    let shard_curve = (1..=h.shards_max.min(spec.workers))
        .map(|k| ShardPoint {
            shards: k,
            cycle_ns: sharded_cycle_ns(spec, h, k),
        })
        .collect();
    HotpathResult {
        cycles: h.cycles,
        reps: h.reps,
        policies,
        darc_idle_poll_ns: darc_idle_poll_ns(spec, h),
        darc_poll_complete_ns: darc_poll_complete_ns(spec, h),
        shard_curve,
        baseline_ns: h.baseline_ns.clone(),
    }
}
