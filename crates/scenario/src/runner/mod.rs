//! Scenario execution: one spec, two backends, one report.
//!
//! Both backends replay the *same* materialized arrival schedule
//! ([`crate::spec::ScenarioSpec::build_trace`]) — arrival times, request
//! types, and per-request service demands sampled once from the seeded
//! RNG — so a scenario's deterministic section is backend-independent
//! and the measured sections answer "same offered work, different
//! substrate".

pub mod sim;
pub mod threaded;

use crate::bench::{BenchReport, Deterministic, Meta, Pcts};
use crate::spec::{RackSpec, ScenarioSpec};

/// Which backends to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Discrete-event simulator (`persephone-sim`).
    Sim,
    /// Threaded runtime over the loopback NIC (`persephone-runtime`).
    Threaded,
}

impl Backend {
    /// Parses `sim` / `threaded` / `both`.
    pub fn parse_list(s: &str) -> Result<Vec<Backend>, String> {
        match s {
            "sim" => Ok(vec![Backend::Sim]),
            "threaded" => Ok(vec![Backend::Threaded]),
            "both" => Ok(vec![Backend::Sim, Backend::Threaded]),
            other => Err(format!(
                "unknown backend `{other}` (accepted: sim, threaded, both)"
            )),
        }
    }
}

/// Runs a scenario on the given backends and assembles the report with
/// the supplied wall-clock metadata (pass [`Meta::fixed`] in tests).
pub fn run_scenario(spec: &ScenarioSpec, backends: &[Backend], meta: Meta) -> BenchReport {
    let trace = spec.build_trace();
    let deterministic = Deterministic::derive(spec, &trace);
    // All rack runs — the pooled 1-server baseline included — replay one
    // trace built for the rack's *total* capacity (`workers × servers`).
    // The baseline serves it with all those workers in a single pooled
    // server; the rack runs shard the same capacity into `servers`
    // machines behind a steering policy. That isolates exactly what
    // RackSched measures: how much of the pooled server's tail does
    // sharding lose, and how much does each steering policy recover?
    // The baseline goes through the same rack machinery (every steering
    // policy is the identity at one server, so it runs as round-robin)
    // rather than an unrelated single-server code path, so engine setup
    // is not a confounder.
    let rack_trace = spec
        .rack
        .as_ref()
        .map(|r| spec.build_trace_for(spec.workers * r.servers));
    let baseline = RackSpec {
        servers: 1,
        policies: vec!["rr".into()],
    };
    let mut runs = Vec::new();
    for backend in backends {
        match backend {
            Backend::Sim => {
                runs.extend(sim::run(spec, &trace));
                if let (Some(rack), Some(rt)) = (&spec.rack, &rack_trace) {
                    runs.extend(sim::run_rack(
                        spec,
                        &baseline,
                        spec.workers * rack.servers,
                        rt,
                    ));
                    runs.extend(sim::run_rack(spec, rack, spec.workers, rt));
                }
            }
            Backend::Threaded => {
                runs.extend(threaded::run(spec, &trace));
                if let (Some(rack), Some(rt)) = (&spec.rack, &rack_trace) {
                    runs.extend(threaded::run_rack(
                        spec,
                        &baseline,
                        spec.workers * rack.servers,
                        rt,
                    ));
                    runs.extend(threaded::run_rack(spec, rack, spec.workers, rt));
                }
            }
        }
    }
    // The hot-path tier runs after the backends so its tight wall-clock
    // loops never contend with the threaded runtime's worker threads.
    let hotpath = spec.hotpath.as_ref().map(|h| crate::hotpath::run(spec, h));
    BenchReport {
        scenario: spec.name.clone(),
        description: spec.description.clone(),
        meta,
        deterministic,
        runs,
        hotpath,
    }
}

/// Duration-weighted mean offered load across the phase script.
pub(crate) fn mean_offered_load(spec: &ScenarioSpec) -> f64 {
    let total: f64 = spec.phases.iter().map(|p| p.duration_ms).sum();
    spec.phases
        .iter()
        .map(|p| p.load.unwrap_or(spec.load) * p.duration_ms)
        .sum::<f64>()
        / total
}

/// Exact percentiles over f64 samples (sorted in place), mirroring the
/// simulator's rank convention.
pub(crate) fn pcts_of(samples: &mut [f64]) -> Pcts {
    if samples.is_empty() {
        return Pcts::default();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |p: f64| {
        let n = samples.len();
        let r = ((n as f64) * p).ceil() as usize;
        samples[r.clamp(1, n) - 1]
    };
    Pcts {
        p50: rank(0.50),
        p99: rank(0.99),
        p999: rank(0.999),
        max: *samples.last().expect("non-empty"),
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
    }
}

/// A compact human summary of a report, one line per run.
pub fn summarize(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scenario {}: {} arrivals, {} type(s), {} phase(s)\n",
        report.scenario,
        report.deterministic.arrivals,
        report.deterministic.types.len(),
        report.deterministic.phases,
    ));
    for run in &report.runs {
        let label = match &run.rack_policy {
            Some(rp) => format!("{}@{}x{}", run.policy, rp, run.servers),
            None => run.policy.clone(),
        };
        out.push_str(&format!(
            "  [{}] {:<14} load={:.2} rps={:.0} done={} drop={} p99.9 slowdown={:.1}\n",
            run.backend,
            label,
            run.offered_load,
            run.achieved_rps,
            run.completions,
            run.dropped + run.timed_out + run.expired,
            run.overall_slowdown.p999,
        ));
    }
    out
}
