//! Simulator backend: replays the trace through `persephone-sim`.
//!
//! Fully deterministic — two same-seed runs produce byte-identical
//! results, which the reproducibility test pins on the whole report.

use std::sync::Arc;

use persephone_core::policy::Policy;
use persephone_rack::{build_rack_policy, RackSim};
use persephone_sim::engine::{simulate, SimConfig, SimPolicy};
use persephone_sim::metrics::Percentiles;
use persephone_sim::policies::{self, darc::DarcSim};
use persephone_sim::workload::Arrival;
use persephone_telemetry::{Telemetry, TelemetryConfig};

use persephone_core::time::Nanos;

use crate::bench::{Pcts, RunResult, TelemetrySummary, TypeResult};
use crate::runner::mean_offered_load;
use crate::spec::{RackSpec, ScenarioSpec};

fn pcts(p: &Percentiles, scale: f64) -> Pcts {
    Pcts {
        p50: p.p50 * scale,
        p99: p.p99 * scale,
        p999: p.p999 * scale,
        max: p.max * scale,
        mean: p.mean * scale,
    }
}

/// Runs every policy in the spec on the simulator.
pub fn run(spec: &ScenarioSpec, trace: &[Arrival]) -> Vec<RunResult> {
    let base = spec.base_workload();
    let num_types = spec.types.len();
    let total = spec.total_duration();
    let mut cfg = SimConfig::new(spec.workers);
    cfg.warmup_fraction = spec.sim.warmup_fraction;
    cfg.rtt = Nanos::from_micros_f64(spec.sim.rtt_us);

    let mut runs = Vec::with_capacity(spec.policies.len());
    for policy in &spec.policies {
        // DARC gets telemetry attached (it is the only sim policy that
        // rings the engine's instruments); baselines run bare.
        let (mut boxed, telemetry): (Box<dyn SimPolicy>, Option<Arc<Telemetry>>) = match policy {
            Policy::Darc => {
                let mut darc = DarcSim::dynamic(&base, spec.workers, spec.engine.darc_min_samples)
                    .with_capacity(spec.engine.queue_capacity);
                let tel = Arc::new(Telemetry::new(TelemetryConfig::new(
                    num_types,
                    spec.workers,
                )));
                darc.attach_telemetry(tel.clone());
                (Box::new(darc), Some(tel))
            }
            other => (
                policies::build(
                    other,
                    &base,
                    spec.workers,
                    spec.engine.darc_min_samples,
                    spec.engine.queue_capacity,
                ),
                None,
            ),
        };
        let out = simulate(
            boxed.as_mut(),
            trace.iter().copied(),
            num_types,
            total,
            &cfg,
        );
        let per_type = spec
            .types
            .iter()
            .zip(out.summary.per_type.iter())
            .map(|(ty, s)| TypeResult {
                name: ty.name.clone(),
                count: s.latency_ns.count as u64,
                latency_us: pcts(&s.latency_ns, 1e-3),
                slowdown: pcts(&s.slowdown, 1.0),
            })
            .collect();
        runs.push(RunResult {
            backend: "sim".into(),
            policy: policy.name(),
            rack_policy: None,
            servers: 1,
            offered_load: mean_offered_load(spec),
            achieved_rps: out.completions as f64 / total.as_secs_f64(),
            sent: trace.len() as u64,
            completions: out.completions,
            dropped: out.summary.dropped,
            rejected: 0,
            timed_out: 0,
            expired: 0,
            shed_at_shutdown: 0,
            quarantines: 0,
            overall_slowdown: pcts(&out.summary.overall_slowdown, 1.0),
            per_type,
            telemetry: telemetry.map(|t| TelemetrySummary::from_snapshot(&t.snapshot())),
        });
    }
    runs
}

/// Runs the rack tier on the simulator: for each steering policy,
/// `rack.servers` copies of the spec's first intra-server policy (each
/// with `workers_per_server` workers) behind that policy, replaying
/// `trace`. The 1-server baseline passes all the rack's workers as one
/// pooled server, so total capacity is held constant while the rack is
/// sharded.
pub fn run_rack(
    spec: &ScenarioSpec,
    rack: &RackSpec,
    workers_per_server: usize,
    trace: &[Arrival],
) -> Vec<RunResult> {
    let num_types = spec.types.len();
    let total = spec.total_duration();
    let hints = spec.hints();
    let intra = &spec.policies[0];
    let mut cfg = SimConfig::new(workers_per_server * rack.servers);
    cfg.warmup_fraction = spec.sim.warmup_fraction;
    cfg.rtt = Nanos::from_micros_f64(spec.sim.rtt_us);

    let mut runs = Vec::with_capacity(rack.policies.len());
    for name in &rack.policies {
        let mut rs = RackSim::new(
            build_rack_policy(name, spec.seed).expect("names are validated at parse time"),
            intra,
            rack.servers,
            workers_per_server,
            num_types,
            &hints,
            spec.engine.darc_min_samples,
            spec.engine.queue_capacity,
        );
        let out = simulate(&mut rs, trace.iter().copied(), num_types, total, &cfg);
        let per_type = spec
            .types
            .iter()
            .zip(out.summary.per_type.iter())
            .map(|(ty, s)| TypeResult {
                name: ty.name.clone(),
                count: s.latency_ns.count as u64,
                latency_us: pcts(&s.latency_ns, 1e-3),
                slowdown: pcts(&s.slowdown, 1.0),
            })
            .collect();
        let mut telemetry = TelemetrySummary::default();
        for t in rs.telemetries() {
            telemetry.absorb(&TelemetrySummary::from_snapshot(&t.snapshot()));
        }
        runs.push(RunResult {
            backend: "sim".into(),
            policy: intra.name(),
            rack_policy: Some(name.clone()),
            servers: rack.servers as u64,
            offered_load: mean_offered_load(spec),
            achieved_rps: out.completions as f64 / total.as_secs_f64(),
            sent: trace.len() as u64,
            completions: out.completions,
            dropped: out.summary.dropped,
            rejected: 0,
            timed_out: 0,
            expired: 0,
            shed_at_shutdown: 0,
            quarantines: 0,
            overall_slowdown: pcts(&out.summary.overall_slowdown, 1.0),
            per_type,
            telemetry: Some(telemetry),
        });
    }
    runs
}
