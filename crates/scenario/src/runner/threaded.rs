//! Threaded backend: replays the trace through the real runtime.
//!
//! The scenario's scripted time can be compressed by
//! `threaded.time_scale`: arrival times *and* service demands are both
//! scaled, preserving utilization (and therefore slowdown shape) while a
//! long script replays in bounded wall time. Per-request service demands
//! ride in the request payload and are burned by
//! [`persephone_runtime::handler::PayloadSpinHandler`], so both backends
//! execute the exact same sampled distributions.

use std::time::Duration;

use persephone_core::classifier::HeaderClassifier;
use persephone_net::nic::{loopback_mq_with_faults, NicFaultPlan, Steering};
use persephone_net::pool::BufferPool;
use persephone_net::udp::{self, UdpConfig};
use persephone_net::wire;
use persephone_rack::{build_rack_policy, run_rack_scheduled, RackMember, RackReport};
use persephone_runtime::fault::FaultPlan;
use persephone_runtime::handler::{PayloadSleepHandler, PayloadSpinHandler, RequestHandler};
use persephone_runtime::loadgen::{run_scheduled, ScheduledRequest};
use persephone_runtime::server::{ServerBuilder, Transport};
use persephone_sim::workload::Arrival;
use persephone_store::spin::SpinCalibration;

use persephone_core::time::Nanos;

use crate::bench::{RunResult, TelemetrySummary, TypeResult};
use crate::runner::{mean_offered_load, pcts_of};
use crate::spec::{RackSpec, ScenarioSpec};

/// Time-scales the trace into the wall-clock schedule plus the per-type
/// mean scaled demand (the slowdown denominator).
fn scaled_schedule(spec: &ScenarioSpec, trace: &[Arrival]) -> (Vec<ScheduledRequest>, Vec<f64>) {
    let num_types = spec.types.len();
    let ts = spec.threaded.time_scale;
    let schedule: Vec<ScheduledRequest> = trace
        .iter()
        .map(|a| ScheduledRequest {
            at_ns: (a.at.as_nanos() as f64 * ts) as u64,
            ty: a.ty.index() as u32,
            service_ns: ((a.service.as_nanos() as f64 * ts) as u64).max(1),
        })
        .collect();
    let mut svc_sum = vec![0u64; num_types];
    let mut svc_n = vec![0u64; num_types];
    for r in &schedule {
        if let Some(i) = svc_sum.get_mut(r.ty as usize) {
            *i += r.service_ns;
            svc_n[r.ty as usize] += 1;
        }
    }
    let mean_svc_ns: Vec<f64> = svc_sum
        .iter()
        .zip(&svc_n)
        .map(|(&s, &n)| if n == 0 { 1.0 } else { s as f64 / n as f64 })
        .collect();
    (schedule, mean_svc_ns)
}

/// The worker handler the spec asked for: a calibrated spinner (exact,
/// costs CPU) or an OS sleeper (occupancy without CPU — how a many-server
/// rack fits on a small machine).
fn make_handler(sleepy: bool, cal: SpinCalibration, max: Nanos) -> Box<dyn RequestHandler> {
    if sleepy {
        Box::new(PayloadSleepHandler::new(max))
    } else {
        Box::new(PayloadSpinHandler::new(cal, max))
    }
}

/// The spec's idle park, `None` when `idle_backoff_us = 0` (busy-yield).
fn idle_backoff(spec: &ScenarioSpec) -> Option<Duration> {
    (spec.threaded.idle_backoff_us > 0.0)
        .then(|| Duration::from_nanos((spec.threaded.idle_backoff_us * 1_000.0) as u64))
}

/// Runs every policy in the spec on the threaded runtime.
pub fn run(spec: &ScenarioSpec, trace: &[Arrival]) -> Vec<RunResult> {
    let num_types = spec.types.len();
    let ts = spec.threaded.time_scale;
    let (schedule, mean_svc_ns) = scaled_schedule(spec, trace);

    let cal = SpinCalibration::calibrate();
    let max_spin = Nanos::from_micros_f64(spec.threaded.max_service_ms * 1_000.0);
    let scaled_secs = spec.total_duration().as_secs_f64() * ts;

    let mut runs = Vec::with_capacity(spec.policies.len());
    for policy in &spec.policies {
        let steering = match spec.threaded.steering.as_str() {
            "by_type" => Steering::ByType((0..num_types).map(|t| t % spec.shards).collect()),
            _ => Steering::Rss,
        };
        let nic_faults = if spec.faults.nic_drop_every > 0 {
            NicFaultPlan::drop_every(spec.faults.nic_drop_every)
        } else {
            NicFaultPlan::default()
        };
        let mut fault_plan = FaultPlan::none();
        for stall in &spec.faults.stalls {
            fault_plan = fault_plan.stall_worker(
                stall.worker,
                stall.after_requests,
                Duration::from_secs_f64(stall.stall_ms / 1_000.0),
            );
        }
        let mut builder = ServerBuilder::new(spec.workers, num_types)
            .shards(spec.shards)
            .policy(policy.clone())
            .hints(spec.hints())
            .faults(fault_plan)
            .tune_engine(|e| {
                e.profiler.min_samples = spec.engine.darc_min_samples;
                e.queue_capacity = spec.engine.queue_capacity;
            })
            .classifier_factory(move |_shard| {
                Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, num_types as u32))
            })
            .handler_factory({
                let sleepy = spec.threaded.handler == "sleep";
                move |_worker| make_handler(sleepy, cal, max_spin)
            });
        if let Some(park) = idle_backoff(spec) {
            builder = builder.idle_backoff(park);
        }
        // Same runtime, different wire: in-process rings, or one real
        // 127.0.0.1 socket per shard (the client steers by destination
        // address, so steering and fault injection behave identically).
        let (mut client, handle) = match spec.threaded.transport.as_str() {
            "udp" => {
                let cfg = UdpConfig {
                    buf_size: spec.threaded.buf_size,
                    pool_buffers: spec.threaded.pool_buffers,
                };
                let port = udp::server(
                    std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
                    spec.shards,
                    cfg,
                )
                .expect("binding the scenario's shard sockets");
                let addrs = port
                    .local_addrs()
                    .expect("a UDP server port always knows its socket addresses");
                let (handle, _) = builder
                    .transport(Transport::Port(port))
                    .start()
                    .expect("starting the scenario server");
                let client = udp::client(&addrs, steering, nic_faults, cfg)
                    .expect("binding the scenario's client socket");
                (client, handle)
            }
            _ => {
                let (client, server) = loopback_mq_with_faults(
                    spec.threaded.ring_depth,
                    spec.shards,
                    steering,
                    nic_faults,
                );
                let (handle, _) = builder
                    .transport(Transport::Port(server))
                    .start()
                    .expect("starting the scenario server");
                (client, handle)
            }
        };

        let mut pool = BufferPool::new(spec.threaded.pool_buffers, spec.threaded.buf_size);
        let report = run_scheduled(
            &mut client,
            &mut pool,
            num_types,
            &schedule,
            Duration::from_millis(spec.threaded.grace_ms),
        );
        let rt = handle.stop();

        let mut overall_slowdown: Vec<f64> = Vec::new();
        let per_type = spec
            .types
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let mut lat_us: Vec<f64> = report.latencies_ns[i]
                    .iter()
                    .map(|&ns| ns as f64 / 1e3)
                    .collect();
                let mut slow: Vec<f64> = report.latencies_ns[i]
                    .iter()
                    .map(|&ns| ns as f64 / mean_svc_ns[i])
                    .collect();
                overall_slowdown.extend_from_slice(&slow);
                TypeResult {
                    name: ty.name.clone(),
                    count: report.latencies_ns[i].len() as u64,
                    latency_us: pcts_of(&mut lat_us),
                    slowdown: pcts_of(&mut slow),
                }
            })
            .collect();

        runs.push(RunResult {
            backend: "threaded".into(),
            policy: policy.name(),
            rack_policy: None,
            servers: 1,
            offered_load: mean_offered_load(spec),
            achieved_rps: report.received as f64 / scaled_secs,
            sent: report.sent,
            completions: report.received,
            dropped: report.dropped,
            rejected: report.rejected,
            timed_out: report.timed_out,
            expired: rt.dispatcher.expired,
            shed_at_shutdown: rt.dispatcher.shed_at_shutdown,
            quarantines: rt.dispatcher.quarantines,
            overall_slowdown: pcts_of(&mut overall_slowdown),
            per_type,
            telemetry: Some(TelemetrySummary::from_snapshot(&rt.dispatcher.telemetry)),
        });
    }
    runs
}

/// Runs the rack tier live: for each steering policy, `rack.servers`
/// full servers (each with `workers_per_server` workers) in one process
/// behind [`run_rack_scheduled`], replaying `trace`. The 1-server
/// baseline passes all the rack's workers as one pooled server, holding
/// total capacity constant. Fault injection stays a single-server
/// concern and is not applied to rack members.
pub fn run_rack(
    spec: &ScenarioSpec,
    rack: &RackSpec,
    workers_per_server: usize,
    trace: &[Arrival],
) -> Vec<RunResult> {
    let num_types = spec.types.len();
    let (schedule, mean_svc_ns) = scaled_schedule(spec, trace);
    let cal = SpinCalibration::calibrate();
    let max_spin = Nanos::from_micros_f64(spec.threaded.max_service_ms * 1_000.0);
    let scaled_secs = spec.total_duration().as_secs_f64() * spec.threaded.time_scale;
    let hints = spec.hints();
    let intra = &spec.policies[0];

    let mut runs = Vec::with_capacity(rack.policies.len());
    for name in &rack.policies {
        let mut members = Vec::with_capacity(rack.servers);
        let mut handles = Vec::with_capacity(rack.servers);
        for _ in 0..rack.servers {
            let steering = match spec.threaded.steering.as_str() {
                "by_type" => Steering::ByType((0..num_types).map(|t| t % spec.shards).collect()),
                _ => Steering::Rss,
            };
            let mut builder = ServerBuilder::new(workers_per_server, num_types)
                .shards(spec.shards)
                .policy(intra.clone())
                .hints(hints.clone())
                .tune_engine(|e| {
                    e.profiler.min_samples = spec.engine.darc_min_samples;
                    e.queue_capacity = spec.engine.queue_capacity;
                })
                .classifier_factory(move |_shard| {
                    Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, num_types as u32))
                })
                .handler_factory({
                    let sleepy = spec.threaded.handler == "sleep";
                    move |_worker| make_handler(sleepy, cal, max_spin)
                });
            if let Some(park) = idle_backoff(spec) {
                builder = builder.idle_backoff(park);
            }
            let (client, handle) = match spec.threaded.transport.as_str() {
                "udp" => {
                    let cfg = UdpConfig {
                        buf_size: spec.threaded.buf_size,
                        pool_buffers: spec.threaded.pool_buffers,
                    };
                    let port = udp::server(
                        std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
                        spec.shards,
                        cfg,
                    )
                    .expect("binding a rack member's shard sockets");
                    let addrs = port
                        .local_addrs()
                        .expect("a UDP server port always knows its socket addresses");
                    let (handle, _) = builder
                        .transport(Transport::Port(port))
                        .start()
                        .expect("starting a rack member");
                    let client = udp::client(&addrs, steering, NicFaultPlan::default(), cfg)
                        .expect("binding a rack member's client socket");
                    (client, handle)
                }
                _ => {
                    let (client, server) = loopback_mq_with_faults(
                        spec.threaded.ring_depth,
                        spec.shards,
                        steering,
                        NicFaultPlan::default(),
                    );
                    let (handle, _) = builder
                        .transport(Transport::Port(server))
                        .start()
                        .expect("starting a rack member");
                    (client, handle)
                }
            };
            members.push(RackMember {
                client,
                telemetries: handle.telemetries().to_vec(),
            });
            handles.push(handle);
        }

        let mut policy = build_rack_policy(name, spec.seed).expect("validated at parse time");
        let mut pool = BufferPool::new(spec.threaded.pool_buffers, spec.threaded.buf_size);
        let report = run_rack_scheduled(
            &mut members,
            policy.as_mut(),
            &mut pool,
            num_types,
            workers_per_server,
            &hints,
            &schedule,
            Duration::from_millis(spec.threaded.grace_ms),
            idle_backoff(spec),
        );
        let rack_report = RackReport {
            servers: handles.into_iter().map(|h| h.stop()).collect(),
        };
        let merged = rack_report.merged();

        let mut overall_slowdown: Vec<f64> = Vec::new();
        let per_type = spec
            .types
            .iter()
            .enumerate()
            .map(|(i, ty)| {
                let mut lat_us: Vec<f64> = report.latencies_ns[i]
                    .iter()
                    .map(|&ns| ns as f64 / 1e3)
                    .collect();
                let mut slow: Vec<f64> = report.latencies_ns[i]
                    .iter()
                    .map(|&ns| ns as f64 / mean_svc_ns[i])
                    .collect();
                overall_slowdown.extend_from_slice(&slow);
                TypeResult {
                    name: ty.name.clone(),
                    count: report.latencies_ns[i].len() as u64,
                    latency_us: pcts_of(&mut lat_us),
                    slowdown: pcts_of(&mut slow),
                }
            })
            .collect();

        runs.push(RunResult {
            backend: "threaded".into(),
            policy: intra.name(),
            rack_policy: Some(name.clone()),
            servers: rack.servers as u64,
            offered_load: mean_offered_load(spec),
            achieved_rps: report.received as f64 / scaled_secs,
            sent: report.sent,
            completions: report.received,
            dropped: report.dropped,
            rejected: report.rejected,
            timed_out: report.timed_out,
            expired: merged.expired,
            shed_at_shutdown: merged.shed_at_shutdown,
            quarantines: merged.quarantines,
            overall_slowdown: pcts_of(&mut overall_slowdown),
            per_type,
            telemetry: Some(TelemetrySummary::from_snapshot(&merged.telemetry)),
        });
    }
    runs
}
