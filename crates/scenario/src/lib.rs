//! # persephone-scenario — declarative workload scenarios
//!
//! The scenario engine turns a TOML spec into a full experiment run and
//! a `BENCH_<name>.json` report — the repo's performance trajectory. One
//! spec declares everything the paper's evaluation harness needed flags
//! and code for: the request-type mix (optionally Zipf-skewed), per-type
//! service distributions, an open-loop Poisson (optionally MMPP-bursty)
//! arrival process, a script of time-varying phases (diurnal ramps,
//! flash crowds, mid-run workload shifts — §5.5 Figure 7 generalized),
//! the scheduling policies to compare, engine tuning, and fault
//! injection (lossy wire, worker stalls).
//!
//! The same spec runs on **both** backends from one binary:
//!
//! ```text
//! scenario run scenarios/high_bimodal.toml --backend both
//! ```
//!
//! * the discrete-event simulator (`persephone-sim`) — deterministic;
//! * the threaded runtime (`persephone-runtime`) over the loopback NIC —
//!   real threads, real queues, wall-clock noisy.
//!
//! Both replay the *same* materialized arrival schedule (times, types,
//! per-request service demands) sampled once from the seeded RNG in
//! `persephone-core::rng`, so results answer "same offered work,
//! different substrate". Any field can be overridden per-run with
//! `PSP_SCENARIO_*` environment variables ([`env`]).
//!
//! ## Module map
//!
//! * [`value`] — the dynamic TOML value tree (insertion-ordered).
//! * [`toml`] — hand-rolled TOML parser/renderer (the workspace builds
//!   offline with zero registry dependencies).
//! * [`json`] — hand-rolled JSON emitter/parser + BENCH schema validator.
//! * [`env`] — `PSP_SCENARIO_*` override layer.
//! * [`spec`] — the typed, validating scenario model.
//! * [`bench`] — the `BENCH_*.json` report model.
//! * [`runner`] — backend drivers ([`runner::sim`], [`runner::threaded`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod env;
pub mod hotpath;
pub mod json;
pub mod runner;
pub mod spec;
pub mod toml;
pub mod value;

pub use bench::{BenchReport, Deterministic, Meta, RunResult};
pub use runner::{run_scenario, Backend};
pub use spec::{ScenarioSpec, SpecError};
