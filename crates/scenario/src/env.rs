//! Berserker-style environment overrides for scenario fields.
//!
//! Any scenario key can be overridden without editing the TOML:
//!
//! ```text
//! PSP_SCENARIO_LOAD=0.8                    # top-level `load`
//! PSP_SCENARIO_SEED=99                     # top-level `seed`
//! PSP_SCENARIO_ENGINE__QUEUE_CAPACITY=64   # [engine] queue_capacity
//! PSP_SCENARIO_PHASES__0__LOAD=0.95        # [[phases]] #0, `load`
//! PSP_SCENARIO_POLICIES='["darc","sjf"]'   # whole arrays too
//! ```
//!
//! The variable name after the `PSP_SCENARIO_` prefix is lowercased and
//! split on `__` into a path; numeric segments index arrays. Values are
//! parsed as TOML scalars ([`crate::toml::parse_scalar`]), falling back
//! to a plain string — so `PSP_SCENARIO_POLICY=cfcfs` needs no quoting.
//!
//! Overrides are applied to the **raw value tree before typed parsing**
//! ([`crate::spec::ScenarioSpec::from_table`]), which makes precedence
//! unambiguous: env beats TOML, and an override that produces an invalid
//! spec fails with the same actionable error a bad file would.

use crate::toml::parse_scalar;
use crate::value::{set_path, Table};

/// The environment-variable prefix.
pub const ENV_PREFIX: &str = "PSP_SCENARIO_";

/// An override that could not be applied.
#[derive(Debug)]
pub struct EnvError {
    /// The offending variable name.
    pub var: String,
    /// Why it failed.
    pub msg: String,
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot apply override {}: {}", self.var, self.msg)
    }
}

impl std::error::Error for EnvError {}

/// Applies overrides from an explicit variable list (testable core).
/// Variables without the prefix are ignored. Returns a human-readable
/// description of each override applied, in sorted-variable order so
/// application is deterministic regardless of environment iteration
/// order.
pub fn apply_overrides<I>(table: &mut Table, vars: I) -> Result<Vec<String>, EnvError>
where
    I: IntoIterator<Item = (String, String)>,
{
    let mut matched: Vec<(String, String)> = vars
        .into_iter()
        .filter(|(k, _)| k.starts_with(ENV_PREFIX) && k.len() > ENV_PREFIX.len())
        .collect();
    matched.sort();
    let mut applied = Vec::with_capacity(matched.len());
    for (var, raw) in matched {
        let path_str = var[ENV_PREFIX.len()..].to_ascii_lowercase();
        let segments: Vec<&str> = path_str.split("__").collect();
        if segments.iter().any(|s| s.is_empty()) {
            return Err(EnvError {
                var,
                msg: "empty path segment (separate nested keys with exactly two underscores)"
                    .into(),
            });
        }
        let value = parse_scalar(&raw);
        set_path(table, &segments, value).map_err(|e| EnvError {
            var: var.clone(),
            msg: e.0,
        })?;
        applied.push(format!("{} = {} (from {var})", segments.join("."), raw));
    }
    Ok(applied)
}

/// Applies overrides from the process environment.
pub fn apply_env_overrides(table: &mut Table) -> Result<Vec<String>, EnvError> {
    apply_overrides(table, std::env::vars())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use crate::value::Value;

    const SPEC: &str = r#"
name = "envtest"
seed = 7
workers = 4
load = 0.5
duration_ms = 10.0

[engine]
queue_capacity = 0

[[types]]
name = "SHORT"
ratio = 0.5
service = { dist = "constant", mean_us = 1.0 }

[[types]]
name = "LONG"
ratio = 0.5
service = { dist = "constant", mean_us = 100.0 }
"#;

    fn vars(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn env_beats_toml_for_scalars_tables_and_arrays() {
        let mut table = crate::toml::parse(SPEC).unwrap();
        let applied = apply_overrides(
            &mut table,
            vars(&[
                ("PSP_SCENARIO_LOAD", "0.8"),
                ("PSP_SCENARIO_ENGINE__QUEUE_CAPACITY", "64"),
                ("PSP_SCENARIO_TYPES__1__RATIO", "0.5"),
                ("PSP_SCENARIO_POLICY", "cfcfs"),
                ("UNRELATED", "ignored"),
            ]),
        )
        .unwrap();
        assert_eq!(applied.len(), 4);
        let spec = ScenarioSpec::from_table(&table).unwrap();
        assert_eq!(spec.load, 0.8, "env override wins over the TOML value");
        assert_eq!(spec.engine.queue_capacity, 64);
        assert_eq!(
            spec.policies,
            vec![persephone_core::policy::Policy::CFcfs],
            "bare string value parses without quoting"
        );
    }

    #[test]
    fn overrides_go_through_full_spec_validation() {
        let mut table = crate::toml::parse(SPEC).unwrap();
        apply_overrides(&mut table, vars(&[("PSP_SCENARIO_LOAD", "7.5")])).unwrap();
        let e = ScenarioSpec::from_table(&table).unwrap_err();
        assert_eq!(e.path, "load", "an env-sourced bad value errors like TOML");
    }

    #[test]
    fn unknown_key_from_env_is_rejected_downstream() {
        let mut table = crate::toml::parse(SPEC).unwrap();
        apply_overrides(&mut table, vars(&[("PSP_SCENARIO_WORKER", "9")])).unwrap();
        let e = ScenarioSpec::from_table(&table).unwrap_err();
        assert_eq!(e.path, "worker");
    }

    #[test]
    fn bad_paths_error_with_the_variable_name() {
        let mut table = crate::toml::parse(SPEC).unwrap();
        let e = apply_overrides(&mut table, vars(&[("PSP_SCENARIO_TYPES__9__RATIO", "1.0")]))
            .unwrap_err();
        assert_eq!(e.var, "PSP_SCENARIO_TYPES__9__RATIO");
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn whole_array_override() {
        let mut table = crate::toml::parse(SPEC).unwrap();
        apply_overrides(
            &mut table,
            vars(&[("PSP_SCENARIO_POLICIES", "[\"darc\", \"sjf\"]")]),
        )
        .unwrap();
        assert!(matches!(table.get("policies"), Some(Value::Array(a)) if a.len() == 2));
    }
}
