//! Litmus self-tests: tiny known-good and known-bad programs that pin
//! down what the explorer can see and what the race detector reports.
//! The known-bad halves are the first line of "does the checker have
//! teeth" evidence; the ring-shaped mutation tests live in
//! `tests/mutation.rs`.
//!
//! The raw-pointer derefs below are the checker's own access-tracking
//! API; each carries a SAFETY note saying which edge (or deliberate
//! lack of one) governs it.

#![deny(unsafe_op_in_unsafe_fn)]

use persephone_check::sync::atomic::{fence, AtomicU64, Ordering};
use persephone_check::sync::{Arc, UnsafeCell};
use persephone_check::{model, model_expect_violation, model_with, thread, Config};

/// Release/acquire message passing is race-free: the data write
/// happens-before the read whenever the flag is observed set.
#[test]
fn message_passing_release_acquire_is_clean() {
    model(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let data = data.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                // SAFETY: `p` is valid inside the closure; cross-thread
                // ordering of this access is the subject under test.
                data.with_mut(|p| unsafe { *p = 42 });
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            // SAFETY: `p` is valid; the acquire edge above orders it.
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 42, "acquire must see the released write");
        }
        t.join();
    });
}

/// The same program with a relaxed flag store is a data race, and the
/// checker must find the interleaving that proves it.
#[test]
fn message_passing_relaxed_store_is_a_race() {
    let report = model_expect_violation(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let data = data.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                // SAFETY: `p` is valid inside the closure; cross-thread
                // ordering of this access is the subject under test.
                data.with_mut(|p| unsafe { *p = 42 });
                flag.store(1, Ordering::Relaxed); // BUG: no release edge
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            // SAFETY: `p` is valid; the missing release edge makes
            // this the race the checker must report.
            data.with(|p| unsafe { *p });
        }
        t.join();
    });
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// A relaxed *load* of a released flag is equally racy: without the
/// acquire edge the reader's clock never learns of the writer's work.
#[test]
fn message_passing_relaxed_load_is_a_race() {
    let report = model_expect_violation(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let data = data.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                // SAFETY: `p` is valid inside the closure; cross-thread
                // ordering of this access is the subject under test.
                data.with_mut(|p| unsafe { *p = 42 });
                flag.store(1, Ordering::Release);
            })
        };
        if flag.load(Ordering::Relaxed) == 1 {
            // BUG: relaxed load
            // SAFETY: `p` is valid; the missing acquire edge makes
            // this the race the checker must report.
            data.with(|p| unsafe { *p });
        }
        t.join();
    });
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// Fences upgrade relaxed accesses: `fence(Release)` before a relaxed
/// store and `fence(Acquire)` after a relaxed load restore the edge.
#[test]
fn fence_pair_synchronizes_relaxed_accesses() {
    model(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let data = data.clone();
            let flag = flag.clone();
            thread::spawn(move || {
                // SAFETY: `p` is valid; the fence pair below supplies
                // the ordering.
                data.with_mut(|p| unsafe { *p = 7 });
                fence(Ordering::Release);
                flag.store(1, Ordering::Relaxed);
            })
        };
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            // SAFETY: `p` is valid; the acquire fence orders the read.
            let v = data.with(|p| unsafe { *p });
            assert_eq!(v, 7);
        }
        t.join();
    });
}

/// Two unsynchronized writers are the textbook write/write race.
#[test]
fn concurrent_writes_are_a_race() {
    let report = model_expect_violation(|| {
        let data = Arc::new(UnsafeCell::new(0u64));
        let t = {
            let data = data.clone();
            // SAFETY: `p` is valid; the write/write race with the
            // parent below is exactly what the checker must report.
            thread::spawn(move || data.with_mut(|p| unsafe { *p = 1 }))
        };
        // SAFETY: see above — the racing half.
        data.with_mut(|p| unsafe { *p = 2 });
        t.join();
    });
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// Relaxed loads may observe stale values: the explorer must find the
/// execution where the reader misses a write that already "happened"
/// in wall-clock order. This is what gives the seqlock tests teeth.
#[test]
fn relaxed_loads_explore_stale_values() {
    let report = model_expect_violation(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let flag = flag.clone();
            thread::spawn(move || flag.store(1, Ordering::Release))
        };
        t.join();
        // join() creates a happens-before edge, so freshness IS
        // guaranteed here...
        assert_eq!(flag.load(Ordering::Relaxed), 1);
        let stale = Arc::new(AtomicU64::new(0));
        let u = {
            let stale = stale.clone();
            thread::spawn(move || stale.store(1, Ordering::Release))
        };
        // ...but here, with no edge, a relaxed load may legally return
        // 0 even in schedules where the store already executed. The
        // "violation" is this deliberately wrong assertion.
        let seen = stale.load(Ordering::Relaxed);
        u.join();
        assert_eq!(seen, 1, "deliberately assumes freshness");
    });
    assert!(
        report.contains("deliberately assumes freshness"),
        "unexpected report: {report}"
    );
}

/// A spin loop that can never make progress is reported as a livelock
/// instead of hanging the suite.
#[test]
fn hopeless_spin_loop_reports_livelock() {
    let report = model_expect_violation(|| {
        let flag = Arc::new(AtomicU64::new(0));
        while flag.load(Ordering::Acquire) == 0 {
            thread::yield_now();
        }
    });
    assert!(report.contains("livelock"), "unexpected report: {report}");
}

/// Arc teardown carries the release/acquire edge of real `Arc`: the
/// thread that drops the last clone sees every other clone's writes,
/// so drop-time accounting is race-free.
#[test]
fn arc_teardown_synchronizes_destructor() {
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let t = {
            let cell = cell.clone();
            thread::spawn(move || {
                // SAFETY: `p` is valid; the Arc teardown edge orders
                // this against the post-join read.
                cell.with_mut(|p| unsafe { *p += 1 });
                // `cell` clone drops here, releasing the write.
            })
        };
        t.join();
        // SAFETY: `p` is valid; join + Arc teardown order the read.
        let v = cell.with(|p| unsafe { *p });
        assert_eq!(v, 1);
    });
}

/// The explorer actually enumerates schedules: both orders of two
/// racing (but atomic, hence race-free) stores must be observed.
#[test]
fn exploration_covers_both_store_orders() {
    use std::sync::atomic::{AtomicU64 as RealAtomic, Ordering as RealOrdering};
    let saw_one_first = std::sync::Arc::new(RealAtomic::new(0));
    let saw_two_first = std::sync::Arc::new(RealAtomic::new(0));
    let (c1, c2) = (saw_one_first.clone(), saw_two_first.clone());
    let stats = model_with(Config::default(), move || {
        let x = Arc::new(AtomicU64::new(0));
        let t = {
            let x = x.clone();
            thread::spawn(move || x.store(1, Ordering::SeqCst))
        };
        x.store(2, Ordering::SeqCst);
        t.join();
        match x.load(Ordering::SeqCst) {
            1 => c1.fetch_add(1, RealOrdering::Relaxed),
            2 => c2.fetch_add(1, RealOrdering::Relaxed),
            v => panic!("impossible final value {v}"),
        };
    });
    assert!(stats.executions >= 2, "expected several schedules");
    assert!(saw_one_first.load(RealOrdering::Relaxed) > 0);
    assert!(saw_two_first.load(RealOrdering::Relaxed) > 0);
}
