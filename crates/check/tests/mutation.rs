//! Mutation self-tests: prove the checker has teeth.
//!
//! `MiniSpsc` mirrors `persephone-net/src/spsc.rs` — same Barrelfish
//! lazy index caching, same slot ownership protocol, and the same three
//! Release stores (single-push tail publish, batch tail publish, pop's
//! head hand-back) — but takes each store's `Ordering` as a parameter.
//! With all three at `Release` the full bounded exploration finds
//! nothing; weakening ANY ONE of them to `Relaxed` must make the
//! checker report a data race on the slot. `MiniSeqlock` does the same
//! for the telemetry event ring's writer protocol, where the seeded bug
//! surfaces as a torn read instead.
//!
//! If one of these tests fails, the checker lost its ability to catch
//! that bug class and the real ring tests are no longer trustworthy.

#![deny(unsafe_op_in_unsafe_fn)]

use persephone_check::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use persephone_check::sync::{Arc, UnsafeCell};
use persephone_check::{model, model_expect_violation, thread};

/// Two-slot SPSC ring with parameterized publish orderings.
struct MiniSpsc {
    buf: [UnsafeCell<u64>; 2],
    tail: AtomicUsize,
    head: AtomicUsize,
    /// Ordering of the producer's tail-publish store.
    push_publish: Ordering,
    /// Ordering of the consumer's head hand-back store.
    pop_release: Ordering,
}

impl MiniSpsc {
    fn new(push_publish: Ordering, pop_release: Ordering) -> Self {
        MiniSpsc {
            buf: [UnsafeCell::new(0), UnsafeCell::new(0)],
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            push_publish,
            pop_release,
        }
    }

    /// Producer side; `tail_local` is the producer's local cursor.
    fn push(&self, tail_local: &mut usize, value: u64) -> bool {
        let head = self.head.load(Ordering::Acquire);
        if *tail_local - head == self.buf.len() {
            return false;
        }
        // SAFETY: `p` is valid; this slot is outside `[head, tail)`, so
        // whether the consumer can race it is decided by the publish
        // ordering under test.
        self.buf[*tail_local % self.buf.len()].with_mut(|p| unsafe { *p = value });
        *tail_local += 1;
        self.tail.store(*tail_local, self.push_publish);
        true
    }

    /// Batch push: one head refresh, one tail publish for `src`.
    fn push_batch(&self, tail_local: &mut usize, src: &[u64]) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let free = self.buf.len() - (*tail_local - head);
        let n = free.min(src.len());
        for &value in &src[..n] {
            // SAFETY: as in `push` — claimed slots, ordering under test.
            self.buf[*tail_local % self.buf.len()].with_mut(|p| unsafe { *p = value });
            *tail_local += 1;
        }
        if n > 0 {
            self.tail.store(*tail_local, self.push_publish);
        }
        n
    }

    /// Consumer side; `head_local` is the consumer's local cursor.
    fn pop(&self, head_local: &mut usize) -> Option<u64> {
        let tail = self.tail.load(Ordering::Acquire);
        if *head_local == tail {
            return None;
        }
        // SAFETY: `p` is valid; `head < tail` was observed with Acquire,
        // so this read races only if the publish under test is too weak.
        let value = self.buf[*head_local % self.buf.len()].with(|p| unsafe { *p });
        *head_local += 1;
        self.head.store(*head_local, self.pop_release);
        Some(value)
    }
}

/// Drives one producer (2 single pushes) against one consumer under the
/// model; capacity 2 forces slot reuse so every ordering matters.
fn spsc_single_scenario(push_publish: Ordering, pop_release: Ordering) -> impl Fn() + Send + Sync {
    move || {
        let ring = Arc::new(MiniSpsc::new(push_publish, pop_release));
        let producer = {
            let ring = ring.clone();
            thread::spawn(move || {
                let mut tail = 0;
                let mut next = 1u64;
                while next <= 3 {
                    if ring.push(&mut tail, next) {
                        next += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            })
        };
        let mut head = 0;
        let mut expect = 1u64;
        while expect <= 3 {
            match ring.pop(&mut head) {
                Some(v) => {
                    assert_eq!(v, expect, "FIFO order violated");
                    expect += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join();
    }
}

/// Same shape but the producer uses `push_batch`.
fn spsc_batch_scenario(push_publish: Ordering, pop_release: Ordering) -> impl Fn() + Send + Sync {
    move || {
        let ring = Arc::new(MiniSpsc::new(push_publish, pop_release));
        let producer = {
            let ring = ring.clone();
            thread::spawn(move || {
                let src = [1u64, 2, 3];
                let mut tail = 0;
                let mut sent = 0;
                while sent < src.len() {
                    let n = ring.push_batch(&mut tail, &src[sent..]);
                    if n == 0 {
                        thread::yield_now();
                    }
                    sent += n;
                }
            })
        };
        let mut head = 0;
        let mut expect = 1u64;
        while expect <= 3 {
            match ring.pop(&mut head) {
                Some(v) => {
                    assert_eq!(v, expect, "FIFO order violated");
                    expect += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join();
    }
}

#[test]
fn correct_spsc_single_passes() {
    model(spsc_single_scenario(Ordering::Release, Ordering::Release));
}

#[test]
fn correct_spsc_batch_passes() {
    model(spsc_batch_scenario(Ordering::Release, Ordering::Release));
}

/// Mutation 1: weaken the single-push tail publish (`spsc.rs`
/// `Producer::push`'s `tail.store(.., Release)`).
#[test]
fn weakened_push_publish_is_caught() {
    let report = model_expect_violation(spsc_single_scenario(Ordering::Relaxed, Ordering::Release));
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// Mutation 2: weaken the batch tail publish (`spsc.rs`
/// `Producer::push_batch`'s one-per-batch `tail.store(.., Release)`).
#[test]
fn weakened_batch_publish_is_caught() {
    let report = model_expect_violation(spsc_batch_scenario(Ordering::Relaxed, Ordering::Release));
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// Mutation 3: weaken the consumer's head hand-back (`spsc.rs`
/// `Consumer::pop`'s `head.store(.., Release)`): the producer then
/// reuses a slot without having observed the consumer's read.
#[test]
fn weakened_pop_release_is_caught() {
    let report = model_expect_violation(spsc_single_scenario(Ordering::Release, Ordering::Relaxed));
    assert!(report.contains("data race"), "unexpected report: {report}");
}

/// Single-slot seqlock mirroring the telemetry event ring's writer:
/// odd sequence -> release fence -> relaxed payload stores -> even
/// sequence publish, with the publish ordering parameterized.
struct MiniSeqlock {
    seq: AtomicU64,
    words: [AtomicU64; 2],
    publish: Ordering,
}

impl MiniSeqlock {
    fn write(&self, generation: u64, value: u64) {
        self.seq.store(2 * generation + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // A well-formed record has both words equal.
        self.words[0].store(value, Ordering::Relaxed);
        self.words[1].store(value, Ordering::Relaxed);
        self.seq.store(2 * generation + 2, self.publish);
    }

    /// Returns `Some((w0, w1))` only for snapshots the seqlock protocol
    /// claims are consistent.
    fn read(&self) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::Acquire);
        if !s1.is_multiple_of(2) {
            return None;
        }
        let w0 = self.words[0].load(Ordering::Relaxed);
        let w1 = self.words[1].load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        if s1 == s2 {
            Some((w0, w1))
        } else {
            None
        }
    }
}

fn seqlock_scenario(publish: Ordering) -> impl Fn() + Send + Sync {
    move || {
        let lock = Arc::new(MiniSeqlock {
            seq: AtomicU64::new(0),
            words: [AtomicU64::new(0), AtomicU64::new(0)],
            publish,
        });
        let writer = {
            let lock = lock.clone();
            thread::spawn(move || {
                lock.write(0, 7);
                lock.write(1, 9);
            })
        };
        // Any snapshot the protocol accepts must be un-torn: both words
        // from the same write (or both still zero).
        if let Some((w0, w1)) = lock.read() {
            assert_eq!(w0, w1, "torn seqlock read: {w0} vs {w1}");
        }
        writer.join();
    }
}

#[test]
fn correct_seqlock_passes() {
    model(seqlock_scenario(Ordering::Release));
}

/// Mutation 4: weaken the even-sequence publish (`ring.rs`
/// `EventRing::push`'s final `seq.store(.., Release)`): a reader can
/// now observe the new sequence with stale payload words — a torn read
/// the s1 == s2 check no longer detects.
#[test]
fn weakened_seqlock_publish_is_caught() {
    let report = model_expect_violation(seqlock_scenario(Ordering::Relaxed));
    assert!(
        report.contains("torn seqlock read"),
        "unexpected report: {report}"
    );
}
