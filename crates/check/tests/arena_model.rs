//! Model test for the request plane's arena ring.
//!
//! [`ArenaRing`] backs every typed queue, so a slot-accounting bug there
//! silently corrupts requests in flight. This test drives the ring
//! against a reference model (a plain grow-only vector of live entries)
//! and pins the two properties the dispatcher relies on:
//!
//! * **Alloc/free exactly once.** Every pushed value is observable in
//!   FIFO order while live and is returned by exactly one `pop_front`
//!   (or `drain`); it never reappears afterwards.
//! * **No aliasing across generations.** A [`Handle`] resolves to the
//!   value it was issued for, and to nothing else: once the slot is
//!   freed, reused, or relocated by slab growth, `get` returns `None` —
//!   never a later tenant of the same slot.
//!
//! Exploration is exhaustive over all short op sequences (every
//! interleaving of push/pop/drain up to a fixed depth, from both a cold
//! and a pre-warmed ring), then deep via a seeded pseudo-random walk
//! that forces many wrap-arounds, growths, and slot reuses.

use persephone_core::arena::{ArenaRing, Handle};

/// One live entry the model expects inside the ring: its value, the
/// handle issued at push time, and whether that handle should still
/// resolve (slab growth invalidates all outstanding handles).
#[derive(Clone)]
struct LiveEntry {
    val: u64,
    handle: Handle,
    handle_valid: bool,
}

/// The reference model plus the history needed for aliasing checks.
#[derive(Clone, Default)]
struct Model {
    live: Vec<LiveEntry>,
    /// Handles of freed entries; none of these may ever resolve again.
    dead: Vec<(u64, Handle)>,
    next_val: u64,
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Push,
    Pop,
    Drain,
}

fn apply(ring: &mut ArenaRing<u64>, model: &mut Model, op: Op) {
    match op {
        Op::Push => {
            let val = model.next_val;
            model.next_val += 1;
            let slots_before = ring.slot_count();
            let handle = ring.push_back(val);
            if ring.slot_count() != slots_before {
                // The slab grew: every previously issued handle is dead.
                for e in &mut model.live {
                    e.handle_valid = false;
                }
            }
            model.live.push(LiveEntry {
                val,
                handle,
                handle_valid: true,
            });
        }
        Op::Pop => {
            let got = ring.pop_front();
            if model.live.is_empty() {
                assert_eq!(got, None, "pop from empty ring must return None");
            } else {
                let e = model.live.remove(0);
                assert_eq!(
                    got,
                    Some(e.val),
                    "pop must return the FIFO head exactly once"
                );
                model.dead.push((e.val, e.handle));
            }
        }
        Op::Drain => {
            let drained: Vec<u64> = ring.drain().collect();
            let expect: Vec<u64> = model.live.iter().map(|e| e.val).collect();
            assert_eq!(
                drained, expect,
                "drain must yield each live value once, in order"
            );
            for e in model.live.drain(..) {
                model.dead.push((e.val, e.handle));
            }
        }
    }
}

/// Every invariant checked after every operation.
fn verify(ring: &ArenaRing<u64>, model: &Model, trail: &[Op]) {
    let ctx = || format!("after {trail:?}");
    ring.check_invariants()
        .unwrap_or_else(|e| panic!("slab partition broken {}: {e}", ctx()));
    assert_eq!(ring.len(), model.live.len(), "len mismatch {}", ctx());
    assert_eq!(ring.is_empty(), model.live.is_empty());
    assert_eq!(
        ring.front(),
        model.live.first().map(|e| &e.val),
        "front mismatch {}",
        ctx()
    );
    let seen: Vec<u64> = ring.iter().copied().collect();
    let expect: Vec<u64> = model.live.iter().map(|e| e.val).collect();
    assert_eq!(
        seen,
        expect,
        "iteration must see each live value once {}",
        ctx()
    );
    for e in &model.live {
        if e.handle_valid {
            assert_eq!(
                ring.get(e.handle),
                Some(&e.val),
                "live handle must resolve to its own value {}",
                ctx()
            );
        } else {
            assert_eq!(
                ring.get(e.handle),
                None,
                "handle issued before slab growth must not resolve {}",
                ctx()
            );
        }
    }
    for (val, handle) in &model.dead {
        assert_eq!(
            ring.get(*handle),
            None,
            "freed handle for value {val} must never alias a later tenant {}",
            ctx()
        );
    }
}

/// DFS over every op sequence of length `depth` from the given start.
fn explore(ring: &ArenaRing<u64>, model: &Model, trail: &mut Vec<Op>, depth: usize) {
    if depth == 0 {
        return;
    }
    for op in [Op::Push, Op::Pop, Op::Drain] {
        let mut r = ring.clone();
        let mut m = model.clone();
        trail.push(op);
        apply(&mut r, &mut m, op);
        verify(&r, &m, trail);
        explore(&r, &m, trail, depth - 1);
        trail.pop();
    }
}

#[test]
fn exhaustive_short_sequences_from_cold_ring() {
    let ring: ArenaRing<u64> = ArenaRing::new();
    explore(&ring, &Model::default(), &mut Vec::new(), 7);
}

#[test]
fn exhaustive_short_sequences_from_prewarmed_ring() {
    // Pre-warmed to 2 slots: push #3 triggers the first growth, so the
    // growth-invalidates-handles property is explored at shallow depth.
    let ring: ArenaRing<u64> = ArenaRing::with_slots(2);
    explore(&ring, &Model::default(), &mut Vec::new(), 7);
}

#[test]
fn deep_seeded_walk_reuses_and_grows() {
    let mut ring: ArenaRing<u64> = ArenaRing::with_slots(4);
    let mut model = Model::default();
    // xorshift64* — deterministic, dependency-free.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut trail = Vec::new();
    for step in 0..20_000u32 {
        // Bias pushes in the first half (forces growth + wrap), pops in
        // the second (forces reuse of freed generations), with rare
        // drains throughout.
        let r = rng() % 100;
        let op = match r {
            0..=1 => Op::Drain,
            _ if r % 2 == (step < 10_000) as u64 => Op::Push,
            _ => Op::Pop,
        };
        apply(&mut ring, &mut model, op);
        // Full verification is O(live + dead); sample it.
        if step % 64 == 0 {
            trail.clear();
            trail.push(op);
            verify(&ring, &model, &trail);
        }
        // Keep the dead list bounded so the walk stays fast.
        if model.dead.len() > 4_096 {
            model.dead.drain(..2_048);
        }
    }
    // Drain to a final fixed point and verify once more.
    apply(&mut ring, &mut model, Op::Drain);
    verify(&ring, &model, &[Op::Drain]);
    assert!(ring.is_empty());
    assert!(
        model.next_val > 9_000,
        "walk should have pushed many values"
    );
}
