//! Vector clocks for happens-before tracking.
//!
//! Every model thread carries a [`VClock`]; component `i` counts the
//! shared-memory operations thread `i` has performed. Synchronizing
//! operations (Release stores read by Acquire loads, spawn/join edges,
//! fences) join clocks, so `a.happens_before(&b)` is exactly the C11
//! happens-before relation restricted to the edges the checker models.

/// A grow-on-demand vector clock. Missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u64>,
}

impl VClock {
    /// The all-zero clock (happens before everything).
    pub const fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// This clock's component for thread `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Sets component `tid` to `value` (used for local-epoch bumps).
    pub fn set(&mut self, tid: usize, value: u64) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] = value;
    }

    /// Increments this thread's own component and returns the new epoch.
    pub fn tick(&mut self, tid: usize) -> u64 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Componentwise maximum: afterwards `other ⊑ self`.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(other.slots.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Whether an event at `(tid, epoch)` happens-before a thread whose
    /// clock is `self` — i.e. `self` has observed that epoch.
    pub fn saw(&self, tid: usize, epoch: u64) -> bool {
        self.get(tid) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_saw() {
        let mut a = VClock::new();
        let e1 = a.tick(0);
        let e2 = a.tick(0);
        assert_eq!((e1, e2), (1, 2));
        let mut b = VClock::new();
        b.tick(3);
        assert!(!b.saw(0, 1));
        b.join(&a);
        assert!(b.saw(0, 2));
        assert!(b.saw(3, 1));
        assert!(!b.saw(3, 2));
        assert_eq!(b.get(7), 0);
    }
}
