//! # persephone-check — in-tree concurrency model checker
//!
//! Every latency number this reproduction reports flows through
//! hand-rolled lock-free code: the Barrelfish-style SPSC rings carrying
//! requests between dispatcher and workers (paper §4.3.2), the MPSC
//! buffer-return ring (§4.3.1), and the telemetry seqlock event ring. A
//! single misplaced `Ordering` silently corrupts requests in flight —
//! exactly the class of bug one interleaving under `cargo test` never
//! sees. The workspace builds offline with no registry dependencies, so
//! loom and miri are unavailable; this crate is the in-tree substitute.
//!
//! ## How it works
//!
//! [`model`] reruns a closure over every thread interleaving within
//! configurable bounds (see [`Config`]). The closure builds its shared
//! state from the instrumented types in [`sync`] and spawns threads via
//! [`thread::spawn`]; each operation on those types is a scheduling
//! point where the explorer picks who runs next (DFS over a persistent
//! choice path, bounded preemptions) and — for `Relaxed`/`Acquire`
//! loads — *which visible store* the load observes, bounded by a store
//! history and a stale-read budget. Release/acquire edges, fences,
//! spawn/join, and `Arc` teardown maintain vector clocks, and every
//! [`sync::UnsafeCell`] access is checked against them: unordered
//! accesses are reported as data races with the schedule that produced
//! them, before the memory is touched.
//!
//! What it catches: data races (concurrent `UnsafeCell` access), torn
//! seqlock reads and lost writes (via stale-value exploration plus test
//! assertions), double/missing drops (via drop-counting assertions),
//! deadlocks, and livelocks. What it cannot prove: anything beyond the
//! explored bounds (preemptions, store history, schedule length), SC
//! total-order subtleties of `SeqCst`, or spurious
//! `compare_exchange_weak` failures — see `DESIGN.md` §6.
//!
//! ## Writing a model test
//!
//! ```
//! use persephone_check::{model, sync::atomic::{AtomicU64, Ordering}, sync::Arc, thread};
//!
//! model(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let flag = flag.clone();
//!         thread::spawn(move || flag.store(1, Ordering::Release))
//!     };
//!     let seen = flag.load(Ordering::Acquire);
//!     assert!(seen == 0 || seen == 1);
//!     t.join();
//! });
//! ```

#![warn(missing_docs)]
// The single `unsafe impl Sync` lives in `sync::cell` with a SAFETY
// argument; everything else is safe code.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

mod sched;
pub mod sync;
pub mod thread;
mod vclock;

pub use sched::{model, model_expect_violation, model_with, Config, Stats};
