//! Model-thread spawn/join/yield shims.
//!
//! Inside a model run these integrate with the explorer: `spawn`
//! registers the child with the scheduler (the child inherits the
//! parent's clock — the spawn edge), `join` blocks at the model level
//! and merges the child's final clock (the join edge), and `yield_now`
//! deprioritizes the caller until every other runnable thread has had a
//! turn, which is what makes spin loops explorable without livelock.
//! Outside a model run they fall back to `std::thread`.

use std::sync::{Arc, Mutex};

use crate::sched::{current_ctx, run_model_thread};

enum HandleKind<T> {
    Model {
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; see [`spawn`].
pub struct JoinHandle<T> {
    kind: HandleKind<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value.
    ///
    /// # Panics
    ///
    /// Panics if the target thread panicked (inside a model run that is
    /// already a reported violation and this is unreachable).
    pub fn join(self) -> T {
        match self.kind {
            HandleKind::Model { tid, slot } => {
                let ctx = current_ctx().expect("model JoinHandle joined outside its model run");
                ctx.exec.join_thread(ctx.tid, tid);
                let value = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                value.expect("joined model thread left no value (panicked)")
            }
            HandleKind::Os(handle) => handle.join().expect("spawned thread panicked"),
        }
    }
}

/// Spawns a thread. Inside a model run the child becomes a model
/// thread under the explorer's control; otherwise a plain OS thread.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current_ctx() {
        Some(ctx) => {
            let tid = ctx.exec.register_thread(ctx.tid);
            let slot = Arc::new(Mutex::new(None));
            let exec = ctx.exec.clone();
            let os = {
                let slot = slot.clone();
                let exec = exec.clone();
                std::thread::spawn(move || {
                    run_model_thread(exec.clone(), tid, move || {
                        let value = f();
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                    })
                })
            };
            exec.add_os_handle(os);
            // The spawn itself is a scheduling point: the child may run
            // before the parent's next operation.
            exec.op_point(ctx.tid, "spawn");
            JoinHandle {
                kind: HandleKind::Model { tid, slot },
            }
        }
        None => JoinHandle {
            kind: HandleKind::Os(std::thread::spawn(f)),
        },
    }
}

/// Cooperative yield; the explorer's anti-livelock point for spin loops.
pub fn yield_now() {
    match current_ctx() {
        Some(ctx) => ctx.exec.yield_point(ctx.tid),
        None => std::thread::yield_now(),
    }
}
