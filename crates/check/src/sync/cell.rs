//! Race-detecting `UnsafeCell`.
//!
//! Access goes through [`UnsafeCell::with`] (shared read) and
//! [`UnsafeCell::with_mut`] (exclusive write) so the checker can see
//! every access. Inside a model run each access is checked against the
//! happens-before relation maintained by the instrumented atomics: a
//! write must have observed every previous read and write, a read must
//! have observed the previous write. Two accesses that are not ordered
//! — the definition of a data race, and undefined behaviour in the real
//! program — abort the execution with a schedule-trace report *before*
//! the memory is touched.
//!
//! The std-mode facades in `persephone-net`/`persephone-telemetry`
//! provide the same `with`/`with_mut` API as zero-cost wrappers over
//! `core::cell::UnsafeCell`, so the ported ring code compiles
//! identically in both worlds.

use std::sync::Mutex;

use crate::sched::current_ctx;

/// `(tid, epoch)` of an access, checked against observer clocks.
#[derive(Clone, Copy, Debug)]
struct Access {
    tid: usize,
    epoch: u64,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<Access>,
    /// Most recent read per thread since the last write.
    reads: Vec<Access>,
}

/// Instrumented interior-mutability cell (loom-style API).
#[derive(Debug)]
pub struct UnsafeCell<T> {
    data: core::cell::UnsafeCell<T>,
    state: Mutex<CellState>,
}

// Sharing the shim across threads is sound because (a) inside a model
// run all model threads are serialized by the scheduler token, so
// accesses never physically overlap and unsynchronized ones are
// *reported* rather than executed blind; (b) outside a model run the
// shim adds no synchronization — exactly like `core::cell::UnsafeCell` —
// and the containing type carries the aliasing obligations in its own
// `unsafe impl`s, as it does in std mode.
// SAFETY: `UnsafeCell` accesses are serialized by the model scheduler
// token, or delegated to the containing type's invariants (e.g. the
// rings' `Ring<T>`) outside a run; `T: Send` because the value may be
// read, written, and dropped from whichever thread holds the token.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wraps a value.
    pub const fn new(data: T) -> Self {
        UnsafeCell {
            data: core::cell::UnsafeCell::new(data),
            state: Mutex::new(CellState {
                last_write: None,
                reads: Vec::new(),
            }),
        }
    }

    fn check(&self, is_write: bool) {
        let Some(ctx) = current_ctx() else { return };
        ctx.exec.op_point(
            ctx.tid,
            if is_write {
                "UnsafeCell write"
            } else {
                "UnsafeCell read"
            },
        );
        let mut inner = ctx.exec.lock();
        let tid = ctx.tid;
        let epoch = inner.threads[tid].clock.tick(tid);
        let clock = inner.threads[tid].clock.clone();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let racing_write = state
            .last_write
            .filter(|w| w.tid != tid && !clock.saw(w.tid, w.epoch));
        if let Some(w) = racing_write {
            let msg = format!(
                "data race on UnsafeCell: thread {tid} {} concurrently with \
                 thread {}'s unsynchronized write",
                if is_write { "writes" } else { "reads" },
                w.tid
            );
            drop(state);
            ctx.exec.violation(inner, &msg);
        }
        if is_write {
            let racing_read = state
                .reads
                .iter()
                .find(|r| r.tid != tid && !clock.saw(r.tid, r.epoch))
                .copied();
            if let Some(r) = racing_read {
                let msg = format!(
                    "data race on UnsafeCell: thread {tid} writes concurrently \
                     with thread {}'s unsynchronized read",
                    r.tid
                );
                drop(state);
                ctx.exec.violation(inner, &msg);
            }
            state.last_write = Some(Access { tid, epoch });
            state.reads.clear();
        } else if let Some(r) = state.reads.iter_mut().find(|r| r.tid == tid) {
            r.epoch = epoch;
        } else {
            state.reads.push(Access { tid, epoch });
        }
    }

    /// Shared access: records a read, race-checks it, then hands `f` a
    /// const pointer to the data.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.check(false);
        f(self.data.get())
    }

    /// Exclusive access: records a write, race-checks it, then hands
    /// `f` a mut pointer to the data.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.check(true);
        f(self.data.get())
    }
}
