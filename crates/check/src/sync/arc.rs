//! Instrumented `Arc`.
//!
//! The real `std::sync::Arc` synchronizes its reference count with
//! Release/Acquire atomics, which is what makes running a destructor
//! after the last clone drops sound. The checker cannot see std's
//! internal atomics, so this wrapper re-creates the edge at the model
//! level: every drop releases the dropping thread's clock into a shared
//! sync clock, and the drop that takes the count to zero acquires the
//! accumulated clock before the inner value's destructor runs. Without
//! this, `Ring::drop`'s relaxed index loads would be offered stale
//! values and a correct program would fail its drop-accounting tests.
//!
//! Outside a model run the wrapper is just a `std::sync::Arc` with an
//! ignored side table.

use std::ops::Deref;
use std::sync::Mutex;

use crate::sched::current_ctx;
use crate::vclock::VClock;

struct Inner<T: ?Sized> {
    /// Clocks released by dropped clones; acquired by the final drop.
    sync: Mutex<VClock>,
    data: T,
}

/// Instrumented atomically reference-counted pointer.
pub struct Arc<T: ?Sized> {
    inner: std::sync::Arc<Inner<T>>,
}

impl<T> Arc<T> {
    /// Wraps a value.
    pub fn new(data: T) -> Self {
        Arc {
            inner: std::sync::Arc::new(Inner {
                sync: Mutex::new(VClock::new()),
                data,
            }),
        }
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Self {
        Arc {
            inner: self.inner.clone(),
        }
    }
}

impl<T: ?Sized> Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner.data
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.data.fmt(f)
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        let Some(ctx) = current_ctx() else { return };
        // Model threads run one at a time, so the strong count is
        // stable while we hold the token.
        let mut inner = ctx.exec.lock();
        let tid = ctx.tid;
        inner.threads[tid].clock.tick(tid);
        let mut sync = self.inner.sync.lock().unwrap_or_else(|e| e.into_inner());
        // Release: publish everything this clone's thread did.
        let clock = inner.threads[tid].clock.clone();
        sync.join(&clock);
        if std::sync::Arc::strong_count(&self.inner) == 1 {
            // Acquire: the destructor of `data` (run by the inner Arc
            // drop after we return) sees every clone's work.
            let sync = sync.clone();
            inner.threads[tid].clock.join(&sync);
        }
    }
}
