//! Instrumented stand-ins for the `std::sync` / `core::sync::atomic`
//! vocabulary the lock-free rings use.
//!
//! The `sync` facade modules in `persephone-net` and
//! `persephone-telemetry` re-export these under `--features
//! model-check` and the zero-cost std equivalents otherwise, so the
//! ring code itself is written once against this API.

mod arc;
pub mod atomic;
mod cell;

pub use arc::Arc;
pub use atomic::{fence, AtomicU64, AtomicUsize, Ordering};
pub use cell::UnsafeCell;
