//! Instrumented atomics.
//!
//! Each atomic keeps a bounded *store history* instead of a single
//! value. Inside a model run every operation is a scheduling point, and
//! loads may — subject to coherence, happens-before, and the stale-read
//! budget — return any store still in the history, with the choice
//! explored by the DFS path. Release stores (and relaxed stores after a
//! `fence(Release)`) carry the writer's vector clock; acquire loads
//! (and relaxed loads whose clock is later claimed by `fence(Acquire)`)
//! join it, which is how the checker learns the happens-before edges
//! that the race detector in [`crate::sync::UnsafeCell`] relies on.
//!
//! Deliberate simplifications, all *sound* for a bug-finder (they can
//! hide behaviours, never invent impossible ones):
//!
//! * `SeqCst` loads and every read-modify-write observe the newest
//!   store (C11 requires the latter; the former skips modelling the
//!   SC total order).
//! * `compare_exchange_weak` never fails spuriously.
//! * Read-modify-writes carry the previous store's synchronization
//!   clock forward, which models C11 release sequences.
//!
//! Outside a model run the types degrade to mutex-guarded sequentially
//! consistent cells, so code built with the `model-check` feature still
//! runs correctly (just slower) under plain `cargo test`.

use std::sync::Mutex;

pub use core::sync::atomic::Ordering;

use crate::sched::{current_ctx, ExecInner};
use crate::vclock::VClock;

/// One store event in an atomic's visible history.
#[derive(Debug)]
struct Store {
    value: u64,
    /// The clock an acquiring reader synchronizes with (set by release
    /// stores, or by relaxed stores issued after a release fence).
    sync: Option<VClock>,
    /// `(tid, epoch)` of the writing operation; `None` for the initial
    /// value, which happens-before everything.
    writer: Option<(usize, u64)>,
}

/// Per-thread read cursor: newest history index this thread has
/// observed, plus its remaining stale-read budget.
#[derive(Debug)]
struct LastSeen {
    tid: usize,
    index: usize,
    budget: u32,
}

#[derive(Debug)]
struct AtomicState {
    init: u64,
    /// Absolute index of `history[0]` (old entries are pruned).
    base: usize,
    history: Vec<Store>,
    last_seen: Vec<LastSeen>,
}

impl AtomicState {
    fn ensure_init(&mut self) {
        if self.history.is_empty() {
            self.history.push(Store {
                value: self.init,
                sync: None,
                writer: None,
            });
        }
    }

    fn latest_index(&self) -> usize {
        self.base + self.history.len() - 1
    }

    fn entry(&self, index: usize) -> &Store {
        &self.history[index - self.base]
    }

    fn last_seen_of(&self, tid: usize) -> Option<&LastSeen> {
        self.last_seen.iter().find(|l| l.tid == tid)
    }

    fn set_last_seen(&mut self, tid: usize, index: usize, budget: u32) {
        if let Some(l) = self.last_seen.iter_mut().find(|l| l.tid == tid) {
            l.index = index;
            l.budget = budget;
        } else {
            self.last_seen.push(LastSeen { tid, index, budget });
        }
    }

    fn prune(&mut self, max_history: usize) {
        while self.history.len() > max_history.max(1) {
            self.history.remove(0);
            self.base += 1;
        }
    }
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// The shared 64-bit core behind [`AtomicU64`] and [`AtomicUsize`].
struct Core {
    state: Mutex<AtomicState>,
}

impl Core {
    const fn new(init: u64) -> Self {
        Core {
            state: Mutex::new(AtomicState {
                init,
                base: 0,
                history: Vec::new(),
                last_seen: Vec::new(),
            }),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, AtomicState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Model-mode load: pick (via the DFS path) which visible store this
    /// load observes, then apply its synchronization.
    fn model_load(&self, inner: &mut ExecInner, tid: usize, order: Ordering) -> u64 {
        let _epoch = inner.threads[tid].clock.tick(tid);
        let mut state = self.lock_state();
        state.ensure_init();
        let latest = state.latest_index();

        // Coherence + happens-before floor: cannot read anything older
        // than (a) what this thread already observed, (b) the newest
        // store that happens-before this load.
        let mut floor = state.base;
        for (i, s) in state.history.iter().enumerate() {
            let hb = match s.writer {
                None => true,
                Some((wt, we)) => inner.threads[tid].clock.saw(wt, we),
            };
            if hb {
                floor = state.base + i;
            }
        }
        let (mut lo, budget) = match state.last_seen_of(tid) {
            Some(l) => (floor.max(l.index), l.budget),
            None => (floor, inner.config.stale_budget),
        };
        if order == Ordering::SeqCst || budget == 0 {
            lo = latest;
        }

        // Option 0 = the newest store, so the first execution of every
        // schedule behaves sequentially consistently.
        let options = latest - lo + 1;
        let pick = inner.path.choose(options);
        let index = latest - pick;
        let new_budget = if index == latest {
            inner.config.stale_budget
        } else {
            budget - 1
        };
        state.set_last_seen(tid, index, new_budget);

        let entry = state.entry(index);
        let value = entry.value;
        if let Some(sync) = &entry.sync {
            if is_acquire(order) {
                inner.threads[tid].clock.join(sync);
            } else {
                inner.threads[tid].acq_pending.join(sync);
            }
        }
        value
    }

    /// Model-mode store: append to the history with the synchronization
    /// clock implied by `order` (and any earlier release fence).
    fn model_store(&self, inner: &mut ExecInner, tid: usize, value: u64, order: Ordering) {
        let sync = if is_release(order) {
            Some(inner.threads[tid].clock.clone())
        } else {
            inner.threads[tid].released.clone()
        };
        let epoch = inner.threads[tid].clock.tick(tid);
        let mut state = self.lock_state();
        state.ensure_init();
        state.history.push(Store {
            value,
            sync,
            writer: Some((tid, epoch)),
        });
        state.prune(inner.config.max_history);
        let latest = state.latest_index();
        let budget = inner.config.stale_budget;
        state.set_last_seen(tid, latest, budget);
    }

    /// Model-mode read-modify-write: always observes the newest store
    /// (C11), carries its sync clock forward (release sequences).
    fn model_rmw(
        &self,
        inner: &mut ExecInner,
        tid: usize,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let epoch = inner.threads[tid].clock.tick(tid);
        let mut state = self.lock_state();
        state.ensure_init();
        let latest = state.latest_index();
        let old_sync = state.entry(latest).sync.clone();
        let old = state.entry(latest).value;
        if let Some(sync) = &old_sync {
            if is_acquire(order) {
                inner.threads[tid].clock.join(sync);
            } else {
                inner.threads[tid].acq_pending.join(sync);
            }
        }
        let mut sync = if is_release(order) {
            Some(inner.threads[tid].clock.clone())
        } else {
            inner.threads[tid].released.clone()
        };
        if let Some(prev) = old_sync {
            match &mut sync {
                Some(s) => s.join(&prev),
                None => sync = Some(prev),
            }
        }
        state.history.push(Store {
            value: f(old),
            sync,
            writer: Some((tid, epoch)),
        });
        state.prune(inner.config.max_history);
        let latest = state.latest_index();
        let budget = inner.config.stale_budget;
        state.set_last_seen(tid, latest, budget);
        old
    }

    fn load(&self, order: Ordering, label: &str) -> u64 {
        match current_ctx() {
            Some(ctx) => {
                ctx.exec.op_point(ctx.tid, label);
                let mut inner = ctx.exec.lock();
                self.model_load(&mut inner, ctx.tid, order)
            }
            None => {
                let mut state = self.lock_state();
                state.ensure_init();
                state.entry(state.latest_index()).value
            }
        }
    }

    fn store(&self, value: u64, order: Ordering, label: &str) {
        match current_ctx() {
            Some(ctx) => {
                ctx.exec.op_point(ctx.tid, label);
                let mut inner = ctx.exec.lock();
                self.model_store(&mut inner, ctx.tid, value, order);
            }
            None => {
                let mut state = self.lock_state();
                state.ensure_init();
                state.history.push(Store {
                    value,
                    sync: None,
                    writer: None,
                });
                state.prune(1);
            }
        }
    }

    fn rmw(&self, order: Ordering, label: &str, f: impl FnOnce(u64) -> u64) -> u64 {
        match current_ctx() {
            Some(ctx) => {
                ctx.exec.op_point(ctx.tid, label);
                let mut inner = ctx.exec.lock();
                self.model_rmw(&mut inner, ctx.tid, order, f)
            }
            None => {
                let mut state = self.lock_state();
                state.ensure_init();
                let old = state.entry(state.latest_index()).value;
                state.history.push(Store {
                    value: f(old),
                    sync: None,
                    writer: None,
                });
                state.prune(1);
                old
            }
        }
    }

    /// Compare-exchange: observes the newest store; succeeds as an RMW,
    /// fails as a load with `failure` ordering.
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        label: &str,
    ) -> Result<u64, u64> {
        match current_ctx() {
            Some(ctx) => {
                ctx.exec.op_point(ctx.tid, label);
                let mut inner = ctx.exec.lock();
                let latest = {
                    let mut state = self.lock_state();
                    state.ensure_init();
                    state.entry(state.latest_index()).value
                };
                if latest == current {
                    Ok(self.model_rmw(&mut inner, ctx.tid, success, |_| new))
                } else {
                    // Failure path is a load forced to the newest value.
                    let _epoch = inner.threads[ctx.tid].clock.tick(ctx.tid);
                    let mut state = self.lock_state();
                    let index = state.latest_index();
                    let budget = inner.config.stale_budget;
                    state.set_last_seen(ctx.tid, index, budget);
                    if let Some(sync) = &state.entry(index).sync {
                        if is_acquire(failure) {
                            inner.threads[ctx.tid].clock.join(sync);
                        } else {
                            inner.threads[ctx.tid].acq_pending.join(sync);
                        }
                    }
                    Err(latest)
                }
            }
            None => {
                let mut state = self.lock_state();
                state.ensure_init();
                let latest = state.entry(state.latest_index()).value;
                if latest == current {
                    state.history.push(Store {
                        value: new,
                        sync: None,
                        writer: None,
                    });
                    state.prune(1);
                    Ok(latest)
                } else {
                    Err(latest)
                }
            }
        }
    }

    fn unsync_load(&self) -> u64 {
        let mut state = self.lock_state();
        state.ensure_init();
        state.entry(state.latest_index()).value
    }
}

macro_rules! atomic_wrapper {
    ($name:ident, $int:ty, $label:literal) => {
        #[doc = concat!("Instrumented stand-in for `core::sync::atomic::", stringify!($name), "`.")]
        pub struct $name {
            core: Core,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $int) -> Self {
                $name {
                    core: Core::new(value as u64),
                }
            }

            /// Loads the value; inside a model run the result may be any
            /// store permitted by coherence and happens-before.
            pub fn load(&self, order: Ordering) -> $int {
                self.core.load(order, concat!($label, ".load")) as $int
            }

            /// Stores a value.
            pub fn store(&self, value: $int, order: Ordering) {
                self.core
                    .store(value as u64, order, concat!($label, ".store"))
            }

            /// Adds to the value, returning the previous value.
            pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                self.core.rmw(order, concat!($label, ".fetch_add"), |old| {
                    (old as $int).wrapping_add(value) as u64
                }) as $int
            }

            /// Maximum with the value, returning the previous value.
            pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                self.core.rmw(order, concat!($label, ".fetch_max"), |old| {
                    (old as $int).max(value) as u64
                }) as $int
            }

            /// Compare-exchange; the model never fails spuriously.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.core
                    .compare_exchange(
                        current as u64,
                        new as u64,
                        success,
                        failure,
                        concat!($label, ".compare_exchange"),
                    )
                    .map(|v| v as $int)
                    .map_err(|v| v as $int)
            }

            /// Weak compare-exchange; behaves like the strong variant
            /// (spurious failures are not modelled).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&(self.core.unsync_load() as $int))
                    .finish()
            }
        }
    };
}

atomic_wrapper!(AtomicU64, u64, "AtomicU64");
atomic_wrapper!(AtomicUsize, usize, "AtomicUsize");

/// Instrumented `core::sync::atomic::fence`.
///
/// A release fence snapshots the thread's clock so later relaxed stores
/// publish it; an acquire fence claims the clocks gathered by earlier
/// relaxed loads. `AcqRel`/`SeqCst` do both (acquire first).
pub fn fence(order: Ordering) {
    let Some(ctx) = current_ctx() else { return };
    ctx.exec.op_point(ctx.tid, "fence");
    let mut inner = ctx.exec.lock();
    let tid = ctx.tid;
    inner.threads[tid].clock.tick(tid);
    if is_acquire(order) {
        let pending = std::mem::take(&mut inner.threads[tid].acq_pending);
        inner.threads[tid].clock.join(&pending);
    }
    if is_release(order) {
        inner.threads[tid].released = Some(inner.threads[tid].clock.clone());
    }
}
