//! The deterministic interleaving explorer.
//!
//! [`model`] runs a closure many times. Each run is one *execution*: the
//! model threads it spawns (via [`crate::thread::spawn`]) are real OS
//! threads, but a token protocol lets exactly one run at a time, and
//! every shared-memory operation on the instrumented types
//! ([`crate::sync`]) is a *scheduling point* where the explorer decides
//! which thread performs the next operation. Decisions are recorded in a
//! persistent choice path; after each execution the path is advanced
//! depth-first (the last not-yet-exhausted choice is bumped), so the
//! bounded tree of interleavings is enumerated without ever snapshotting
//! program state.
//!
//! Exploration is bounded three ways, all configurable:
//!
//! * **Preemptions** — involuntary context switches per execution
//!   ([`Config::preemption_bound`]); the classic CHESS result is that
//!   almost all concurrency bugs surface within 2–3.
//! * **Stale reads** — how many consecutive times a `Relaxed`/`Acquire`
//!   load may return an outdated value ([`Config::stale_budget`]),
//!   which keeps spin loops terminating while still exploring weak
//!   memory behaviours.
//! * **Executions / steps** — hard caps that turn runaway state spaces
//!   into loud failures instead of hung test suites.
//!
//! A *violation* (data race on a [`crate::sync::UnsafeCell`], a panic or
//! failed assertion inside a model thread, a deadlock, or a livelock)
//! aborts the execution and is reported together with the schedule
//! trace that produced it, so the interleaving can be read back by a
//! human.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::vclock::VClock;

/// Exploration limits. [`Config::default`] is the quick tier used by CI;
/// [`Config::heavy`] is the deep tier behind `--features heavy-testing`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum involuntary context switches per execution.
    pub preemption_bound: usize,
    /// How many stores per atomic stay visible to stale reads.
    pub max_history: usize,
    /// Consecutive stale loads a thread may take from one atomic before
    /// it is forced to observe the newest value (livelock bound).
    pub stale_budget: u32,
    /// Hard cap on explored executions; exceeding it panics.
    pub max_executions: usize,
    /// Hard cap on scheduling points within one execution; exceeding it
    /// is reported as a livelock violation.
    pub max_steps: usize,
    /// Schedule-trace entries kept for violation reports.
    pub trace_cap: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_history: 2,
            stale_budget: 2,
            max_executions: 60_000,
            max_steps: 20_000,
            trace_cap: 64,
        }
    }
}

impl Config {
    /// The deep-exploration tier: one more preemption, longer visible
    /// store history, and a much larger execution budget.
    pub fn heavy() -> Self {
        Config {
            preemption_bound: 3,
            max_history: 3,
            stale_budget: 3,
            max_executions: 400_000,
            max_steps: 40_000,
            trace_cap: 64,
        }
    }

    /// [`Config::heavy`] when the crate is built with the
    /// `heavy-testing` feature, [`Config::default`] otherwise.
    pub fn auto() -> Self {
        if cfg!(feature = "heavy-testing") {
            Config::heavy()
        } else {
            Config::default()
        }
    }
}

/// Summary returned by a completed (violation-free) exploration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Executions (distinct schedules) explored.
    pub executions: usize,
}

/// One recorded decision: `options` were available, `taken` was chosen.
#[derive(Clone, Copy, Debug)]
struct Node {
    options: usize,
    taken: usize,
}

/// The persistent DFS choice path (prefix replayed, suffix explored).
#[derive(Debug, Default)]
pub(crate) struct Path {
    nodes: Vec<Node>,
    cursor: usize,
}

impl Path {
    /// Takes the next decision: replays the recorded branch while inside
    /// the prefix, appends option 0 at the frontier. Forced decisions
    /// (`options <= 1`) are not recorded.
    pub(crate) fn choose(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        if self.cursor < self.nodes.len() {
            let node = self.nodes[self.cursor];
            assert_eq!(
                node.options, options,
                "non-deterministic model execution: replay diverged \
                 (model closures must be deterministic apart from \
                 instrumented shared state)"
            );
            self.cursor += 1;
            node.taken
        } else {
            self.nodes.push(Node { options, taken: 0 });
            self.cursor += 1;
            0
        }
    }

    /// Advances to the next unexplored schedule; `false` when done.
    fn advance(&mut self) -> bool {
        while let Some(last) = self.nodes.last_mut() {
            if last.taken + 1 < last.options {
                last.taken += 1;
                self.cursor = 0;
                return true;
            }
            self.nodes.pop();
        }
        false
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting for the target thread to finish.
    Blocked {
        on: usize,
    },
    Finished,
}

#[derive(Debug)]
pub(crate) struct ThreadState {
    status: Status,
    /// Deprioritized until every other runnable thread has had a turn.
    yielded: bool,
    /// Happens-before clock; component `t` counts thread `t`'s ops.
    pub(crate) clock: VClock,
    /// Snapshot taken by the last `fence(Release)`, if any.
    pub(crate) released: Option<VClock>,
    /// Sync clocks gathered by relaxed loads, claimed by `fence(Acquire)`.
    pub(crate) acq_pending: VClock,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            yielded: false,
            clock,
            released: None,
            acq_pending: VClock::new(),
        }
    }
}

pub(crate) struct ExecInner {
    pub(crate) config: Config,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) path: Path,
    /// Which thread currently holds the run token.
    active: usize,
    preemptions: usize,
    steps: usize,
    violation: Option<String>,
    aborting: bool,
    /// Wrapper threads that have fully exited (monitor's end condition).
    exited: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    trace: Vec<String>,
}

impl ExecInner {
    fn record_trace(&mut self, entry: String) {
        if self.trace.len() == self.config.trace_cap {
            self.trace.remove(0);
        }
        self.trace.push(entry);
    }
}

/// Shared state of one execution; model threads and the monitor hold it
/// through an `Arc`.
pub(crate) struct Execution {
    inner: Mutex<ExecInner>,
    cv: Condvar,
}

/// Sentinel unwind payload used to tear model threads down when an
/// execution aborts; swallowed by the thread wrapper, never user-visible.
struct Abort;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> =
        const { std::cell::RefCell::new(None) };
}

/// A model thread's link back to its execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Execution {
    fn new(config: Config, path: Path) -> Self {
        let mut clock = VClock::new();
        clock.tick(0);
        Execution {
            inner: Mutex::new(ExecInner {
                config,
                threads: vec![ThreadState::new(clock)],
                path,
                active: 0,
                preemptions: 0,
                steps: 0,
                violation: None,
                aborting: false,
                exited: 0,
                os_handles: Vec::new(),
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a violation, aborts the execution, and unwinds the
    /// calling model thread. All parked threads are woken so their
    /// wrappers can tear down.
    pub(crate) fn violation(&self, mut inner: MutexGuard<'_, ExecInner>, what: &str) -> ! {
        if inner.violation.is_none() {
            let mut report = String::new();
            report.push_str("persephone-check violation: ");
            report.push_str(what);
            report.push_str("\n  schedule trace (most recent last):\n");
            for line in &inner.trace {
                report.push_str("    ");
                report.push_str(line);
                report.push('\n');
            }
            inner.violation = Some(report);
        }
        inner.aborting = true;
        drop(inner);
        self.cv.notify_all();
        std::panic::resume_unwind(Box::new(Abort));
    }

    /// Parks the calling model thread until it is scheduled (or the
    /// execution aborts, in which case it unwinds).
    fn wait_for_turn(&self, mut inner: MutexGuard<'_, ExecInner>, tid: usize) {
        while inner.active != tid && !inner.aborting {
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        if inner.aborting {
            drop(inner);
            std::panic::resume_unwind(Box::new(Abort));
        }
        // Being scheduled clears a voluntary yield.
        inner.threads[tid].yielded = false;
    }

    /// The heart of the explorer: picks which runnable thread performs
    /// the next operation. `voluntary` means the current thread gave up
    /// its turn (yield / block / finish) so a switch is free; otherwise
    /// switching away from a still-runnable thread costs a preemption.
    ///
    /// Returns with the token handed to the chosen thread; if that is
    /// not the caller, the caller parks until rescheduled.
    fn schedule(&self, mut inner: MutexGuard<'_, ExecInner>, tid: usize, voluntary: bool) {
        inner.steps += 1;
        if inner.steps > inner.config.max_steps {
            let max = inner.config.max_steps;
            self.violation(
                inner,
                &format!("possible livelock: execution exceeded {max} scheduling points"),
            );
        }

        let can_continue = !voluntary && inner.threads[tid].status == Status::Runnable;

        // Candidates: runnable threads, current first so that option 0
        // (the DFS default) is "no context switch". Yielded threads are
        // excluded while any non-yielded thread can run.
        let mut candidates: Vec<usize> = Vec::new();
        if can_continue {
            candidates.push(tid);
        }
        let mut yielded_only: Vec<usize> = Vec::new();
        for (t, th) in inner.threads.iter().enumerate() {
            if t == tid || th.status != Status::Runnable {
                continue;
            }
            if th.yielded {
                yielded_only.push(t);
            } else {
                candidates.push(t);
            }
        }
        let current_yielded = voluntary && inner.threads[tid].status == Status::Runnable;
        if candidates.is_empty() {
            // Only yielded threads (possibly including the current one)
            // remain runnable: un-yield them all.
            candidates = yielded_only;
            if current_yielded {
                candidates.push(tid);
            }
            for t in &candidates {
                inner.threads[*t].yielded = false;
            }
        }

        if candidates.is_empty() {
            // Nobody can run. Either a clean finish or a deadlock.
            let all_done = inner.threads.iter().all(|t| t.status == Status::Finished);
            if all_done {
                drop(inner);
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<usize> = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Blocked { .. }))
                .map(|(i, _)| i)
                .collect();
            self.violation(
                inner,
                &format!("deadlock: threads {blocked:?} are blocked and nothing can run"),
            );
        }

        // Enforce the preemption bound: once spent, the current thread
        // keeps running whenever it can.
        let chosen = if can_continue && inner.preemptions >= inner.config.preemption_bound {
            tid
        } else {
            let idx = inner.path.choose(candidates.len());
            candidates[idx]
        };
        if can_continue && chosen != tid {
            inner.preemptions += 1;
        }
        if chosen != tid {
            let step = inner.steps;
            inner.record_trace(format!("step {step}: switch t{tid} -> t{chosen}"));
        }
        inner.active = chosen;
        if chosen == tid {
            return;
        }
        drop(inner);
        self.cv.notify_all();
        // Park until rescheduled — unless this thread is done for good.
        let inner = self.lock();
        if inner.threads[tid].status == Status::Finished {
            return;
        }
        self.wait_for_turn(inner, tid);
    }

    /// A scheduling point before a shared-memory operation, with a
    /// human-readable label for the trace.
    pub(crate) fn op_point(&self, tid: usize, label: &str) {
        let mut inner = self.lock();
        let step = inner.steps + 1;
        inner.record_trace(format!("step {step}: t{tid} {label}"));
        self.schedule(inner, tid, false);
    }

    /// Voluntary yield: deprioritizes the caller until others have run.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut inner = self.lock();
        inner.threads[tid].yielded = true;
        self.schedule(inner, tid, true);
    }

    /// Registers a new model thread (spawned by `parent`); the child
    /// inherits the parent's clock (the spawn happens-before edge).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut inner = self.lock();
        if inner.aborting {
            drop(inner);
            std::panic::resume_unwind(Box::new(Abort));
        }
        let mut clock = inner.threads[parent].clock.clone();
        let tid = inner.threads.len();
        clock.tick(tid);
        inner.threads.push(ThreadState::new(clock));
        let step = inner.steps;
        inner.record_trace(format!("step {step}: t{parent} spawns t{tid}"));
        tid
    }

    pub(crate) fn add_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(handle);
    }

    /// Blocks the caller until `target` finishes, then merges its final
    /// clock (the join happens-before edge).
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let mut inner = self.lock();
        if inner.threads[target].status != Status::Finished {
            inner.threads[tid].status = Status::Blocked { on: target };
            self.schedule(inner, tid, true);
            inner = self.lock();
            debug_assert_eq!(inner.threads[target].status, Status::Finished);
        }
        let target_clock = inner.threads[target].clock.clone();
        inner.threads[tid].clock.join(&target_clock);
    }

    /// Marks the caller finished, wakes its joiners, and hands the token
    /// onward. Called from the thread wrapper on every exit path.
    fn finish_thread(&self, tid: usize) {
        let mut inner = self.lock();
        inner.threads[tid].status = Status::Finished;
        for th in inner.threads.iter_mut() {
            if th.status == (Status::Blocked { on: tid }) {
                th.status = Status::Runnable;
            }
        }
        if inner.aborting {
            drop(inner);
            self.cv.notify_all();
            return;
        }
        self.schedule(inner, tid, true);
    }

    /// Records a panic from a model thread as a violation (unless it is
    /// the abort sentinel or a violation is already recorded).
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<Abort>().is_some() {
            return;
        }
        let msg = payload
            .downcast_ref::<&'static str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".to_string());
        let mut inner = self.lock();
        if inner.violation.is_none() {
            let mut report = String::new();
            report.push_str("persephone-check violation: panic in model thread: ");
            report.push_str(&msg);
            report.push_str("\n  schedule trace (most recent last):\n");
            for line in &inner.trace {
                report.push_str("    ");
                report.push_str(line);
                report.push('\n');
            }
            inner.violation = Some(report);
        }
        inner.aborting = true;
        drop(inner);
        self.cv.notify_all();
    }
}

/// Runs `f` as model thread `tid` of `exec`: installs the context,
/// waits for its first turn, and guarantees the exit bookkeeping runs
/// on every path (normal return, assertion failure, abort teardown).
pub(crate) fn run_model_thread(exec: Arc<Execution>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: exec.clone(),
            tid,
        })
    });
    let inner = exec.lock();
    let result = if inner.aborting {
        drop(inner);
        Ok(())
    } else {
        exec.wait_for_turn(inner, tid);
        catch_unwind(AssertUnwindSafe(f))
    };
    if let Err(payload) = result {
        exec.record_panic(payload);
    }
    // `finish_thread` may unwind with `Abort` if teardown races with the
    // abort flag; swallow it so the wrapper always reaches the exit
    // accounting below.
    let _ = catch_unwind(AssertUnwindSafe(|| exec.finish_thread(tid)));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut inner = exec.lock();
    inner.exited += 1;
    drop(inner);
    exec.cv.notify_all();
}

/// Explores every bounded interleaving of `f`, panicking with a
/// schedule-trace report on the first violation.
///
/// The closure runs once per explored execution and must be
/// deterministic apart from the instrumented shared state.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(report) = explore(Config::auto(), f) {
        panic!("{report}");
    }
}

/// [`model`] with explicit exploration limits.
pub fn model_with<F>(config: Config, f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    match explore_with_stats(config, f) {
        (Err(report), _) => panic!("{report}"),
        (Ok(()), stats) => stats,
    }
}

/// Runs the explorer expecting it to find a violation; returns the
/// report. Panics if the full bounded exploration finds nothing — this
/// is the mutation-self-test hook that proves the checker has teeth.
pub fn model_expect_violation<F>(f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(Config::auto(), f) {
        Err(report) => report,
        Ok(()) => panic!(
            "model_expect_violation: exploration completed without finding a violation \
             (the checker was expected to catch a seeded bug)"
        ),
    }
}

fn explore<F>(config: Config, f: F) -> Result<(), String>
where
    F: Fn() + Send + Sync + 'static,
{
    explore_with_stats(config, f).0
}

fn explore_with_stats<F>(config: Config, f: F) -> (Result<(), String>, Stats)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path = Path::default();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= config.max_executions,
            "persephone-check: exploration budget exhausted after {} executions — \
             shrink the model test or raise Config::max_executions",
            config.max_executions
        );
        let exec = Arc::new(Execution::new(config.clone(), path));
        let root = {
            let exec = exec.clone();
            let f = f.clone();
            std::thread::spawn(move || run_model_thread(exec.clone(), 0, move || f()))
        };
        // Wait for every wrapper (root + spawned) to exit. New threads
        // only appear while some wrapper is still live, so this
        // condition is stable once true.
        {
            let mut inner = exec.lock();
            loop {
                let total = inner.threads.len();
                if inner.exited == total {
                    break;
                }
                inner = exec.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }
        root.join().expect("model root wrapper never panics");
        let mut inner = exec.lock();
        for handle in std::mem::take(&mut inner.os_handles) {
            drop(inner);
            handle.join().expect("model thread wrapper never panics");
            inner = exec.lock();
        }
        if let Some(report) = inner.violation.take() {
            return (Err(report), Stats { executions });
        }
        path = std::mem::take(&mut inner.path);
        drop(inner);
        if !path.advance() {
            return (Ok(()), Stats { executions });
        }
    }
}
