//! The rack-wide report: per-server [`RuntimeReport`]s plus a merged
//! dispatcher view, generalizing `DispatcherReport::merged` from "shards
//! of one server" to "shards of every server in the rack".

use persephone_runtime::dispatcher::DispatcherReport;
use persephone_runtime::RuntimeReport;

/// One live rack run's server-side results.
#[derive(Clone, Debug, Default)]
pub struct RackReport {
    /// Per-server runtime reports, in server order.
    pub servers: Vec<RuntimeReport>,
}

impl RackReport {
    /// The rack-wide dispatcher view: every server's shard reports folded
    /// through [`DispatcherReport::merged`] in server order, so counters
    /// sum across the rack and telemetry worker slots concatenate
    /// server-by-server (server 0's workers first, then server 1's, ...).
    pub fn merged(&self) -> DispatcherReport {
        let shards: Vec<DispatcherReport> = self
            .servers
            .iter()
            .flat_map(|s| s.shards.iter().cloned())
            .collect();
        DispatcherReport::merged(&shards)
    }

    /// Requests handled by workers across the whole rack.
    pub fn handled(&self) -> u64 {
        self.servers.iter().map(RuntimeReport::handled).sum()
    }
}
