//! The live rack ingress: one steering loop in front of K running
//! servers.
//!
//! Mirrors [`persephone_runtime::loadgen::run_scheduled`] — same open-loop
//! replay of a pre-sampled schedule, same ledger discipline
//! (`sent == received + dropped + rejected + timed_out`) — but fans each
//! request out across per-server [`ClientPort`]s through a [`RackPolicy`]
//! instead of down one wire. Service estimates for SED are polled from
//! each server's worker telemetry ([`ServerHandle::telemetries`] hands the
//! `Arc<Telemetry>`s to the caller), so the live and simulated racks share
//! one estimate path.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use persephone_core::types::TypeId;
use persephone_net::nic::ClientPort;
use persephone_net::pool::PoolAllocator;
use persephone_net::wire;
use persephone_runtime::loadgen::ScheduledRequest;
use persephone_telemetry::{Snapshot, Telemetry};

use crate::policy::{RackLoads, RackPolicy};

/// How many sends between telemetry-snapshot estimate refreshes.
const REFRESH_EVERY: u64 = 512;

/// Ingress-side results of one rack run.
#[derive(Clone, Debug, Default)]
pub struct RackLoadReport {
    /// Requests sent (across all servers).
    pub sent: u64,
    /// Ok responses received.
    pub received: u64,
    /// Server-shed requests (Dropped status).
    pub dropped: u64,
    /// BadRequest responses.
    pub rejected: u64,
    /// Sends skipped because the packet pool was empty.
    pub starved: u64,
    /// Requests unanswered when the grace window closed.
    pub timed_out: u64,
    /// Requests steered to each server, in server order.
    pub per_server_sent: Vec<u64>,
    /// Response latencies (ns) per type index.
    pub latencies_ns: Vec<Vec<u64>>,
}

/// One rack member as the ingress sees it: the client half of its wire
/// plus its per-shard telemetry (from [`ServerHandle::telemetries`]).
///
/// [`ServerHandle::telemetries`]: persephone_runtime::ServerHandle::telemetries
pub struct RackMember {
    /// Client half of this server's transport.
    pub client: ClientPort,
    /// The server's per-shard telemetry handles.
    pub telemetries: Vec<Arc<Telemetry>>,
}

/// Merged telemetry snapshots of one member (all shards of one server
/// share a worker pool partition; the rack estimate path folds them).
///
/// Runs once per [`REFRESH_EVERY`] sends — the estimate-refresh slow
/// lane, cold like the reservation updates it feeds.
#[cold]
fn member_snapshots(members: &[RackMember]) -> Vec<Snapshot> {
    members
        .iter()
        .flat_map(|m| m.telemetries.iter().map(|t| t.snapshot()))
        .collect()
}

fn drain_members(
    members: &mut [RackMember],
    inflight: &mut HashMap<u64, (Instant, usize, usize)>,
    loads: &mut RackLoads,
    report: &mut RackLoadReport,
    releaser: &mut persephone_net::pool::PoolReleaser,
) {
    for (server, member) in members.iter_mut().enumerate() {
        while let Some(pkt) = member.client.recv() {
            if let Ok((hdr, _)) = wire::decode(pkt.as_slice()) {
                let matched = inflight.remove(&hdr.id);
                if let Some((_, ty, from)) = matched {
                    debug_assert_eq!(from, server, "responses return on their own wire");
                    loads.completed(server, TypeId::new(ty as u32));
                    match wire::response_status(&hdr) {
                        Some(wire::Status::Ok) => {
                            report.received += 1;
                            if let Some((sent_at, ty, _)) = matched {
                                // audit:allow(A1): ty was clamped below
                                // num_types == latencies_ns.len() at insert
                                report.latencies_ns[ty].push(sent_at.elapsed().as_nanos() as u64);
                            }
                        }
                        Some(wire::Status::Dropped) => report.dropped += 1,
                        _ => report.rejected += 1,
                    }
                }
            }
            releaser.release(pkt);
        }
    }
}

/// Replays `schedule` open-loop across the rack, steering each request
/// with `policy`, then drains responses for up to `grace`.
///
/// One shared `pool` bounds rack-wide client memory; when it runs dry the
/// send is skipped and counted in [`RackLoadReport::starved`]. Unanswered
/// requests are written off as timed out when the grace window closes, so
/// `sent == received + dropped + rejected + timed_out` always balances.
///
/// With `idle_backoff` set, the steering loop parks for that long per
/// poll while the next arrival is comfortably far away (and during the
/// grace drain), instead of busy-polling — the ingress-side counterpart
/// of [`ServerBuilder::idle_backoff`], for hosts where the rack's thread
/// count dwarfs the core count. `None` busy-polls for minimum send
/// jitter.
///
/// [`ServerBuilder::idle_backoff`]: persephone_runtime::ServerBuilder::idle_backoff
#[allow(clippy::too_many_arguments)]
pub fn run_rack_scheduled(
    members: &mut [RackMember],
    policy: &mut dyn RackPolicy,
    pool: &mut PoolAllocator,
    num_types: usize,
    workers_per_server: usize,
    hints: &[Option<persephone_core::time::Nanos>],
    schedule: &[ScheduledRequest],
    grace: Duration,
    idle_backoff: Option<Duration>,
) -> RackLoadReport {
    // audit:allow(A1): spawn-time precondition, before the steering loop
    assert!(!members.is_empty(), "a rack needs at least one server");
    assert!(num_types > 0);
    let servers = members.len();
    // audit:allow(A2): spawn-time pre-warm, before the steering loop
    let mut report = RackLoadReport {
        per_server_sent: vec![0; servers],
        latencies_ns: vec![Vec::new(); num_types],
        ..Default::default()
    };
    let mut loads = RackLoads::new(servers, num_types, workers_per_server, hints);
    // Wire id → (send instant, type index, server). The pool bounds how
    // many entries can be live, so the map stays small.
    // audit:allow(A2): spawn-time pre-warm, before the steering loop
    let mut inflight: HashMap<u64, (Instant, usize, usize)> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut releaser = pool.releaser();
    let start = Instant::now();

    for req in schedule {
        loop {
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= req.at_ns {
                break;
            }
            drain_members(
                members,
                &mut inflight,
                &mut loads,
                &mut report,
                &mut releaser,
            );
            // Park only when the arrival is several parks away, so an
            // oversleep cannot push the send past its scheduled time.
            if let Some(park) = idle_backoff {
                if req.at_ns - elapsed > 4 * park.as_nanos() as u64 {
                    // audit:allow(A3): the opt-in idle-backoff ladder —
                    // parks only when the next arrival is far away
                    std::thread::sleep(park);
                }
            }
        }
        releaser.flush();
        let ti = (req.ty as usize).min(num_types - 1);
        let ty = TypeId::new(req.ty);
        // Clamp defensively: `pick`'s contract is `< servers`, but a buggy
        // policy must not be able to crash a live ingress mid-run. The
        // debug_assert still surfaces the contract break under test.
        let server = policy.pick(ty, &loads).min(servers - 1);
        debug_assert!(server < servers);
        match pool.alloc() {
            Some(mut buf) => {
                let id = next_id;
                next_id += 1;
                let payload = req.service_ns.to_le_bytes();
                // audit:allow(A1): a pool misconfigured smaller than one
                // request header is unrunnable; crashing is the contract
                let len = wire::encode_request(buf.raw_mut(), req.ty, id, &payload)
                    .expect("pool buffers sized for requests");
                buf.set_len(len);
                report.sent += 1;
                // audit:allow(A1): server < servers by the clamp above
                report.per_server_sent[server] += 1;
                inflight.insert(id, (Instant::now(), ti, server));
                loads.sent(server, ty);
                let mut pkt = buf;
                loop {
                    // audit:allow(A1): server < servers == members.len(),
                    // by the clamp above
                    match members[server].client.send(pkt) {
                        Ok(()) => break,
                        Err(e) => {
                            pkt = e.0;
                            std::thread::yield_now();
                        }
                    }
                }
                if report.sent.is_multiple_of(REFRESH_EVERY) {
                    loads.refresh_estimates(&member_snapshots(members));
                }
            }
            None => report.starved += 1,
        }
        drain_members(
            members,
            &mut inflight,
            &mut loads,
            &mut report,
            &mut releaser,
        );
    }

    let grace_deadline = Instant::now() + grace;
    while Instant::now() < grace_deadline && !inflight.is_empty() {
        drain_members(
            members,
            &mut inflight,
            &mut loads,
            &mut report,
            &mut releaser,
        );
        match idle_backoff {
            // audit:allow(A3): opt-in backoff during the grace drain —
            // all requests are already on the wire
            Some(park) => std::thread::sleep(park),
            None => std::thread::yield_now(),
        }
    }
    report.timed_out += inflight.len() as u64;
    releaser.flush();
    for v in &mut report.latencies_ns {
        v.sort_unstable();
    }
    report
}

impl RackLoadReport {
    /// Exact percentile (0–1) of one type's latencies, in nanoseconds.
    /// Latency vectors are sorted by [`run_rack_scheduled`] before return.
    pub fn percentile_ns(&self, ty: usize, p: f64) -> Option<u64> {
        let v = self.latencies_ns.get(ty)?;
        if v.is_empty() {
            return None;
        }
        let rank = (((v.len() as f64) * p).ceil() as usize).clamp(1, v.len()) - 1;
        Some(v[rank])
    }
}
