//! Inter-server steering policies (the rack tier's pluggable plane).
//!
//! A [`RackPolicy`] answers one question per arrival: *which server gets
//! this request?* It decides from [`RackLoads`] — the ingress-side ledger
//! of what is outstanding where, plus per-type service estimates refreshed
//! from each server's telemetry [`persephone_telemetry::Snapshot`] — and
//! never sees intra-server state beyond that. Per-server scheduling stays
//! with the DARC engines; the rack tier only steers, mirroring RackSched's
//! split between inter-server load placement and intra-server µs-scale
//! ordering.
//!
//! Shipped policies:
//!
//! | name       | decision                                                  |
//! |------------|-----------------------------------------------------------|
//! | `random`   | uniform random server                                      |
//! | `rr`       | round-robin over servers                                   |
//! | `po2c`     | power-of-two-choices on outstanding request count          |
//! | `sed`      | shortest expected delay: argmin Σ outstanding·E[service]/W |
//! | `affinity` | type-hashed home server, spilling when the home is deep    |

use persephone_core::rng::Rng;
use persephone_core::types::TypeId;
use persephone_telemetry::Snapshot;

/// The steering-side view of rack load: per-server and per-(server, type)
/// outstanding requests, plus per-type service estimates.
///
/// Outstanding counts are maintained by the driver (simulator or live
/// ingress) from its own send/complete ledger; estimates are refreshed
/// from server telemetry snapshots via [`RackLoads::refresh_estimates`].
#[derive(Clone, Debug)]
pub struct RackLoads {
    servers: usize,
    num_types: usize,
    workers_per_server: usize,
    /// Outstanding requests per server (sent minus completed/failed).
    outstanding: Vec<u64>,
    /// Outstanding per (server, type), row-major `server * num_types + ty`.
    per_type: Vec<u64>,
    /// Per-type service estimate, nanoseconds.
    est_ns: Vec<f64>,
}

impl RackLoads {
    /// An empty ledger; estimates start at the per-type `hints` (1 ns for
    /// unhinted types, so SED degrades to least-outstanding-count).
    ///
    /// Built once per rack run, before the steering loop — cold keeps
    /// its asserts and Vec builds off the audited steady state.
    #[cold]
    pub fn new(
        servers: usize,
        num_types: usize,
        workers_per_server: usize,
        hints: &[Option<persephone_core::time::Nanos>],
    ) -> Self {
        assert!(servers > 0, "a rack needs at least one server");
        assert!(workers_per_server > 0);
        let est_ns = (0..num_types)
            .map(|t| {
                hints
                    .get(t)
                    .copied()
                    .flatten()
                    .map(|n| n.as_nanos() as f64)
                    .unwrap_or(1.0)
                    .max(1.0)
            })
            .collect();
        RackLoads {
            servers,
            num_types,
            workers_per_server,
            outstanding: vec![0; servers],
            per_type: vec![0; servers * num_types],
            est_ns,
        }
    }

    /// Number of servers in the rack.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Worker cores per server.
    pub fn workers_per_server(&self) -> usize {
        self.workers_per_server
    }

    /// Outstanding requests at `server`.
    pub fn outstanding(&self, server: usize) -> u64 {
        // audit:allow(A1): callers pass server < servers() == outstanding.len()
        self.outstanding[server]
    }

    /// Records a request steered to `server`.
    pub fn sent(&mut self, server: usize, ty: TypeId) {
        // audit:allow(A1): the ingress clamps server below servers()
        self.outstanding[server] += 1;
        if let Some(slot) = self.type_slot(server, ty) {
            // audit:allow(A1): type_slot returns slots below per_type.len()
            self.per_type[slot] += 1;
        }
    }

    /// Records a response (or write-off) from `server`.
    pub fn completed(&mut self, server: usize, ty: TypeId) {
        // audit:allow(A1): server comes from enumerate() over the members
        self.outstanding[server] = self.outstanding[server].saturating_sub(1);
        if let Some(slot) = self.type_slot(server, ty) {
            // audit:allow(A1): type_slot returns slots below per_type.len()
            self.per_type[slot] = self.per_type[slot].saturating_sub(1);
        }
    }

    fn type_slot(&self, server: usize, ty: TypeId) -> Option<usize> {
        if ty.is_unknown() || ty.index() >= self.num_types {
            None
        } else {
            Some(server * self.num_types + ty.index())
        }
    }

    /// The current per-type service estimate, nanoseconds.
    pub fn estimate_ns(&self, ty_index: usize) -> f64 {
        self.est_ns.get(ty_index).copied().unwrap_or(1.0)
    }

    /// Expected queueing+service backlog at `server`: outstanding work,
    /// valued at the per-type estimates, divided by its worker count.
    pub fn expected_delay_ns(&self, server: usize) -> f64 {
        // audit:allow(A1): server < servers, so the row slice is in bounds
        // of per_type (length servers * num_types)
        let row = &self.per_type[server * self.num_types..(server + 1) * self.num_types];
        let work: f64 = row
            .iter()
            .zip(&self.est_ns)
            .map(|(&n, &e)| n as f64 * e)
            .sum();
        // Requests of unregistered types still occupy a worker; value
        // them at the mean estimate so they are not free.
        // audit:allow(A1): same bound as the row slice above
        let untyped = self.outstanding[server].saturating_sub(row.iter().sum::<u64>());
        let mean_est = self.est_ns.iter().sum::<f64>() / self.est_ns.len().max(1) as f64;
        (work + untyped as f64 * mean_est) / self.workers_per_server as f64
    }

    /// Folds per-server telemetry snapshots into fresh per-type service
    /// estimates (completion-weighted mean of each server's measured
    /// service histogram). Types with no completions anywhere keep their
    /// previous estimate — the hint, early in a run.
    pub fn refresh_estimates(&mut self, snapshots: &[Snapshot]) {
        for t in 0..self.num_types {
            let mut weighted = 0.0;
            let mut count = 0u64;
            for snap in snapshots {
                if let Some(ts) = snap.types.get(t) {
                    let n = ts.counters.completions;
                    if n > 0 {
                        weighted += ts.service.mean() * n as f64;
                        count += n;
                    }
                }
            }
            if count > 0 {
                // audit:allow(A1): t < num_types == est_ns.len(), by construction
                self.est_ns[t] = (weighted / count as f64).max(1.0);
            }
        }
    }
}

/// An inter-server steering policy.
///
/// `pick` is called once per arrival with the current ledger and must
/// return a server index in `0..loads.servers()`. Policies are `Send` so
/// the live ingress can run on its own thread.
pub trait RackPolicy: Send {
    /// Display name for reports (`random`, `po2c`, ...).
    fn name(&self) -> &'static str;
    /// Chooses the server for one request.
    fn pick(&mut self, ty: TypeId, loads: &RackLoads) -> usize;
}

/// Uniform random steering — RackSched's strawman baseline.
pub struct Random {
    rng: Rng,
}

impl Random {
    /// Seeded uniform steering.
    pub fn new(seed: u64) -> Self {
        Random {
            rng: Rng::new(seed),
        }
    }
}

impl RackPolicy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn pick(&mut self, _ty: TypeId, loads: &RackLoads) -> usize {
        self.rng.next_below(loads.servers() as u64) as usize
    }
}

/// Round-robin steering: perfectly even counts, blind to request size.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Starts at server 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl RackPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn pick(&mut self, _ty: TypeId, loads: &RackLoads) -> usize {
        let s = self.next % loads.servers();
        self.next = (self.next + 1) % loads.servers();
        s
    }
}

/// Power-of-two-choices on outstanding request count: sample two distinct
/// servers, send to the shallower queue (ties keep the first sample).
pub struct PowerOfTwo {
    rng: Rng,
}

impl PowerOfTwo {
    /// Seeded po2c steering.
    pub fn new(seed: u64) -> Self {
        PowerOfTwo {
            rng: Rng::new(seed),
        }
    }
}

impl RackPolicy for PowerOfTwo {
    fn name(&self) -> &'static str {
        "po2c"
    }

    fn pick(&mut self, _ty: TypeId, loads: &RackLoads) -> usize {
        let n = loads.servers();
        let a = self.rng.next_below(n as u64) as usize;
        if n == 1 {
            return a;
        }
        let b = (a + 1 + self.rng.next_below(n as u64 - 1) as usize) % n;
        if loads.outstanding(b) < loads.outstanding(a) {
            b
        } else {
            a
        }
    }
}

/// Shortest expected delay: weigh each server's outstanding requests by
/// the telemetry-fed per-type service estimates and pick the argmin —
/// a size-aware refinement of join-shortest-queue.
#[derive(Default)]
pub struct ShortestExpectedDelay;

impl ShortestExpectedDelay {
    /// Stateless SED steering.
    pub fn new() -> Self {
        ShortestExpectedDelay
    }
}

impl RackPolicy for ShortestExpectedDelay {
    fn name(&self) -> &'static str {
        "sed"
    }

    fn pick(&mut self, _ty: TypeId, loads: &RackLoads) -> usize {
        let mut best = 0;
        let mut best_delay = f64::INFINITY;
        for s in 0..loads.servers() {
            let d = loads.expected_delay_ns(s);
            if d < best_delay {
                best = s;
                best_delay = d;
            }
        }
        best
    }
}

/// Type-affinity steering: each type hashes to a home server (locality —
/// warm caches, type-specialized reservations), spilling to the
/// least-loaded server when the home's queue is deeper than
/// `spill_depth × workers`.
pub struct TypeAffinity {
    /// Home-queue depth (in multiples of the server's worker count) past
    /// which requests spill to the least-loaded server.
    spill_depth: u64,
}

impl TypeAffinity {
    /// Affinity with the default spill depth (2× workers outstanding).
    pub fn new() -> Self {
        TypeAffinity { spill_depth: 2 }
    }
}

impl Default for TypeAffinity {
    fn default() -> Self {
        TypeAffinity::new()
    }
}

impl RackPolicy for TypeAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn pick(&mut self, ty: TypeId, loads: &RackLoads) -> usize {
        let n = loads.servers();
        let least = |loads: &RackLoads| {
            (0..n)
                .min_by_key(|&s| loads.outstanding(s))
                // audit:allow(A1): 0..n is non-empty — RackLoads::new
                // asserts servers > 0
                .expect("servers > 0")
        };
        if ty.is_unknown() {
            return least(loads);
        }
        let home = ty.index() % n;
        let cap = self.spill_depth * loads.workers_per_server() as u64;
        if loads.outstanding(home) > cap {
            least(loads)
        } else {
            home
        }
    }
}

/// The steering policies [`build`] accepts, for error messages and
/// spec validation.
pub const POLICY_NAMES: &[&str] = &["random", "rr", "po2c", "sed", "affinity"];

/// Builds a steering policy by name (`random`, `rr`, `po2c`, `sed`,
/// `affinity`); `seed` feeds the randomized ones.
pub fn build(name: &str, seed: u64) -> Result<Box<dyn RackPolicy>, String> {
    match name {
        "random" => Ok(Box::new(Random::new(seed))),
        "rr" | "round_robin" => Ok(Box::new(RoundRobin::new())),
        "po2c" | "power_of_two" => Ok(Box::new(PowerOfTwo::new(seed))),
        "sed" => Ok(Box::new(ShortestExpectedDelay::new())),
        "affinity" | "type_affinity" => Ok(Box::new(TypeAffinity::new())),
        other => Err(format!(
            "unknown rack policy `{other}` (accepted: {})",
            POLICY_NAMES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use persephone_core::time::Nanos;

    fn loads(servers: usize) -> RackLoads {
        RackLoads::new(
            servers,
            2,
            2,
            &[Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))],
        )
    }

    #[test]
    fn ledger_tracks_outstanding_per_server_and_type() {
        let mut l = loads(3);
        l.sent(1, TypeId::new(0));
        l.sent(1, TypeId::new(1));
        l.sent(2, TypeId::new(1));
        assert_eq!(l.outstanding(0), 0);
        assert_eq!(l.outstanding(1), 2);
        assert_eq!(l.outstanding(2), 1);
        l.completed(1, TypeId::new(0));
        assert_eq!(l.outstanding(1), 1);
        // Expected delay weighs the long type 100× the short one.
        assert!(l.expected_delay_ns(1) > l.expected_delay_ns(0));
        assert!((l.expected_delay_ns(1) - l.expected_delay_ns(2)).abs() < 1e-9);
    }

    #[test]
    fn unknown_types_still_count_toward_backlog() {
        let mut l = loads(2);
        l.sent(0, TypeId::UNKNOWN);
        assert_eq!(l.outstanding(0), 1);
        assert!(l.expected_delay_ns(0) > 0.0, "untyped work is not free");
        l.completed(0, TypeId::UNKNOWN);
        assert_eq!(l.outstanding(0), 0);
    }

    #[test]
    fn po2c_prefers_the_shallower_of_its_two_samples() {
        let mut l = loads(2);
        for _ in 0..10 {
            l.sent(0, TypeId::new(0));
        }
        let mut p = PowerOfTwo::new(7);
        // With one deep and one empty server, both samples always include
        // server 1 (n=2 ⇒ the two picks are distinct), so every decision
        // lands on the shallow server.
        for _ in 0..50 {
            assert_eq!(p.pick(TypeId::new(0), &l), 1);
        }
    }

    #[test]
    fn sed_weighs_backlog_by_service_estimate() {
        let mut l = loads(2);
        // Server 0 holds 3 shorts (1 µs), server 1 holds 1 long (100 µs):
        // count-based JSQ would pick server 1; SED must pick server 0.
        for _ in 0..3 {
            l.sent(0, TypeId::new(0));
        }
        l.sent(1, TypeId::new(1));
        assert_eq!(ShortestExpectedDelay::new().pick(TypeId::new(0), &l), 0);
    }

    #[test]
    fn sed_estimates_follow_telemetry_snapshots() {
        use persephone_telemetry::{Telemetry, TelemetryConfig};
        let mut l = loads(2);
        let tel = Telemetry::new(TelemetryConfig::new(2, 2));
        // Measured shorts are 10× the hint; SED's ledger must follow.
        for _ in 0..32 {
            tel.record_completion(0, 0, 0, 10_000);
        }
        l.refresh_estimates(&[tel.snapshot()]);
        // The telemetry histogram is log-bucketed, so the mean is
        // approximate — within a bucket's relative error of the truth.
        let est = l.estimate_ns(0);
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.05,
            "estimate {est} tracks the measured 10 µs"
        );
        assert!(
            (l.estimate_ns(1) - 100_000.0).abs() < 1.0,
            "no completions ⇒ the hint survives"
        );
    }

    #[test]
    fn affinity_homes_types_and_spills_under_depth() {
        let mut l = loads(2);
        let mut p = TypeAffinity::new();
        assert_eq!(p.pick(TypeId::new(0), &l), 0);
        assert_eq!(p.pick(TypeId::new(1), &l), 1);
        // Bury the home past 2× its 2 workers: spills to the other server.
        for _ in 0..5 {
            l.sent(0, TypeId::new(0));
        }
        assert_eq!(p.pick(TypeId::new(0), &l), 1);
    }

    #[test]
    fn round_robin_cycles_and_random_stays_in_range() {
        let l = loads(3);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| rr.pick(TypeId::new(0), &l)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        let mut r = Random::new(3);
        for _ in 0..100 {
            assert!(r.pick(TypeId::new(0), &l) < 3);
        }
    }

    #[test]
    fn build_accepts_every_listed_name_and_rejects_typos() {
        for name in POLICY_NAMES {
            assert_eq!(build(name, 1).unwrap().name(), *name);
        }
        let e = build("jsq", 1).err().expect("typos are rejected");
        assert!(e.contains("po2c"), "error lists accepted names: {e}");
    }
}
