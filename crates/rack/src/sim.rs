//! The rack tier in the simulator: one [`SimPolicy`] that fronts N
//! independent per-server schedule engines with an inter-server
//! [`RackPolicy`].
//!
//! The rack's worker space is flat: server `s` owns simulator workers
//! `s*W .. (s+1)*W`, where `W` is the per-server worker count. Arrivals
//! are steered by the rack policy, enqueued into that server's engine,
//! and dispatched onto that server's worker slice only — no intra-rack
//! work stealing, exactly like K physical machines. Each engine carries
//! its own [`Telemetry`]; SED's per-type service estimates are refreshed
//! from those snapshots, so the simulated and live rack share one
//! estimate path.

use std::sync::Arc;

use persephone_core::dispatch::{build_engine, EngineConfig, ScheduleEngine};
use persephone_core::policy::Policy;
use persephone_core::time::Nanos;
use persephone_core::types::WorkerId;
use persephone_sim::engine::{Core, Event, ReqId, SimPolicy};
use persephone_telemetry::{Snapshot, Telemetry, TelemetryConfig};

use crate::policy::{RackLoads, RackPolicy};

/// How many rack-wide completions between service-estimate refreshes.
const REFRESH_EVERY: u64 = 256;

/// A simulated rack: N per-server engines behind one steering policy.
pub struct RackSim {
    label: String,
    policy: Box<dyn RackPolicy>,
    engines: Vec<Box<dyn ScheduleEngine<ReqId>>>,
    telemetries: Vec<Arc<Telemetry>>,
    loads: RackLoads,
    workers_per_server: usize,
    since_refresh: u64,
}

impl RackSim {
    /// Builds `servers` copies of the intra-server engine (`intra`, with
    /// `workers_per_server` workers each) behind `rack` steering. Run it
    /// with `SimConfig::new(servers * workers_per_server)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rack: Box<dyn RackPolicy>,
        intra: &Policy,
        servers: usize,
        workers_per_server: usize,
        num_types: usize,
        hints: &[Option<Nanos>],
        darc_min_samples: u64,
        queue_capacity: usize,
    ) -> Self {
        assert!(servers > 0 && workers_per_server > 0);
        let mut engines = Vec::with_capacity(servers);
        let mut telemetries = Vec::with_capacity(servers);
        for _ in 0..servers {
            let mut cfg = EngineConfig::darc(workers_per_server);
            cfg.profiler.min_samples = darc_min_samples;
            cfg.queue_capacity = queue_capacity;
            let mut engine = build_engine::<ReqId>(intra, cfg, num_types, hints);
            let tel = Arc::new(Telemetry::new(TelemetryConfig::new(
                num_types,
                workers_per_server,
            )));
            engine.set_telemetry(tel.clone());
            engines.push(engine);
            telemetries.push(tel);
        }
        let label = format!("rack-{}/{}", rack.name(), intra.name());
        RackSim {
            label,
            policy: rack,
            engines,
            telemetries,
            loads: RackLoads::new(servers, num_types, workers_per_server, hints),
            workers_per_server,
            since_refresh: 0,
        }
    }

    /// The steering policy's short name (`po2c`, ...).
    pub fn rack_policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Per-server telemetry handles, in server order (for post-run
    /// report merging).
    pub fn telemetries(&self) -> &[Arc<Telemetry>] {
        &self.telemetries
    }

    fn drain(&mut self, server: usize, core: &mut Core) {
        let base = server * self.workers_per_server;
        while let Some(d) = self.engines[server].poll(core.now) {
            core.run(base + d.worker.index(), d.req);
        }
    }

    fn maybe_refresh(&mut self) {
        self.since_refresh += 1;
        if self.since_refresh >= REFRESH_EVERY {
            self.since_refresh = 0;
            let snaps: Vec<Snapshot> = self.telemetries.iter().map(|t| t.snapshot()).collect();
            self.loads.refresh_estimates(&snaps);
        }
    }
}

impl SimPolicy for RackSim {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn handle(&mut self, ev: Event, core: &mut Core) {
        match ev {
            Event::Arrival(id) => {
                let ty = core.req(id).ty;
                let server = self.policy.pick(ty, &self.loads);
                debug_assert!(server < self.engines.len());
                match self.engines[server].enqueue(ty, id, core.now) {
                    Ok(()) => self.loads.sent(server, ty),
                    Err(rejected) => core.drop_req(rejected),
                }
                self.drain(server, core);
            }
            Event::Completed {
                worker,
                ty,
                service,
                ..
            } => {
                let server = worker / self.workers_per_server;
                let local = worker % self.workers_per_server;
                self.loads.completed(server, ty);
                self.engines[server].complete(WorkerId::new(local as u32), service, core.now);
                self.maybe_refresh();
                self.drain(server, core);
            }
            Event::SliceExpired { .. } => {
                unreachable!("rack engines are non-preemptive")
            }
            Event::Timer(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;
    use persephone_core::dist::Dist;
    use persephone_sim::engine::{simulate, SimConfig};
    use persephone_sim::workload::{ArrivalGen, TypeMix, Workload};

    fn workload() -> Workload {
        Workload {
            name: "rack-unit".into(),
            types: vec![
                TypeMix {
                    name: "SHORT".into(),
                    ratio: 0.9,
                    service: Dist::Constant(Nanos::from_micros(1)),
                },
                TypeMix {
                    name: "LONG".into(),
                    ratio: 0.1,
                    service: Dist::Constant(Nanos::from_micros(100)),
                },
            ],
        }
    }

    fn run_rack(name: &str, servers: usize) -> u64 {
        let w = workload();
        let hints = w.hints();
        let workers = 2;
        let total = Nanos::from_micros(20_000);
        let arrivals = ArrivalGen::uniform(&w, workers * servers, 0.6, total, 11);
        let mut rack = RackSim::new(
            policy::build(name, 17).unwrap(),
            &Policy::Darc,
            servers,
            workers,
            2,
            &hints,
            u64::MAX,
            0,
        );
        let cfg = SimConfig::new(servers * workers);
        let out = simulate(&mut rack, arrivals, 2, total, &cfg);
        assert!(out.completions > 0, "[{name}] the rack served requests");
        out.completions
    }

    #[test]
    fn every_policy_completes_the_trace_without_stranding() {
        // `simulate` panics on stranded requests, so completing is the
        // whole assertion; unsteered workers would strand immediately.
        for name in policy::POLICY_NAMES {
            run_rack(name, 3);
        }
    }

    #[test]
    fn single_server_rack_degenerates_to_the_plain_engine() {
        run_rack("po2c", 1);
    }

    #[test]
    fn rack_sim_is_deterministic() {
        assert_eq!(run_rack("po2c", 4), run_rack("po2c", 4));
    }
}
