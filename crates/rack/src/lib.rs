//! Rack-scale scheduling tier above per-server DARC (PR 8).
//!
//! Perséphone schedules *within* one server; RackSched's observation is
//! that preserving tail bounds at rack scale needs a second, inter-server
//! layer that steers each request to a server *before* the µs-scale
//! intra-server scheduler sees it. This crate is that layer:
//!
//! * [`policy`] — the pluggable steering plane: [`policy::RackPolicy`]
//!   implementations (`random`, `rr`, `po2c`, `sed`, `affinity`) deciding
//!   from the ingress-side [`policy::RackLoads`] ledger.
//! * [`sim`] — the rack in the simulator: [`sim::RackSim`] fronts N
//!   per-server engines on a flat worker space under `persephone-sim`'s
//!   virtual clock.
//! * [`ingress`] — the rack live: [`ingress::run_rack_scheduled`] steers a
//!   pre-sampled schedule across K running `ServerBuilder` servers, one
//!   [`ingress::RackMember`] (client port + telemetry handles) each.
//! * [`report`] — [`report::RackReport`] folds per-server runtime reports
//!   into one rack-wide dispatcher view.
//!
//! Both execution modes drive the *same* policy objects and the same
//! telemetry-snapshot estimate path, so a steering policy is written once
//! and exercised twice.

#![warn(missing_docs)]

pub mod ingress;
pub mod policy;
pub mod report;
pub mod sim;

pub use ingress::{run_rack_scheduled, RackLoadReport, RackMember};
pub use policy::{build as build_rack_policy, RackLoads, RackPolicy, POLICY_NAMES};
pub use report::RackReport;
pub use sim::RackSim;
