//! A miniature in-memory TPC-C database (paper Table 4).
//!
//! The paper profiles the five TPC-C transactions on an in-memory database
//! (Silo) and replays them as a synthetic workload. This module implements
//! a functional subset of TPC-C — warehouses, districts, customers, items,
//! stock, orders — and the five transactions with their standard mix
//! (Payment 44 %, NewOrder 44 %, OrderStatus 4 %, Delivery 4 %,
//! StockLevel 4 %), so the runtime examples can serve *real* transactions
//! whose relative costs mirror Table 4 (NewOrder and the scans touch far
//! more rows than Payment).

use std::collections::BTreeMap;

/// The five TPC-C transaction profiles (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transaction {
    /// Record a customer payment (5.7 µs, 44 %).
    Payment,
    /// Query a customer's latest order (6 µs, 4 %).
    OrderStatus,
    /// Place an order with 5–15 lines (20 µs, 44 %).
    NewOrder,
    /// Deliver a batch of pending orders (88 µs, 4 %).
    Delivery,
    /// Count low-stock items over recent orders (100 µs, 4 %).
    StockLevel,
}

impl Transaction {
    /// All transactions in ascending service-time order (Table 4 order).
    pub const ALL: [Transaction; 5] = [
        Transaction::Payment,
        Transaction::OrderStatus,
        Transaction::NewOrder,
        Transaction::Delivery,
        Transaction::StockLevel,
    ];

    /// Standard mix ratio of this transaction (Table 4).
    pub fn ratio(self) -> f64 {
        match self {
            Transaction::Payment | Transaction::NewOrder => 0.44,
            _ => 0.04,
        }
    }

    /// Mean service time in microseconds measured by the paper (Table 4).
    pub fn paper_runtime_us(self) -> f64 {
        match self {
            Transaction::Payment => 5.7,
            Transaction::OrderStatus => 6.0,
            Transaction::NewOrder => 20.0,
            Transaction::Delivery => 88.0,
            Transaction::StockLevel => 100.0,
        }
    }

    /// Dense id used as the wire request type.
    pub fn type_id(self) -> u32 {
        match self {
            Transaction::Payment => 0,
            Transaction::OrderStatus => 1,
            Transaction::NewOrder => 2,
            Transaction::Delivery => 3,
            Transaction::StockLevel => 4,
        }
    }

    /// Inverse of [`Transaction::type_id`].
    pub fn from_type_id(id: u32) -> Option<Transaction> {
        Transaction::ALL.into_iter().find(|t| t.type_id() == id)
    }
}

const DISTRICTS_PER_WAREHOUSE: u32 = 10;
const CUSTOMERS_PER_DISTRICT: u32 = 30;
const ITEMS: u32 = 1_000;
const ORDER_LINES_MIN: u32 = 5;
const ORDER_LINES_MAX: u32 = 15;
/// StockLevel examines the last 20 orders of the district.
const STOCK_LEVEL_ORDERS: u64 = 20;

#[derive(Clone, Debug)]
struct District {
    ytd: u64,
    next_order_id: u64,
    /// Order ids not yet delivered.
    undelivered: Vec<u64>,
}

#[derive(Clone, Debug, Default)]
struct Customer {
    balance: i64,
    ytd_payment: u64,
    payment_count: u64,
    delivered_count: u64,
}

#[derive(Clone, Debug)]
struct Order {
    customer: u32,
    lines: Vec<OrderLine>,
    delivered: bool,
}

#[derive(Clone, Copy, Debug)]
struct OrderLine {
    item: u32,
    #[allow(dead_code)] // Kept for schema fidelity; read by no transaction yet.
    quantity: u32,
    amount: u64,
}

/// Errors returned by transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpccError {
    /// Warehouse/district/customer/item id out of range.
    BadId,
}

impl core::fmt::Display for TpccError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("identifier out of range")
    }
}

impl std::error::Error for TpccError {}

/// A tiny deterministic generator for transaction inputs (NURand-style
/// skew for customer and item selection, per the TPC-C spec §2.1.6).
#[derive(Clone, Debug)]
pub struct TpccInputGen {
    state: u64,
}

impl TpccInputGen {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        TpccInputGen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u32) -> u32 {
        (self.next() % n as u64) as u32
    }

    /// TPC-C NURand(A, 0, x-1): a non-uniform distribution skewed toward
    /// "hot" ids.
    pub fn nurand(&mut self, a: u32, x: u32) -> u32 {
        (self.below(a + 1) | self.below(x)) % x
    }

    /// A uniformly random district id.
    pub fn district(&mut self) -> u32 {
        self.below(DISTRICTS_PER_WAREHOUSE)
    }

    /// A skewed customer id.
    pub fn customer(&mut self) -> u32 {
        self.nurand(1023, CUSTOMERS_PER_DISTRICT)
    }

    /// A skewed item id.
    pub fn item(&mut self) -> u32 {
        self.nurand(8191, ITEMS)
    }

    /// Order-line count in `[5, 15]`.
    pub fn line_count(&mut self) -> u32 {
        ORDER_LINES_MIN + self.below(ORDER_LINES_MAX - ORDER_LINES_MIN + 1)
    }

    /// A payment amount in cents.
    pub fn amount(&mut self) -> u64 {
        100 + self.next() % 500_000
    }

    /// Picks a transaction according to the Table 4 mix.
    pub fn transaction(&mut self) -> Transaction {
        let r = self.next() % 100;
        match r {
            0..=43 => Transaction::Payment,
            44..=87 => Transaction::NewOrder,
            88..=91 => Transaction::OrderStatus,
            92..=95 => Transaction::Delivery,
            _ => Transaction::StockLevel,
        }
    }
}

/// The in-memory TPC-C database (single warehouse by default, like most
/// microsecond-scale studies; multi-warehouse supported).
#[derive(Clone, Debug)]
pub struct TpccDb {
    warehouses: u32,
    districts: Vec<District>,
    customers: Vec<Customer>,
    stock: Vec<u32>,
    item_price: Vec<u64>,
    orders: BTreeMap<(u32, u32, u64), Order>,
    committed: u64,
}

impl TpccDb {
    /// Builds and populates a database with `warehouses` warehouses.
    ///
    /// # Panics
    ///
    /// Panics if `warehouses` is zero.
    pub fn new(warehouses: u32) -> Self {
        assert!(warehouses > 0);
        let mut gen = TpccInputGen::new(42);
        let districts = (0..warehouses * DISTRICTS_PER_WAREHOUSE)
            .map(|_| District {
                ytd: 0,
                next_order_id: 1,
                undelivered: Vec::new(),
            })
            .collect();
        let customers = (0..warehouses * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT)
            .map(|_| Customer::default())
            .collect();
        let stock = (0..warehouses * ITEMS)
            .map(|_| 50 + gen.below(50))
            .collect();
        let item_price = (0..ITEMS).map(|_| 100 + gen.next() % 9_900).collect();
        TpccDb {
            warehouses,
            districts,
            customers,
            stock,
            item_price,
            orders: BTreeMap::new(),
            committed: 0,
        }
    }

    fn district_index(&self, w: u32, d: u32) -> Result<usize, TpccError> {
        if w >= self.warehouses || d >= DISTRICTS_PER_WAREHOUSE {
            return Err(TpccError::BadId);
        }
        Ok((w * DISTRICTS_PER_WAREHOUSE + d) as usize)
    }

    fn customer_index(&self, w: u32, d: u32, c: u32) -> Result<usize, TpccError> {
        if c >= CUSTOMERS_PER_DISTRICT {
            return Err(TpccError::BadId);
        }
        Ok(self.district_index(w, d)? * CUSTOMERS_PER_DISTRICT as usize + c as usize)
    }

    /// Transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> u32 {
        self.warehouses
    }

    /// Payment: add to warehouse/district YTD and the customer balance.
    pub fn payment(&mut self, w: u32, d: u32, c: u32, amount: u64) -> Result<(), TpccError> {
        let di = self.district_index(w, d)?;
        let ci = self.customer_index(w, d, c)?;
        self.districts[di].ytd += amount;
        let cust = &mut self.customers[ci];
        cust.balance -= amount as i64;
        cust.ytd_payment += amount;
        cust.payment_count += 1;
        self.committed += 1;
        Ok(())
    }

    /// NewOrder: insert an order with the given item lines, decrementing
    /// stock (restocking by 91 when it would go negative, per the spec).
    pub fn new_order(
        &mut self,
        w: u32,
        d: u32,
        c: u32,
        items: &[(u32, u32)],
    ) -> Result<u64, TpccError> {
        let di = self.district_index(w, d)?;
        self.customer_index(w, d, c)?;
        let mut lines = Vec::with_capacity(items.len());
        for &(item, qty) in items {
            if item >= ITEMS {
                return Err(TpccError::BadId);
            }
            let si = (w * ITEMS + item) as usize;
            if self.stock[si] < qty {
                self.stock[si] += 91;
            }
            self.stock[si] -= qty;
            lines.push(OrderLine {
                item,
                quantity: qty,
                amount: self.item_price[item as usize] * qty as u64,
            });
        }
        let oid = self.districts[di].next_order_id;
        self.districts[di].next_order_id += 1;
        self.districts[di].undelivered.push(oid);
        self.orders.insert(
            (w, d, oid),
            Order {
                customer: c,
                lines,
                delivered: false,
            },
        );
        self.committed += 1;
        Ok(oid)
    }

    /// OrderStatus: the customer's most recent order (id, line count,
    /// total amount), if any.
    pub fn order_status(
        &mut self,
        w: u32,
        d: u32,
        c: u32,
    ) -> Result<Option<(u64, usize, u64)>, TpccError> {
        self.customer_index(w, d, c)?;
        let found = self
            .orders
            .range((w, d, 0)..(w, d, u64::MAX))
            .rev()
            .find(|(_, o)| o.customer == c)
            .map(|((_, _, oid), o)| {
                (
                    *oid,
                    o.lines.len(),
                    o.lines.iter().map(|l| l.amount).sum::<u64>(),
                )
            });
        self.committed += 1;
        Ok(found)
    }

    /// Delivery: deliver the oldest undelivered order of every district in
    /// the warehouse; returns how many orders were delivered.
    pub fn delivery(&mut self, w: u32) -> Result<usize, TpccError> {
        if w >= self.warehouses {
            return Err(TpccError::BadId);
        }
        let mut delivered = 0;
        for d in 0..DISTRICTS_PER_WAREHOUSE {
            let di = self.district_index(w, d)?;
            if let Some(oid) = {
                let dist = &mut self.districts[di];
                if dist.undelivered.is_empty() {
                    None
                } else {
                    Some(dist.undelivered.remove(0))
                }
            } {
                let credit = self.orders.get_mut(&(w, d, oid)).map(|order| {
                    order.delivered = true;
                    (
                        order.customer,
                        order.lines.iter().map(|l| l.amount).sum::<u64>(),
                    )
                });
                if let Some((customer, total)) = credit {
                    let ci = self.customer_index(w, d, customer)?;
                    self.customers[ci].balance += total as i64;
                    self.customers[ci].delivered_count += 1;
                    delivered += 1;
                }
            }
        }
        self.committed += 1;
        Ok(delivered)
    }

    /// StockLevel: count distinct items under `threshold` stock across the
    /// district's most recent orders — the big read transaction.
    pub fn stock_level(&mut self, w: u32, d: u32, threshold: u32) -> Result<usize, TpccError> {
        let di = self.district_index(w, d)?;
        let next = self.districts[di].next_order_id;
        let lo = next.saturating_sub(STOCK_LEVEL_ORDERS);
        let mut low_items: Vec<u32> = Vec::new();
        for (_, order) in self.orders.range((w, d, lo)..(w, d, next)) {
            for line in &order.lines {
                let si = (w * ITEMS + line.item) as usize;
                if self.stock[si] < threshold && !low_items.contains(&line.item) {
                    low_items.push(line.item);
                }
            }
        }
        self.committed += 1;
        Ok(low_items.len())
    }

    /// Runs one randomly generated transaction of the given profile;
    /// returns the transaction actually executed (convenience for the
    /// runtime handlers).
    pub fn run(&mut self, tx: Transaction, gen: &mut TpccInputGen) -> Result<(), TpccError> {
        let w = gen.below(self.warehouses);
        match tx {
            Transaction::Payment => {
                let (d, c, amt) = (gen.district(), gen.customer(), gen.amount());
                self.payment(w, d, c, amt)
            }
            Transaction::OrderStatus => {
                let (d, c) = (gen.district(), gen.customer());
                self.order_status(w, d, c).map(|_| ())
            }
            Transaction::NewOrder => {
                let (d, c) = (gen.district(), gen.customer());
                let n = gen.line_count();
                let items: Vec<(u32, u32)> =
                    (0..n).map(|_| (gen.item(), 1 + gen.below(10))).collect();
                self.new_order(w, d, c, &items).map(|_| ())
            }
            Transaction::Delivery => self.delivery(w).map(|_| ()),
            Transaction::StockLevel => {
                let d = gen.district();
                self.stock_level(w, d, 60).map(|_| ())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratios_sum_to_one() {
        let total: f64 = Transaction::ALL.iter().map(|t| t.ratio()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn type_ids_round_trip() {
        for t in Transaction::ALL {
            assert_eq!(Transaction::from_type_id(t.type_id()), Some(t));
        }
        assert_eq!(Transaction::from_type_id(9), None);
    }

    #[test]
    fn paper_runtimes_match_table4() {
        assert_eq!(Transaction::Payment.paper_runtime_us(), 5.7);
        assert_eq!(Transaction::StockLevel.paper_runtime_us(), 100.0);
        // Dispersion: 100 / 5.7 ≈ 17.5× (Table 4).
        let d =
            Transaction::StockLevel.paper_runtime_us() / Transaction::Payment.paper_runtime_us();
        assert!((d - 17.54).abs() < 0.01);
    }

    #[test]
    fn payment_moves_money() {
        let mut db = TpccDb::new(1);
        db.payment(0, 3, 7, 500).unwrap();
        db.payment(0, 3, 7, 250).unwrap();
        assert_eq!(
            db.customers[db.customer_index(0, 3, 7).unwrap()].balance,
            -750
        );
        assert_eq!(db.districts[3].ytd, 750);
        assert_eq!(db.committed(), 2);
    }

    #[test]
    fn new_order_then_status_and_delivery() {
        let mut db = TpccDb::new(1);
        let oid = db.new_order(0, 0, 5, &[(1, 2), (2, 1)]).unwrap();
        assert_eq!(oid, 1);
        let status = db.order_status(0, 0, 5).unwrap();
        let (got_oid, lines, total) = status.expect("order exists");
        assert_eq!(got_oid, oid);
        assert_eq!(lines, 2);
        assert!(total > 0);
        // Another customer sees no order.
        assert!(db.order_status(0, 0, 6).unwrap().is_none());
        // Delivery delivers it and credits the customer.
        let delivered = db.delivery(0).unwrap();
        assert_eq!(delivered, 1);
        assert_eq!(db.delivery(0).unwrap(), 0, "nothing left to deliver");
        let ci = db.customer_index(0, 0, 5).unwrap();
        assert_eq!(db.customers[ci].balance, total as i64);
    }

    #[test]
    fn new_order_decrements_stock_and_restocks() {
        let mut db = TpccDb::new(1);
        let before = db.stock[10];
        db.new_order(0, 0, 0, &[(10, 5)]).unwrap();
        assert_eq!(db.stock[10], before - 5);
        // Drain the stock to force a restock.
        for _ in 0..30 {
            db.new_order(0, 0, 0, &[(10, 10)]).unwrap();
        }
        assert!(db.stock[10] < 100, "stock stays bounded via restocking");
    }

    #[test]
    fn stock_level_counts_low_items() {
        let mut db = TpccDb::new(1);
        db.new_order(0, 0, 0, &[(1, 1), (2, 1)]).unwrap();
        // With threshold above every stock level, both items count.
        let n = db.stock_level(0, 0, 1_000).unwrap();
        assert_eq!(n, 2);
        // With threshold 0 nothing counts.
        assert_eq!(db.stock_level(0, 0, 0).unwrap(), 0);
        // Other districts see no orders.
        assert_eq!(db.stock_level(0, 1, 1_000).unwrap(), 0);
    }

    #[test]
    fn bad_ids_are_rejected() {
        let mut db = TpccDb::new(1);
        assert_eq!(db.payment(1, 0, 0, 1), Err(TpccError::BadId));
        assert_eq!(db.payment(0, 10, 0, 1), Err(TpccError::BadId));
        assert_eq!(db.payment(0, 0, 99, 1), Err(TpccError::BadId));
        assert_eq!(db.new_order(0, 0, 0, &[(9999, 1)]), Err(TpccError::BadId));
        assert_eq!(db.delivery(5), Err(TpccError::BadId));
        assert_eq!(db.stock_level(2, 0, 1), Err(TpccError::BadId));
    }

    #[test]
    fn generated_mix_matches_table4() {
        let mut gen = TpccInputGen::new(1);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(gen.transaction()).or_insert(0u64) += 1;
        }
        let frac = |t: Transaction| counts[&t] as f64 / 100_000.0;
        assert!((frac(Transaction::Payment) - 0.44).abs() < 0.01);
        assert!((frac(Transaction::NewOrder) - 0.44).abs() < 0.01);
        assert!((frac(Transaction::Delivery) - 0.04).abs() < 0.005);
    }

    #[test]
    fn nurand_is_skewed_but_in_range() {
        let mut gen = TpccInputGen::new(3);
        let mut counts = vec![0u64; ITEMS as usize];
        for _ in 0..100_000 {
            counts[gen.item() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c < 100_000));
        // NURand concentrates mass: the busiest item must be well above
        // the uniform expectation of 100.
        let max = counts.iter().max().unwrap();
        assert!(*max > 150, "max item count = {max}");
    }

    #[test]
    fn run_executes_every_profile() {
        let mut db = TpccDb::new(2);
        let mut gen = TpccInputGen::new(5);
        for t in Transaction::ALL {
            db.run(t, &mut gen).unwrap();
        }
        assert_eq!(db.committed(), 5);
        assert_eq!(db.warehouses(), 2);
    }
}
