//! An in-memory ordered key-value store — the RocksDB stand-in.
//!
//! The paper's §5.4.4 experiment serves 50 % GET (1.5 µs) / 50 % SCAN
//! (635 µs, over 5000 keys) from RocksDB backed by a memory-pinned file.
//! What the experiment needs from the store is (a) point reads that are
//! hundreds of times cheaper than range scans and (b) realistic read
//! paths. This module provides a small two-level LSM: a mutable memtable
//! (ordered map, tombstone-aware) over an immutable compacted sorted run,
//! with merge-reads across levels.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A two-level in-memory LSM store.
///
/// # Examples
///
/// ```
/// use persephone_store::kv::KvStore;
///
/// let mut db = KvStore::new();
/// db.put(b"k1", b"v1");
/// db.put(b"k2", b"v2");
/// assert_eq!(db.get(b"k1"), Some(b"v1".to_vec()));
/// let scanned = db.scan(b"k1", 10);
/// assert_eq!(scanned.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    /// Mutable level: `None` values are tombstones masking the run.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Immutable compacted level, sorted ascending by key, no duplicates.
    run: Vec<(Vec<u8>, Vec<u8>)>,
    writes: u64,
    reads: u64,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Creates a store pre-loaded with `n` sequential keys `key<i>` →
    /// `value<i>` (zero-padded so lexicographic order equals numeric
    /// order), then compacted — the §5.4.4 dataset shape.
    pub fn with_sequential_keys(n: usize) -> Self {
        let mut db = KvStore::new();
        for i in 0..n {
            db.put(
                format!("key{i:08}").as_bytes(),
                format!("value{i:08}").as_bytes(),
            );
        }
        db.flush();
        db
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.writes += 1;
        self.memtable.insert(key.to_vec(), Some(value.to_vec()));
    }

    /// Point lookup: memtable first (honoring tombstones), then the run.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.reads += 1;
        if let Some(entry) = self.memtable.get(key) {
            return entry.clone();
        }
        self.run
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.run[i].1.clone())
    }

    /// Deletes a key (writes a tombstone so the run entry is masked).
    pub fn delete(&mut self, key: &[u8]) {
        self.writes += 1;
        self.memtable.insert(key.to_vec(), None);
    }

    /// Range scan: up to `limit` live entries with keys ≥ `start`, merged
    /// across levels (memtable wins on key collisions; tombstones hide run
    /// entries). This is the expensive request class of §5.4.4.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.reads += 1;
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut mem = self
            .memtable
            .range::<[u8], _>((Bound::Included(start), Bound::Unbounded))
            .peekable();
        let run_start = self.run.partition_point(|(k, _)| k.as_slice() < start);
        let mut run = self.run[run_start..].iter().peekable();
        while out.len() < limit {
            let take_mem = match (mem.peek(), run.peek()) {
                (Some((mk, _)), Some((rk, _))) => mk.as_slice() <= rk.as_slice(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_mem {
                let (mk, mv) = mem.next().expect("peeked");
                // Skip the shadowed run entry on exact collision.
                if let Some((rk, _)) = run.peek() {
                    if rk.as_slice() == mk.as_slice() {
                        run.next();
                    }
                }
                if let Some(v) = mv {
                    out.push((mk.clone(), v.clone()));
                }
                // Tombstones produce nothing but still consume the key.
            } else {
                let (rk, rv) = run.next().expect("peeked");
                out.push((rk.clone(), rv.clone()));
            }
        }
        out
    }

    /// Compacts the memtable into the run, applying tombstones.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let mem = std::mem::take(&mut self.memtable);
        let old = std::mem::take(&mut self.run);
        let mut merged = Vec::with_capacity(old.len() + mem.len());
        let mut mem_iter = mem.into_iter().peekable();
        let mut old_iter = old.into_iter().peekable();
        loop {
            let take_mem = match (mem_iter.peek(), old_iter.peek()) {
                (Some((mk, _)), Some((ok, _))) => mk <= ok,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_mem {
                let (mk, mv) = mem_iter.next().expect("peeked");
                if let Some((ok, _)) = old_iter.peek() {
                    if *ok == mk {
                        old_iter.next();
                    }
                }
                if let Some(v) = mv {
                    merged.push((mk, v));
                }
            } else {
                merged.push(old_iter.next().expect("peeked"));
            }
        }
        self.run = merged;
    }

    /// Live entries visible to readers.
    pub fn len(&self) -> usize {
        // Run entries not shadowed by the memtable, plus live memtable
        // entries.
        let shadowed = self
            .run
            .iter()
            .filter(|(k, _)| self.memtable.contains_key(k))
            .count();
        let live_mem = self.memtable.values().filter(|v| v.is_some()).count();
        self.run.len() - shadowed + live_mem
    }

    /// Whether no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total write operations served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total read operations served (gets + scans).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut db = KvStore::new();
        db.put(b"a", b"1");
        assert_eq!(db.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(db.get(b"missing"), None);
        db.put(b"a", b"2");
        assert_eq!(db.get(b"a"), Some(b"2".to_vec()), "overwrite wins");
    }

    #[test]
    fn delete_masks_run_entries() {
        let mut db = KvStore::new();
        db.put(b"a", b"1");
        db.flush();
        assert_eq!(db.get(b"a"), Some(b"1".to_vec()));
        db.delete(b"a");
        assert_eq!(db.get(b"a"), None, "tombstone hides the run entry");
        db.flush();
        assert_eq!(db.get(b"a"), None, "compaction applies the tombstone");
        assert!(db.is_empty());
    }

    #[test]
    fn scan_merges_levels_in_key_order() {
        let mut db = KvStore::new();
        db.put(b"b", b"run");
        db.put(b"d", b"run");
        db.flush();
        db.put(b"a", b"mem");
        db.put(b"c", b"mem");
        db.put(b"d", b"mem-overrides");
        let got = db.scan(b"a", 10);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d"]);
        assert_eq!(got[3].1, b"mem-overrides".to_vec());
    }

    #[test]
    fn scan_respects_start_and_limit() {
        let mut db = KvStore::with_sequential_keys(100);
        let got = db.scan(b"key00000050", 10);
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"key00000050".to_vec());
        assert_eq!(got[9].0, b"key00000059".to_vec());
    }

    #[test]
    fn scan_skips_tombstones_without_counting_them() {
        let mut db = KvStore::new();
        for k in [&b"a"[..], b"b", b"c", b"d"] {
            db.put(k, b"v");
        }
        db.flush();
        db.delete(b"b");
        let got = db.scan(b"a", 3);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"c", b"d"]);
    }

    #[test]
    fn sequential_dataset_scan_of_5000_keys() {
        // The exact shape of the paper's SCAN workload.
        let mut db = KvStore::with_sequential_keys(5_000);
        let got = db.scan(b"key00000000", 5_000);
        assert_eq!(got.len(), 5_000);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "sorted output");
    }

    #[test]
    fn len_counts_live_entries_across_levels() {
        let mut db = KvStore::new();
        db.put(b"a", b"1");
        db.put(b"b", b"1");
        db.flush();
        db.put(b"b", b"2"); // Shadowing, not adding.
        db.put(b"c", b"1");
        db.delete(b"a");
        assert_eq!(db.len(), 2); // b and c.
    }

    #[test]
    fn flush_is_idempotent_when_empty() {
        let mut db = KvStore::new();
        db.flush();
        assert!(db.is_empty());
        db.put(b"a", b"1");
        db.flush();
        db.flush();
        assert_eq!(db.get(b"a"), Some(b"1".to_vec()));
    }

    #[test]
    fn op_counters_track_traffic() {
        let mut db = KvStore::new();
        db.put(b"a", b"1");
        db.delete(b"a");
        db.get(b"a");
        db.scan(b"a", 1);
        assert_eq!(db.writes(), 2);
        assert_eq!(db.reads(), 2);
    }
}
