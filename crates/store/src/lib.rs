//! # persephone-store — application substrates
//!
//! The backends served behind Perséphone in the paper's evaluation:
//!
//! * [`kv`] — an in-memory ordered KV store with GET/PUT/SCAN/DELETE, the
//!   RocksDB stand-in for §5.4.4 (GETs hundreds of times cheaper than
//!   5000-key SCANs).
//! * [`tpcc`] — a miniature in-memory TPC-C database implementing the five
//!   transactions of Table 4 with the standard 44/4/44/4/4 mix.
//! * [`spin`] — calibrated busy-wait for exact synthetic service times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kv;
pub mod spin;
pub mod tpcc;

pub use kv::KvStore;
pub use spin::SpinCalibration;
pub use tpcc::{TpccDb, TpccInputGen, Transaction};
