//! Calibrated synthetic work (busy-wait).
//!
//! The paper's synthetic workloads (High/Extreme Bimodal, TPC-C replay)
//! occupy a worker core for an exact number of microseconds. This module
//! provides a calibrated spin loop: [`SpinCalibration`] measures the
//! machine's spin rate once, then [`SpinCalibration::spin_for`] burns a
//! requested duration without syscalls or timer reads on the hot path
//! (a single `Instant` pair per call).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A measured spins-per-nanosecond rate for this machine.
#[derive(Clone, Copy, Debug)]
pub struct SpinCalibration {
    spins_per_ns: f64,
}

#[inline]
fn spin_chunk(iters: u64) -> u64 {
    // A dependent-add chain the optimizer cannot elide or vectorize.
    let mut acc: u64 = black_box(0x9E37_79B9);
    for i in 0..iters {
        acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    acc
}

impl SpinCalibration {
    /// Measures the spin rate; takes a few milliseconds.
    pub fn calibrate() -> Self {
        // Warm up, then time a large chunk for stability.
        spin_chunk(100_000);
        let iters = 2_000_000u64;
        let mut best = f64::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            black_box(spin_chunk(iters));
            let elapsed = start.elapsed().as_nanos() as f64;
            // Keep the fastest run: slower ones include scheduler noise.
            best = best.min(elapsed);
        }
        SpinCalibration {
            spins_per_ns: iters as f64 / best.max(1.0),
        }
    }

    /// A fixed calibration (for tests that must not depend on timing).
    pub fn fixed(spins_per_ns: f64) -> Self {
        SpinCalibration { spins_per_ns }
    }

    /// The measured rate.
    pub fn spins_per_ns(&self) -> f64 {
        self.spins_per_ns
    }

    /// Busy-waits approximately `ns` nanoseconds.
    #[inline]
    pub fn spin_for_ns(&self, ns: u64) {
        let iters = (ns as f64 * self.spins_per_ns) as u64;
        black_box(spin_chunk(iters));
    }

    /// Busy-waits approximately the given duration.
    pub fn spin_for(&self, d: Duration) {
        self.spin_for_ns(d.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_measures_a_positive_rate() {
        let cal = SpinCalibration::calibrate();
        assert!(cal.spins_per_ns() > 0.0);
    }

    #[test]
    fn spin_durations_scale_roughly_linearly() {
        let cal = SpinCalibration::calibrate();
        let time = |ns: u64| {
            let start = Instant::now();
            cal.spin_for_ns(ns);
            start.elapsed().as_nanos() as f64
        };
        // Median of several runs to shrug off scheduler noise (this box
        // may be heavily shared).
        let med = |ns: u64| {
            let mut v: Vec<f64> = (0..9).map(|_| time(ns)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[4]
        };
        let t_short = med(20_000); // 20 µs
        let t_long = med(200_000); // 200 µs
        let ratio = t_long / t_short;
        assert!(
            (5.0..20.0).contains(&ratio),
            "10x spin should take ~10x time, ratio = {ratio}"
        );
    }

    #[test]
    fn fixed_calibration_is_deterministic() {
        let cal = SpinCalibration::fixed(1.0);
        assert_eq!(cal.spins_per_ns(), 1.0);
        // Must not panic or hang for tiny and zero durations.
        cal.spin_for_ns(0);
        cal.spin_for(Duration::from_nanos(10));
    }
}
