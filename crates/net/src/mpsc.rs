//! Lock-free multi-producer/single-consumer ring.
//!
//! The NIC buffer pool is "backed by a multi-producer, single-consumer
//! ring so workers can release buffers after transmission" (paper §4.3.1):
//! every application worker and the net worker push retired buffers; the
//! pool owner drains them. The implementation is a bounded Vyukov-style
//! queue with per-slot sequence counters, restricted to one consumer.
//!
//! All `unsafe` blocks carry SAFETY arguments (kernel Rust guidelines).

use core::mem::MaybeUninit;

use crate::sync::{Arc, AtomicUsize, CachePadded, Ordering, UnsafeCell};

/// Error returned by [`Sender::push`] when the ring is full.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

struct Slot<T> {
    /// Sequence counter: `pos` when free for the producer claiming `pos`,
    /// `pos + 1` once the value is published, `pos + capacity` after the
    /// consumer frees it for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Ring<T> {
    buf: Box<[Slot<T>]>,
    mask: usize,
    tail: CachePadded<AtomicUsize>,
    head: CachePadded<AtomicUsize>,
}

// SAFETY: `Ring` mediates slot ownership through the per-slot `seq`
// protocol — exactly one producer wins the CAS on `tail` for a given
// position and writes the slot; the single consumer reads it only after
// observing `seq == pos + 1` (Acquire, pairing with the producer's
// Release).
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: `Ring`'s seq protocol (above) serializes every slot access, so
// shared references cross threads without data races.
unsafe impl<T: Send> Sync for Ring<T> {}

/// A cloneable producer handle.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            ring: self.ring.clone(),
        }
    }
}

/// The single consumer handle.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    head: usize,
}

/// Creates a bounded MPSC channel; capacity rounds up to a power of two
/// (at least 2).
///
/// # Examples
///
/// ```
/// let (tx, mut rx) = persephone_net::mpsc::channel::<u32>(8);
/// let tx2 = tx.clone();
/// tx.push(1).unwrap();
/// tx2.push(2).unwrap();
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// ```
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[Slot<T>]> = (0..cap)
        .map(|i| Slot {
            seq: AtomicUsize::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let ring = Arc::new(Ring {
        buf,
        mask: cap - 1,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
    });
    (Sender { ring: ring.clone() }, Receiver { ring, head: 0 })
}

impl<T> Sender<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Pushes a value from any thread, or returns it when the ring is full.
    pub fn push(&self, value: T) -> Result<(), Full<T>> {
        let ring = &*self.ring;
        // audit:ordering: optimistic position guess only — the per-slot
        // `seq` Acquire below is what validates it, and a stale read just
        // costs one retry lap
        let mut pos = ring.tail.load(Ordering::Relaxed);
        loop {
            let slot = &ring.buf[pos & ring.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // The slot is free for this lap: claim it.
                match ring.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    // audit:ordering: the CAS only allocates a position —
                    // the slot's seq Release/Acquire pair orders the handoff
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive ownership of
                        // the `Slot` at `pos`; the consumer will not read
                        // it until `seq` becomes `pos + 1`, which happens
                        // below, after the write.
                        slot.value.with_mut(|p| unsafe { (*p).write(value) });
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if (seq as isize) < (pos as isize) {
                // One full lap behind: the ring is full.
                return Err(Full(value));
            } else {
                // Another producer claimed `pos`; move to the fresh tail.
                // audit:ordering: retry-loop position guess, validated by
                // the slot seq Acquire at the top of the next lap
                pos = ring.tail.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Pops the oldest value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let slot = &ring.buf[self.head & ring.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != self.head + 1 {
            return None;
        }
        // SAFETY: `seq == head + 1` means a producer published this `Slot`
        // (Release write paired with our Acquire load) and no other thread
        // will touch it until we bump `seq` for the next lap.
        let value = slot.value.with(|p| unsafe { (*p).assume_init_read() });
        slot.seq.store(self.head + ring.mask + 1, Ordering::Release);
        self.head += 1;
        // Mirror the head for the drop bookkeeping.
        ring.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Estimate of the number of queued values: claimed slots,
    /// `tail - head`.
    ///
    /// Under concurrency this is approximate in both directions. It may
    /// *overshoot* poppable values (a producer won the CAS but has not
    /// published the slot yet, so [`Receiver::pop`] still returns
    /// `None`), and it may *undershoot* them (the `tail` load may lag a
    /// claim whose per-slot `seq` publish is already visible — Acquire
    /// orders what a load sees, it does not force freshness; the model
    /// tests in `tests/model_rings.rs` exercise exactly this window).
    /// It is exact whenever the caller happens-after the producers —
    /// e.g. after joining them.
    ///
    /// It never underflows: popping slot `pos` required observing
    /// `seq == pos + 1` (Acquire), which synchronizes with the
    /// producer's publish and therefore makes its earlier tail CAS
    /// (`tail >= pos + 1`) visible, so `tail >= self.head` always. The
    /// Acquire here mirrors the decision in
    /// [`crate::spsc::Consumer::len`], keeping the two rings' observer
    /// semantics identical.
    pub fn len(&self) -> usize {
        self.ring.tail.load(Ordering::Acquire) - self.head
    }

    /// Whether no slot is claimed (see [`Receiver::len`] for the caveat:
    /// this is an estimate unless the caller happens-after all
    /// producers).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains everything currently visible into a vector.
    ///
    /// Teardown/test convenience — the dispatch loop pops in place and
    /// never calls this, so the fresh `Vec` is fine here.
    #[cold]
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop in-flight values: walk forward from the consumer's head
        // while slots hold published-but-unpopped values.
        // audit:ordering: `&mut self` in drop — both handles are gone, and
        // Arc's refcount teardown already ordered their final stores
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            // audit:ordering: exclusive access in drop (see the head load
            // above); no concurrent writers remain to order against
            if slot.seq.load(Ordering::Relaxed) != pos + 1 {
                break;
            }
            // SAFETY: `seq == pos + 1` marks a published, unconsumed value;
            // in `drop` we have exclusive access to the `Ring`.
            slot.value.with_mut(|p| unsafe { (*p).assume_init_drop() });
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_producer() {
        let (tx, mut rx) = channel::<u32>(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_detection() {
        let (tx, mut rx) = channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(Full(3)));
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap();
        assert_eq!(rx.drain(), vec![2, 3]);
    }

    #[test]
    fn many_wraps() {
        let (tx, mut rx) = channel::<u64>(4);
        for i in 0..10_000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn multi_producer_stress_delivers_everything() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 100_000;
        let (tx, mut rx) = channel::<u64>(256);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = p * PER + i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        drop(tx);
        let total = PRODUCERS as u64 * PER;
        let mut seen = vec![false; total as usize];
        let mut got = 0u64;
        while got < total {
            if let Some(v) = rx.pop() {
                assert!(!seen[v as usize], "duplicate value {v}");
                seen[v as usize] = true;
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(seen.iter().all(|&s| s), "all values delivered exactly once");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // MPSC guarantees per-producer FIFO; verify with tagged streams.
        let (tx, mut rx) = channel::<(u8, u64)>(64);
        let mut handles = Vec::new();
        for p in 0..2u8 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000 {
                    let mut v = (p, i);
                    while let Err(Full(back)) = tx.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut next = [0u64; 2];
        let mut seen = 0;
        while seen < 20_000 {
            if let Some((p, i)) = rx.pop() {
                assert_eq!(i, next[p as usize], "producer {p} reordered");
                next[p as usize] += 1;
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn drops_in_flight_values() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (tx, mut rx) = channel::<D>(8);
            tx.push(D).unwrap();
            tx.push(D).unwrap();
            tx.push(D).unwrap();
            let _ = rx.pop();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }
}
