//! Synchronization facade: std types normally, instrumented types under
//! `--features model-check`.
//!
//! The lock-free ring modules ([`crate::spsc`], [`crate::mpsc`]) import
//! every synchronization primitive from here instead of `std`/`core`.
//! In a normal build the facade is zero-cost: the atomics and `Arc` are
//! re-exports and [`UnsafeCell`] is a `#[repr(transparent)]` wrapper
//! whose `with`/`with_mut` accessors compile to a bare pointer call.
//! Under the `model-check` feature the same names resolve to
//! `persephone-check`'s instrumented shims, so `persephone_check::model`
//! can enumerate interleavings of the *real* ring code and race-check
//! every `UnsafeCell` access against the happens-before relation.
//!
//! The accessor-closure API (`cell.with(|p| ..)` instead of
//! `cell.get()`) exists because the checker must observe each access;
//! see `DESIGN.md` §6.

#[cfg(feature = "model-check")]
pub use persephone_check::sync::{fence, Arc, AtomicU64, AtomicUsize, Ordering, UnsafeCell};

#[cfg(not(feature = "model-check"))]
pub use std_impl::UnsafeCell;
#[cfg(not(feature = "model-check"))]
pub use {
    core::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering},
    std::sync::Arc,
};

/// Re-exported so ring code can import its whole vocabulary from one
/// place; padding is identical in both modes.
pub use persephone_telemetry::CachePadded;

#[cfg(not(feature = "model-check"))]
mod std_impl {
    /// Zero-cost `core::cell::UnsafeCell` wrapper exposing the
    /// accessor-closure API the model checker needs to observe.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(core::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps a value.
        pub const fn new(data: T) -> Self {
            UnsafeCell(core::cell::UnsafeCell::new(data))
        }

        /// Shared access: hands `f` a const pointer to the data. The
        /// caller's `unsafe` dereference carries the aliasing proof,
        /// exactly as with `core::cell::UnsafeCell::get`.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access: hands `f` a mut pointer to the data.
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}
