//! Request/response wire format.
//!
//! A simple UDP-style framing matching the paper's client protocol
//! (§5.1): "transaction ID, query ID, and synthetic workload request types
//! are located in the requests' header", so a header-based request
//! classifier can extract the type without parsing the payload.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset 0   u16  magic (0x5350, "PS")
//! offset 2   u8   version (1)
//! offset 3   u8   kind (0 = request, 1 = response)
//! offset 4   u32  request type  ← HeaderClassifier::new(TYPE_OFFSET, n)
//! offset 8   u64  request id
//! offset 16  ...  payload
//! ```
//!
//! Responses reuse the same header (kind = 1) with the type field carrying
//! a status code, so the ingress buffer can be rewritten in place.

use core::fmt;

/// Byte offset of the type field — feed this to
/// `persephone_core::classifier::HeaderClassifier`.
pub const TYPE_OFFSET: usize = 4;
/// Total header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Protocol magic ("PS").
pub const MAGIC: u16 = 0x5350;
/// Protocol version implemented by this crate.
pub const VERSION: u8 = 1;

/// Message kind discriminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A client request.
    Request,
    /// A server response.
    Response,
}

/// Response status codes carried in the type field of responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The request was served.
    Ok,
    /// The request was malformed or had an unknown type.
    BadRequest,
    /// The server shed the request (flow control).
    Dropped,
}

impl Status {
    fn to_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::BadRequest => 1,
            Status::Dropped => 2,
        }
    }

    fn from_u32(v: u32) -> Option<Status> {
        match v {
            0 => Some(Status::Ok),
            1 => Some(Status::BadRequest),
            2 => Some(Status::Dropped),
            _ => None,
        }
    }
}

/// Decoded message header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Request or response.
    pub kind: Kind,
    /// Request type (requests) or status code (responses).
    pub ty: u32,
    /// Request id, echoed in the response.
    pub id: u64,
}

/// Wire-format errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer than [`HEADER_LEN`] bytes.
    Truncated,
    /// Magic mismatch.
    BadMagic,
    /// Unsupported version.
    BadVersion,
    /// Unknown kind discriminator.
    BadKind,
    /// Destination buffer too small.
    BufferTooSmall,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WireError::Truncated => "message shorter than the header",
            WireError::BadMagic => "bad protocol magic",
            WireError::BadVersion => "unsupported protocol version",
            WireError::BadKind => "unknown message kind",
            WireError::BufferTooSmall => "destination buffer too small",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Encodes a request into `dst`, returning the total message length.
///
/// # Examples
///
/// ```
/// use persephone_net::wire;
///
/// let mut buf = [0u8; 64];
/// let len = wire::encode_request(&mut buf, 3, 42, b"key").unwrap();
/// let (hdr, payload) = wire::decode(&buf[..len]).unwrap();
/// assert_eq!(hdr.ty, 3);
/// assert_eq!(hdr.id, 42);
/// assert_eq!(payload, b"key");
/// ```
pub fn encode_request(
    dst: &mut [u8],
    ty: u32,
    id: u64,
    payload: &[u8],
) -> Result<usize, WireError> {
    encode(dst, Kind::Request, ty, id, payload)
}

/// Encodes a response into `dst`, returning the total message length.
pub fn encode_response(
    dst: &mut [u8],
    status: Status,
    id: u64,
    payload: &[u8],
) -> Result<usize, WireError> {
    encode(dst, Kind::Response, status.to_u32(), id, payload)
}

/// Rewrites a request header in place into a response header, preserving
/// the id and leaving the payload region untouched (zero-copy reuse of
/// the ingress buffer, paper §4.3.1).
pub fn request_to_response_in_place(buf: &mut [u8], status: Status) -> Result<(), WireError> {
    let hdr = decode(buf)?.0;
    if hdr.kind != Kind::Request {
        return Err(WireError::BadKind);
    }
    // audit:allow(A1): decode() above verified buf.len() >= HEADER_LEN
    buf[3] = 1;
    buf[TYPE_OFFSET..TYPE_OFFSET + 4].copy_from_slice(&status.to_u32().to_le_bytes());
    Ok(())
}

fn encode(
    dst: &mut [u8],
    kind: Kind,
    ty: u32,
    id: u64,
    payload: &[u8],
) -> Result<usize, WireError> {
    let total = HEADER_LEN + payload.len();
    if dst.len() < total {
        return Err(WireError::BufferTooSmall);
    }
    // audit:allow(A1): fixed offsets below `total`, per the length guard above
    dst[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    dst[2] = VERSION;
    dst[3] = match kind {
        Kind::Request => 0,
        Kind::Response => 1,
    };
    // audit:allow(A1): fixed offsets below `total`, per the length guard above
    dst[TYPE_OFFSET..TYPE_OFFSET + 4].copy_from_slice(&ty.to_le_bytes());
    dst[8..16].copy_from_slice(&id.to_le_bytes());
    dst[HEADER_LEN..total].copy_from_slice(payload);
    Ok(total)
}

/// Decodes a message, returning the header and the payload slice.
pub fn decode(src: &[u8]) -> Result<(Header, &[u8]), WireError> {
    if src.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    // audit:allow(A1): src.len() >= HEADER_LEN was checked above
    let magic = u16::from_le_bytes([src[0], src[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    // audit:allow(A1): src.len() >= HEADER_LEN was checked above
    if src[2] != VERSION {
        return Err(WireError::BadVersion);
    }
    // audit:allow(A1): src.len() >= HEADER_LEN was checked above
    let kind = match src[3] {
        0 => Kind::Request,
        1 => Kind::Response,
        _ => return Err(WireError::BadKind),
    };
    let mut ty4 = [0u8; 4];
    // audit:allow(A1): fixed header offsets, src.len() >= HEADER_LEN above
    ty4.copy_from_slice(&src[TYPE_OFFSET..TYPE_OFFSET + 4]);
    let mut id8 = [0u8; 8];
    id8.copy_from_slice(&src[8..16]);
    Ok((
        Header {
            kind,
            ty: u32::from_le_bytes(ty4),
            id: u64::from_le_bytes(id8),
        },
        // audit:allow(A1): src.len() >= HEADER_LEN, checked on entry
        &src[HEADER_LEN..],
    ))
}

/// Cheap peek of a request's `(type, id)` for RX steering.
///
/// Validates only the length and magic — the two checks that decide
/// whether the type/id fields exist at their fixed offsets — and skips
/// version/kind validation, which the receiving dispatcher performs
/// anyway when it fully [`decode`]s the packet. Returns `None` for
/// packets the steering layer should treat as undecodable.
pub fn peek_route(src: &[u8]) -> Option<(u32, u64)> {
    // audit:allow(A1): the || short-circuits — indexing only runs once
    // src.len() >= HEADER_LEN holds
    if src.len() < HEADER_LEN || u16::from_le_bytes([src[0], src[1]]) != MAGIC {
        return None;
    }
    let mut ty4 = [0u8; 4];
    // audit:allow(A1): fixed header offsets, src.len() >= HEADER_LEN above
    ty4.copy_from_slice(&src[TYPE_OFFSET..TYPE_OFFSET + 4]);
    let mut id8 = [0u8; 8];
    id8.copy_from_slice(&src[8..16]);
    Some((u32::from_le_bytes(ty4), u64::from_le_bytes(id8)))
}

/// Decodes a response's status (responses carry it in the type field).
pub fn response_status(hdr: &Header) -> Option<Status> {
    if hdr.kind != Kind::Response {
        return None;
    }
    Status::from_u32(hdr.ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let mut buf = [0u8; 64];
        let len = encode_request(&mut buf, 7, 123, b"payload").unwrap();
        assert_eq!(len, HEADER_LEN + 7);
        let (hdr, payload) = decode(&buf[..len]).unwrap();
        assert_eq!(hdr.kind, Kind::Request);
        assert_eq!(hdr.ty, 7);
        assert_eq!(hdr.id, 123);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn response_round_trip_with_status() {
        let mut buf = [0u8; 32];
        let len = encode_response(&mut buf, Status::Dropped, 9, b"").unwrap();
        let (hdr, payload) = decode(&buf[..len]).unwrap();
        assert_eq!(hdr.kind, Kind::Response);
        assert_eq!(response_status(&hdr), Some(Status::Dropped));
        assert!(payload.is_empty());
        assert_eq!(hdr.id, 9);
    }

    #[test]
    fn type_field_position_matches_classifier_contract() {
        // HeaderClassifier::new(TYPE_OFFSET, n) must read the type field.
        let mut buf = [0u8; HEADER_LEN];
        encode_request(&mut buf, 0xAABB_CCDD, 0, b"").unwrap();
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&buf[TYPE_OFFSET..TYPE_OFFSET + 4]);
        assert_eq!(u32::from_le_bytes(raw), 0xAABB_CCDD);
    }

    #[test]
    fn truncated_and_corrupt_messages_are_rejected() {
        assert_eq!(decode(&[0u8; 3]), Err(WireError::Truncated));
        let mut buf = [0u8; HEADER_LEN];
        encode_request(&mut buf, 1, 1, b"").unwrap();
        let mut bad_magic = buf;
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode(&bad_magic), Err(WireError::BadMagic));
        let mut bad_version = buf;
        bad_version[2] = 99;
        assert_eq!(decode(&bad_version), Err(WireError::BadVersion));
        let mut bad_kind = buf;
        bad_kind[3] = 7;
        assert_eq!(decode(&bad_kind), Err(WireError::BadKind));
    }

    #[test]
    fn truncation_boundary_is_exact() {
        // Real sockets can deliver any length, including one byte short
        // of a header; both entry points must reject every short length
        // without panicking.
        let mut buf = [0u8; HEADER_LEN];
        encode_request(&mut buf, 1, 1, b"").unwrap();
        assert!(decode(&buf).is_ok());
        for n in 0..HEADER_LEN {
            assert_eq!(decode(&buf[..n]), Err(WireError::Truncated), "len {n}");
            assert_eq!(peek_route(&buf[..n]), None, "len {n}");
        }
    }

    #[test]
    fn encode_checks_destination_size() {
        let mut tiny = [0u8; 8];
        assert_eq!(
            encode_request(&mut tiny, 0, 0, b""),
            Err(WireError::BufferTooSmall)
        );
        let mut exact = [0u8; HEADER_LEN + 2];
        assert!(encode_request(&mut exact, 0, 0, b"ab").is_ok());
        assert_eq!(
            encode_request(&mut exact, 0, 0, b"abc"),
            Err(WireError::BufferTooSmall)
        );
    }

    #[test]
    fn in_place_response_rewrite_preserves_id_and_payload() {
        let mut buf = [0u8; 32];
        let len = encode_request(&mut buf, 5, 77, b"hello").unwrap();
        request_to_response_in_place(&mut buf[..len], Status::Ok).unwrap();
        let (hdr, payload) = decode(&buf[..len]).unwrap();
        assert_eq!(hdr.kind, Kind::Response);
        assert_eq!(hdr.id, 77);
        assert_eq!(response_status(&hdr), Some(Status::Ok));
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn in_place_rewrite_rejects_responses() {
        let mut buf = [0u8; HEADER_LEN];
        encode_response(&mut buf, Status::Ok, 1, b"").unwrap();
        assert_eq!(
            request_to_response_in_place(&mut buf, Status::Ok),
            Err(WireError::BadKind)
        );
    }

    #[test]
    fn peek_route_matches_decode_and_rejects_garbage() {
        let mut buf = [0u8; 64];
        let len = encode_request(&mut buf, 5, 0xDEAD_BEEF, b"x").unwrap();
        let (hdr, _) = decode(&buf[..len]).unwrap();
        assert_eq!(peek_route(&buf[..len]), Some((hdr.ty, hdr.id)));
        assert_eq!(peek_route(&buf[..3]), None, "too short");
        let mut bad_magic = buf;
        bad_magic[0] ^= 0xFF;
        assert_eq!(peek_route(&bad_magic[..len]), None, "bad magic");
    }

    #[test]
    fn status_codes_round_trip() {
        for s in [Status::Ok, Status::BadRequest, Status::Dropped] {
            assert_eq!(Status::from_u32(s.to_u32()), Some(s));
        }
        assert_eq!(Status::from_u32(99), None);
    }

    #[test]
    fn wire_error_displays() {
        assert_eq!(
            WireError::Truncated.to_string(),
            "message shorter than the header"
        );
        assert_eq!(WireError::BadMagic.to_string(), "bad protocol magic");
    }
}
