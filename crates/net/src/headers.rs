//! Ethernet / IPv4 / UDP header parsing and construction.
//!
//! The Perséphone net worker "is a layer 2 forwarder and performs simple
//! checks on Ethernet and IP headers" (paper §6); application payloads
//! ride in UDP (§5.1: "all systems use UDP networking"). This module
//! provides the frame encode/decode the net worker needs: fixed-offset
//! field access, length validation, and the IPv4 header checksum.
//!
//! Layouts are the standard wire formats (big-endian/network order).

use core::fmt;

/// Length of an Ethernet II header.
pub const ETH_LEN: usize = 14;
/// Length of an IPv4 header without options.
pub const IPV4_LEN: usize = 20;
/// Length of a UDP header.
pub const UDP_LEN: usize = 8;
/// Total frame overhead in front of the UDP payload.
pub const FRAME_OVERHEAD: usize = ETH_LEN + IPV4_LEN + UDP_LEN;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// A MAC address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mac(pub [u8; 6]);

impl fmt::Display for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// Decoded view of a UDP/IPv4/Ethernet frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Destination MAC.
    pub dst_mac: Mac,
    /// Source MAC.
    pub src_mac: Mac,
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Length of the UDP payload in bytes.
    pub payload_len: usize,
}

/// Frame decoding errors — the checks the net worker performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed headers.
    Truncated,
    /// EtherType is not IPv4.
    NotIpv4,
    /// IP version field is not 4 or the header carries options we do not
    /// parse.
    BadIpHeader,
    /// The IPv4 header checksum does not verify.
    BadIpChecksum,
    /// The L4 protocol is not UDP.
    NotUdp,
    /// Length fields are inconsistent with the buffer.
    BadLength,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameError::Truncated => "frame shorter than headers",
            FrameError::NotIpv4 => "ethertype is not IPv4",
            FrameError::BadIpHeader => "unsupported IPv4 header",
            FrameError::BadIpChecksum => "IPv4 checksum mismatch",
            FrameError::NotUdp => "IP protocol is not UDP",
            FrameError::BadLength => "inconsistent length fields",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FrameError {}

/// The ones-complement sum used by the IPv4 header checksum (RFC 1071).
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = header.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encodes a UDP/IPv4/Ethernet frame around `payload` into `dst`.
///
/// Returns the total frame length. The UDP checksum is set to 0
/// (legal for UDP over IPv4; kernel-bypass stacks typically offload or
/// skip it), the IPv4 checksum is computed.
///
/// # Examples
///
/// ```
/// use persephone_net::headers::{self, Mac};
///
/// let mut frame = [0u8; 128];
/// let len = headers::encode_frame(
///     &mut frame,
///     Mac([2, 0, 0, 0, 0, 1]),
///     Mac([2, 0, 0, 0, 0, 2]),
///     [10, 0, 0, 1],
///     [10, 0, 0, 2],
///     4000,
///     5000,
///     b"hello",
/// )
/// .unwrap();
/// let hdr = headers::decode_frame(&frame[..len]).unwrap();
/// assert_eq!(hdr.dst_port, 5000);
/// assert_eq!(hdr.payload_len, 5);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn encode_frame(
    dst: &mut [u8],
    src_mac: Mac,
    dst_mac: Mac,
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Result<usize, FrameError> {
    let total = FRAME_OVERHEAD + payload.len();
    if dst.len() < total || IPV4_LEN + UDP_LEN + payload.len() > u16::MAX as usize {
        return Err(FrameError::BadLength);
    }
    // Ethernet II.
    dst[0..6].copy_from_slice(&dst_mac.0);
    dst[6..12].copy_from_slice(&src_mac.0);
    dst[12..14].copy_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    // IPv4.
    let ip = &mut dst[ETH_LEN..ETH_LEN + IPV4_LEN];
    ip.fill(0);
    ip[0] = 0x45; // Version 4, IHL 5.
    let ip_total = (IPV4_LEN + UDP_LEN + payload.len()) as u16;
    ip[2..4].copy_from_slice(&ip_total.to_be_bytes());
    ip[8] = 64; // TTL.
    ip[9] = IPPROTO_UDP;
    ip[12..16].copy_from_slice(&src_ip);
    ip[16..20].copy_from_slice(&dst_ip);
    let csum = ipv4_checksum(ip);
    dst[ETH_LEN + 10..ETH_LEN + 12].copy_from_slice(&csum.to_be_bytes());
    // UDP.
    let udp_off = ETH_LEN + IPV4_LEN;
    let udp_len = (UDP_LEN + payload.len()) as u16;
    dst[udp_off..udp_off + 2].copy_from_slice(&src_port.to_be_bytes());
    dst[udp_off + 2..udp_off + 4].copy_from_slice(&dst_port.to_be_bytes());
    dst[udp_off + 4..udp_off + 6].copy_from_slice(&udp_len.to_be_bytes());
    dst[udp_off + 6..udp_off + 8].copy_from_slice(&[0, 0]); // Checksum 0.
    dst[FRAME_OVERHEAD..total].copy_from_slice(payload);
    Ok(total)
}

/// Decodes and validates a frame, returning the header view.
///
/// Performs the paper's net-worker checks: EtherType, IP version/IHL,
/// IPv4 header checksum, protocol, and length consistency.
pub fn decode_frame(frame: &[u8]) -> Result<FrameHeader, FrameError> {
    if frame.len() < FRAME_OVERHEAD {
        return Err(FrameError::Truncated);
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(FrameError::NotIpv4);
    }
    let ip = &frame[ETH_LEN..ETH_LEN + IPV4_LEN];
    if ip[0] != 0x45 {
        return Err(FrameError::BadIpHeader);
    }
    if ipv4_checksum(ip) != 0 {
        // A valid header sums (with its embedded checksum) to 0xFFFF,
        // whose complement is 0.
        return Err(FrameError::BadIpChecksum);
    }
    if ip[9] != IPPROTO_UDP {
        return Err(FrameError::NotUdp);
    }
    let ip_total = u16::from_be_bytes([ip[2], ip[3]]) as usize;
    if ip_total < IPV4_LEN + UDP_LEN || ETH_LEN + ip_total > frame.len() {
        return Err(FrameError::BadLength);
    }
    let udp = &frame[ETH_LEN + IPV4_LEN..ETH_LEN + IPV4_LEN + UDP_LEN];
    let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
    if udp_len < UDP_LEN || IPV4_LEN + udp_len != ip_total {
        return Err(FrameError::BadLength);
    }
    Ok(FrameHeader {
        dst_mac: Mac(frame[0..6].try_into().expect("len checked")),
        src_mac: Mac(frame[6..12].try_into().expect("len checked")),
        src_ip: ip[12..16].try_into().expect("len checked"),
        dst_ip: ip[16..20].try_into().expect("len checked"),
        src_port: u16::from_be_bytes([udp[0], udp[1]]),
        dst_port: u16::from_be_bytes([udp[2], udp[3]]),
        payload_len: udp_len - UDP_LEN,
    })
}

/// The UDP payload slice of a validated frame.
pub fn payload(frame: &[u8]) -> Result<&[u8], FrameError> {
    let hdr = decode_frame(frame)?;
    Ok(&frame[FRAME_OVERHEAD..FRAME_OVERHEAD + hdr.payload_len])
}

/// Swaps source/destination MACs, IPs, and ports in place — the net
/// worker's zero-copy "turn the request into a response" step.
pub fn swap_endpoints(frame: &mut [u8]) -> Result<(), FrameError> {
    decode_frame(frame)?;
    let (dst, src) = frame.split_at_mut(6);
    dst[0..6].swap_with_slice(&mut src[0..6]);
    let ip = &mut frame[ETH_LEN..ETH_LEN + IPV4_LEN];
    let (a, b) = ip.split_at_mut(16);
    a[12..16].swap_with_slice(&mut b[0..4]);
    let udp = &mut frame[ETH_LEN + IPV4_LEN..ETH_LEN + IPV4_LEN + UDP_LEN];
    let (p, q) = udp.split_at_mut(2);
    p[0..2].swap_with_slice(&mut q[0..2]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ([u8; 96], usize) {
        let mut buf = [0u8; 96];
        let len = encode_frame(
            &mut buf,
            Mac([2, 0, 0, 0, 0, 0xAA]),
            Mac([2, 0, 0, 0, 0, 0xBB]),
            [192, 168, 1, 10],
            [192, 168, 1, 20],
            1234,
            5678,
            b"payload!",
        )
        .unwrap();
        (buf, len)
    }

    #[test]
    fn round_trip() {
        let (buf, len) = sample();
        assert_eq!(len, FRAME_OVERHEAD + 8);
        let hdr = decode_frame(&buf[..len]).unwrap();
        assert_eq!(hdr.src_mac, Mac([2, 0, 0, 0, 0, 0xAA]));
        assert_eq!(hdr.dst_mac, Mac([2, 0, 0, 0, 0, 0xBB]));
        assert_eq!(hdr.src_ip, [192, 168, 1, 10]);
        assert_eq!(hdr.dst_ip, [192, 168, 1, 20]);
        assert_eq!(hdr.src_port, 1234);
        assert_eq!(hdr.dst_port, 5678);
        assert_eq!(payload(&buf[..len]).unwrap(), b"payload!");
    }

    #[test]
    fn checksum_validates_and_detects_corruption() {
        let (mut buf, len) = sample();
        assert!(decode_frame(&buf[..len]).is_ok());
        buf[ETH_LEN + 12] ^= 0xFF; // Corrupt the source IP.
        assert_eq!(decode_frame(&buf[..len]), Err(FrameError::BadIpChecksum));
    }

    #[test]
    fn rejects_non_ipv4_and_non_udp() {
        let (mut buf, len) = sample();
        buf[12] = 0x08;
        buf[13] = 0x06; // ARP.
        assert_eq!(decode_frame(&buf[..len]), Err(FrameError::NotIpv4));

        let (mut buf, len) = sample();
        buf[ETH_LEN + 9] = 6; // TCP.
                              // Re-fix the checksum so the protocol check is reached.
        buf[ETH_LEN + 10] = 0;
        buf[ETH_LEN + 11] = 0;
        let csum = ipv4_checksum(&buf[ETH_LEN..ETH_LEN + IPV4_LEN]);
        buf[ETH_LEN + 10..ETH_LEN + 12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(decode_frame(&buf[..len]), Err(FrameError::NotUdp));
    }

    #[test]
    fn rejects_truncation_and_bad_lengths() {
        let (buf, len) = sample();
        assert_eq!(decode_frame(&buf[..10]), Err(FrameError::Truncated));
        // A frame cut inside the payload fails the length consistency check.
        assert_eq!(decode_frame(&buf[..len - 3]), Err(FrameError::BadLength));
    }

    #[test]
    fn swap_endpoints_reverses_direction() {
        let (mut buf, len) = sample();
        swap_endpoints(&mut buf[..len]).unwrap();
        let hdr = decode_frame(&buf[..len]).unwrap();
        assert_eq!(hdr.src_mac, Mac([2, 0, 0, 0, 0, 0xBB]));
        assert_eq!(hdr.dst_mac, Mac([2, 0, 0, 0, 0, 0xAA]));
        assert_eq!(hdr.src_ip, [192, 168, 1, 20]);
        assert_eq!(hdr.dst_ip, [192, 168, 1, 10]);
        assert_eq!(hdr.src_port, 5678);
        assert_eq!(hdr.dst_port, 1234);
        // The payload is untouched and the checksum still verifies.
        assert_eq!(payload(&buf[..len]).unwrap(), b"payload!");
    }

    #[test]
    fn checksum_matches_rfc1071_example() {
        // RFC 1071's worked example: 00 01 f2 03 f4 f5 f6 f7 → sum 0xddf2,
        // checksum 0x220d.
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(ipv4_checksum(&data), !0xDDF2u16);
    }

    #[test]
    fn odd_length_checksum_pads_with_zero() {
        let even = ipv4_checksum(&[0xAB, 0xCD, 0xEF, 0x00]);
        let odd = ipv4_checksum(&[0xAB, 0xCD, 0xEF]);
        assert_eq!(even, odd, "trailing byte is padded with zero");
    }

    #[test]
    fn mac_displays_conventionally() {
        assert_eq!(
            Mac([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
