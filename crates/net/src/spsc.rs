//! Lock-free single-producer/single-consumer ring (paper §4.3.2).
//!
//! The Perséphone dispatcher shares requests and completion notifications
//! with each application worker over a pair of SPSC channels, using a
//! lightweight-RPC design inspired by Barrelfish: sender and consumer keep
//! *local* copies of the head/tail indices and only touch the shared
//! atomics when their local view says the ring might be full (producer) or
//! empty (consumer). This keeps cache-coherence traffic off the common
//! path; the paper measures ≈88 cycles per operation.
//!
//! This is the only module in the workspace (together with its sibling
//! [`crate::mpsc`]) that uses `unsafe`; every block carries a SAFETY
//! argument. The ring is validated by unit tests, a two-thread stress
//! test, property tests in `tests/`, and — because every primitive here
//! comes from [`crate::sync`] — by exhaustive bounded model checking
//! under `--features model-check` (see `tests/model_rings.rs`).

use core::mem::MaybeUninit;

use crate::sync::{Arc, AtomicUsize, CachePadded, Ordering, UnsafeCell};

/// Error returned by [`Producer::push`] when the ring is full.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the producer will write (monotonically increasing).
    tail: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read (monotonically increasing).
    head: CachePadded<AtomicUsize>,
    mask: usize,
}

// SAFETY: `Ring` is shared between exactly one producer thread and one
// consumer thread. Slots in `[head, tail)` are initialized and owned by
// the consumer; slots in `[tail, head + capacity)` are free and owned by
// the producer. The atomics transfer ownership with Acquire/Release
// ordering, so no slot is ever accessed concurrently from both sides.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: see above — `Ring`'s interior mutability is partitioned by
// index ranges guarded by the head/tail atomics.
unsafe impl<T: Send> Sync for Ring<T> {}

/// The sending half of the channel.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local tail (our own write cursor; only we advance it).
    tail: usize,
    /// Cached view of the consumer's head; refreshed only when the ring
    /// looks full (the Barrelfish-style lazy synchronization).
    head_cache: usize,
}

/// The receiving half of the channel.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local head (our own read cursor; only we advance it).
    head: usize,
    /// Cached view of the producer's tail; refreshed only when the ring
    /// looks empty.
    tail_cache: usize,
}

/// Creates a bounded SPSC channel with capacity rounded up to a power of
/// two (at least 2).
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = persephone_net::spsc::channel::<u64>(8);
/// tx.push(7).unwrap();
/// assert_eq!(rx.pop(), Some(7));
/// assert_eq!(rx.pop(), None);
/// ```
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        buf,
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        mask: cap - 1,
    });
    (
        Producer {
            ring: ring.clone(),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            ring,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Pushes a value, or returns it back when the ring is full.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), Full<T>> {
        let cap = self.ring.mask + 1;
        if self.tail - self.head_cache == cap {
            // Ring looks full from the cached view: synchronize once.
            self.head_cache = self.ring.head.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(Full(value));
            }
        }
        let slot = &self.ring.buf[self.tail & self.ring.mask];
        // SAFETY: `tail < head + cap` was just established, so this `Ring`
        // slot is outside the consumer-owned `[head, tail)` window and
        // free. We are the only producer, so nobody else writes it.
        slot.with_mut(|p| unsafe { (*p).write(value) });
        self.tail += 1;
        // Release publishes the slot contents before the new tail.
        self.ring.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Lower bound on the number of free slots (exact from this side).
    pub fn free_slots(&mut self) -> usize {
        self.head_cache = self.ring.head.load(Ordering::Acquire);
        self.capacity() - (self.tail - self.head_cache)
    }

    /// Pushes values from the front of `src` until the ring fills or
    /// `src` is exhausted, returning how many were pushed.
    ///
    /// The batch counterpart of [`Producer::push`]: the shared indices
    /// are touched once per call — one `head` refresh up front, one
    /// `tail` publish at the end — instead of once per element.
    pub fn push_batch(&mut self, src: &mut std::collections::VecDeque<T>) -> usize {
        let cap = self.ring.mask + 1;
        self.head_cache = self.ring.head.load(Ordering::Acquire);
        let free = cap - (self.tail - self.head_cache);
        let n = free.min(src.len());
        for _ in 0..n {
            let value = src.pop_front().expect("n <= src.len()");
            let slot = &self.ring.buf[self.tail & self.ring.mask];
            // SAFETY: `tail < head + cap` holds for each of the `n` `Ring`
            // slots (we claim at most `free` of them), so every written
            // slot is outside the consumer-owned `[head, tail)` window. We
            // are the only producer; the consumer cannot see these slots
            // until the Release store below publishes the new tail.
            slot.with_mut(|p| unsafe { (*p).write(value) });
            self.tail += 1;
        }
        if n > 0 {
            // One Release publishes the whole batch.
            self.ring.tail.store(self.tail, Ordering::Release);
        }
        n
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Pops the oldest value, or `None` when the ring is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Ring looks empty from the cached view: synchronize once.
            self.tail_cache = self.ring.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.ring.buf[self.head & self.ring.mask];
        // SAFETY: `head < tail` was just established, so the producer wrote
        // and published this `Ring` slot (Acquire on `tail` paired with its
        // Release store). We are the only consumer; after the read we
        // advance `head`, returning the slot to the producer.
        let value = slot.with(|p| unsafe { (*p).assume_init_read() });
        self.head += 1;
        // Release hands the slot back before the new head is visible.
        self.ring.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Lower bound on the number of queued values (exact from this side).
    ///
    /// The `tail` load is deliberately `Acquire`, not `Relaxed`, even
    /// though this is "just" an observer: `len` refreshes `tail_cache`,
    /// and a subsequent [`Consumer::pop`] may trust that cache and read
    /// a slot *without* reloading `tail`. The Acquire here is therefore
    /// load-bearing — it pairs with the producer's Release publish so
    /// the slot contents are visible before the count that advertises
    /// them. A Relaxed load would be sound only for a length that is
    /// never fed back into the pop fast path; ours is. The same
    /// decision is mirrored in [`crate::mpsc::Receiver::len`], where
    /// the claimed-count load is Acquire for the analogous reason.
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.ring.tail.load(Ordering::Acquire);
        self.tail_cache - self.head
    }

    /// Whether the ring currently looks empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Pops up to `max` values into `out`, returning how many arrived.
    ///
    /// The batch counterpart of [`Consumer::pop`]: the shared indices are
    /// touched once per call — one `tail` refresh up front, one `head`
    /// publish at the end — instead of once per element. This is the
    /// dispatcher's completion-folding hot path.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        self.tail_cache = self.ring.tail.load(Ordering::Acquire);
        let n = (self.tail_cache - self.head).min(max);
        // audit:allow(A2): no-op for pre-warmed callers (the dispatcher
        // sizes its batch buffers at spawn); grows only on cold first use
        out.reserve(n);
        for _ in 0..n {
            let slot = &self.ring.buf[self.head & self.ring.mask];
            // SAFETY: `head < tail` holds for each of the `n` `Ring` slots
            // (we take at most the published backlog), so the producer
            // wrote and published them all (the Acquire load above pairs
            // with its Release stores). We are the only consumer; the slots
            // return to the producer only at the Release store below.
            let value = slot.with(|p| unsafe { (*p).assume_init_read() });
            out.push(value);
            self.head += 1;
        }
        if n > 0 {
            // One Release hands the whole batch of slots back.
            self.ring.head.store(self.head, Ordering::Release);
        }
        n
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drop any values still in flight. `Ring` is dropped only when both
        // halves are gone, so the indices are quiescent: `Arc`'s refcount
        // teardown (Release on every clone drop, Acquire before running
        // this destructor) already ordered both sides' final stores before
        // this point, which is why Relaxed loads suffice here.
        // audit:ordering: exclusive access in drop — Arc teardown already
        // ordered both halves' final stores (see above)
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.buf[i & self.mask];
            // SAFETY: `Ring` slots in `[head, tail)` hold initialized
            // values that were never popped; we have exclusive access in
            // `drop`.
            slot.with_mut(|p| unsafe { (*p).assume_init_drop() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trip() {
        let (mut tx, mut rx) = channel::<u32>(4);
        assert_eq!(rx.pop(), None);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (tx, _rx) = channel::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = channel::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn full_ring_rejects() {
        let (mut tx, mut rx) = channel::<u32>(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(Full(3)));
        assert_eq!(rx.pop(), Some(1));
        // Space is visible to the producer after the lazy refresh.
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for i in 0..10_000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn len_and_free_slots_agree() {
        let (mut tx, mut rx) = channel::<u8>(4);
        assert_eq!(tx.free_slots(), 4);
        assert!(rx.is_empty());
        tx.push(0).unwrap();
        tx.push(0).unwrap();
        assert_eq!(tx.free_slots(), 2);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn drops_in_flight_values() {
        use std::sync::atomic::AtomicU32;
        static DROPS: AtomicU32 = AtomicU32::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut tx, rx) = channel::<D>(4);
            tx.push(D).unwrap();
            tx.push(D).unwrap();
            drop(tx);
            drop(rx);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn two_thread_stress_preserves_sequence() {
        let (mut tx, mut rx) = channel::<u64>(64);
        const N: u64 = 1_000_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(Full(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected, "values must arrive in order");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn batch_ops_round_trip_and_bound_correctly() {
        let (mut tx, mut rx) = channel::<u32>(4);
        let mut src: std::collections::VecDeque<u32> = (0..7).collect();
        assert_eq!(tx.push_batch(&mut src), 4, "ring capacity bounds the push");
        assert_eq!(src.len(), 3, "unpushed values stay in the source");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![0, 1]);
        assert_eq!(tx.push_batch(&mut src), 2, "freed slots visible");
        assert_eq!(rx.pop_batch(&mut out, usize::MAX), 4);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5], "FIFO order preserved");
        assert_eq!(rx.pop_batch(&mut out, usize::MAX), 0);
        assert!(src.iter().eq([6u32].iter()), "one value never fit");
    }

    #[test]
    fn batch_and_single_ops_interleave() {
        let (mut tx, mut rx) = channel::<u32>(8);
        tx.push(100).unwrap();
        let mut src: std::collections::VecDeque<u32> = [101, 102].into();
        assert_eq!(tx.push_batch(&mut src), 2);
        assert_eq!(rx.pop(), Some(100));
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, usize::MAX), 2);
        assert_eq!(out, vec![101, 102]);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn two_thread_batch_stress_preserves_sequence() {
        let (mut tx, mut rx) = channel::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut src: std::collections::VecDeque<u64> = (0..N).collect();
            while !src.is_empty() {
                if tx.push_batch(&mut src) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        let mut out = Vec::new();
        while expected < N {
            out.clear();
            if rx.pop_batch(&mut out, 32) == 0 {
                std::hint::spin_loop();
                continue;
            }
            for &v in &out {
                assert_eq!(v, expected, "values must arrive in order");
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn boxed_payloads_survive_transfer() {
        let (mut tx, mut rx) = channel::<Box<String>>(8);
        tx.push(Box::new("hello".to_string())).unwrap();
        assert_eq!(*rx.pop().unwrap(), "hello");
    }
}
