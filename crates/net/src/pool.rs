//! Fixed-size packet buffer pool with per-thread caches (paper §4.3.1).
//!
//! Perséphone registers a statically allocated memory pool with the NIC.
//! Receive-path allocation happens on the net worker (the pool's single
//! consumer); application workers *release* buffers after transmission
//! through a multi-producer ring, batching releases in a thread-local
//! cache to reduce traffic to the shared ring.

use crate::mpsc;

/// A fixed-capacity packet buffer.
///
/// Buffers never reallocate: `len` tracks the valid prefix, and writing
/// past capacity is an error surfaced to the caller. Requests that fit in
/// one buffer are passed zero-copy from RX to the worker and reused for
/// the response (paper §4.3.1).
#[derive(Debug)]
pub struct PacketBuf {
    data: Box<[u8]>,
    len: usize,
    /// Source address of the datagram this buffer was received from, when
    /// it arrived over a real socket (`None` on the loopback transport).
    /// Zero-copy response reuse carries it back out, so a worker's
    /// `NetContext::send` knows where to `send_to` without any lookup.
    peer: Option<std::net::SocketAddr>,
}

impl PacketBuf {
    /// Creates a zero-length buffer of the given capacity.
    ///
    /// Buffer *construction* is the slow lane by design: pools build
    /// their stock up front, and a steady-state RX path only recycles
    /// (a pool-miss refill is counted in `rx_allocs`). Cold marks that
    /// frontier for the audit.
    #[cold]
    pub fn with_capacity(cap: usize) -> Self {
        PacketBuf {
            data: vec![0u8; cap].into_boxed_slice(),
            len: 0,
            peer: None,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Valid bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no valid bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The valid prefix.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..self.len]
    }

    /// Overwrites the buffer contents.
    ///
    /// Returns `false` (leaving the buffer unchanged) if `src` exceeds the
    /// capacity.
    pub fn fill(&mut self, src: &[u8]) -> bool {
        if src.len() > self.data.len() {
            return false;
        }
        self.data[..src.len()].copy_from_slice(src);
        self.len = src.len();
        true
    }

    /// Mutable access to the full backing storage plus a length setter,
    /// for in-place response formatting (zero-copy reuse).
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sets the valid length.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the capacity.
    pub fn set_len(&mut self, len: usize) {
        // audit:allow(A1): a length beyond capacity would hand out
        // uninitialized tail bytes; crashing is the contract
        assert!(len <= self.data.len(), "len beyond capacity");
        self.len = len;
    }

    /// Resets to an empty buffer (contents retained, length and peer
    /// address zeroed — a recycled buffer must not leak a stale route).
    pub fn clear(&mut self) {
        self.len = 0;
        self.peer = None;
    }

    /// The datagram's source address, when received over a real socket.
    pub fn peer(&self) -> Option<std::net::SocketAddr> {
        self.peer
    }

    /// Stamps the peer address a response should be sent to.
    pub fn set_peer(&mut self, peer: Option<std::net::SocketAddr>) {
        self.peer = peer;
    }
}

/// The allocation side of the pool (single owner — the net worker).
pub struct PoolAllocator {
    free: mpsc::Receiver<PacketBuf>,
    sender: mpsc::Sender<PacketBuf>,
    cache: Vec<PacketBuf>,
    buf_size: usize,
    total: usize,
}

/// A per-thread release handle with a local buffer cache.
pub struct PoolReleaser {
    ring: mpsc::Sender<PacketBuf>,
    cache: Vec<PacketBuf>,
    cache_max: usize,
}

/// Creates a pool of `count` buffers of `buf_size` bytes each.
///
/// Returns the single allocator and a factory-side handle; call
/// [`PoolAllocator::releaser`] once per releasing thread.
///
/// # Examples
///
/// ```
/// let mut alloc = persephone_net::pool::BufferPool::new(4, 256);
/// let mut rel = alloc.releaser();
/// let buf = alloc.alloc().expect("pool has buffers");
/// rel.release(buf);
/// rel.flush();
/// assert!(alloc.alloc().is_some());
/// ```
pub struct BufferPool;

impl BufferPool {
    /// Builds the pool; see the type-level docs.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `buf_size` is zero.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(count: usize, buf_size: usize) -> PoolAllocator {
        assert!(count > 0 && buf_size > 0);
        let (tx, rx) = mpsc::channel(count.next_power_of_two() * 2);
        for _ in 0..count {
            assert!(
                tx.push(PacketBuf::with_capacity(buf_size)).is_ok(),
                "ring sized to fit the pool"
            );
        }
        PoolAllocator {
            free: rx,
            sender: tx,
            cache: Vec::new(),
            buf_size,
            total: count,
        }
    }
}

impl PoolAllocator {
    /// Takes a free buffer, or `None` when the pool is exhausted (the
    /// caller should backpressure, e.g. leave packets in the NIC queue).
    pub fn alloc(&mut self) -> Option<PacketBuf> {
        if let Some(mut b) = self.cache.pop() {
            b.clear();
            return Some(b);
        }
        self.free.pop().map(|mut b| {
            b.clear();
            b
        })
    }

    /// Creates a release handle for another thread. The local cache holds
    /// up to 32 buffers before flushing to the shared ring.
    ///
    /// Spawn-time wiring, called once per releasing thread.
    #[cold]
    pub fn releaser(&self) -> PoolReleaser {
        PoolReleaser {
            ring: self.release_sender(),
            cache: Vec::new(),
            cache_max: 32,
        }
    }

    /// The raw release ring sender (for custom caching strategies).
    pub fn release_sender(&self) -> mpsc::Sender<PacketBuf> {
        self.sender.clone()
    }

    /// Total buffers owned by the pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Buffer size in bytes.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }
}

impl PoolReleaser {
    /// Returns a buffer to the pool (possibly batched locally).
    pub fn release(&mut self, buf: PacketBuf) {
        self.cache.push(buf);
        if self.cache.len() >= self.cache_max {
            self.flush();
        }
    }

    /// Pushes all locally cached buffers to the shared ring.
    pub fn flush(&mut self) {
        for buf in self.cache.drain(..) {
            // The ring is sized for every pool buffer, so a push can only
            // fail if foreign buffers were injected; dropping is safe
            // (they are plain memory) but should not happen.
            let _ = self.ring.push(buf);
        }
    }

    /// Buffers currently parked in the local cache.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

impl Drop for PoolReleaser {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_buf_fill_and_bounds() {
        let mut b = PacketBuf::with_capacity(8);
        assert!(b.is_empty());
        assert!(b.fill(&[1, 2, 3]));
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.fill(&[0u8; 9]), "over-capacity fill must fail");
        assert_eq!(b.as_slice(), &[1, 2, 3], "failed fill leaves data intact");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 8);
    }

    #[test]
    fn raw_mut_and_set_len_format_in_place() {
        let mut b = PacketBuf::with_capacity(4);
        b.raw_mut()[..2].copy_from_slice(&[9, 9]);
        b.set_len(2);
        assert_eq!(b.as_slice(), &[9, 9]);
    }

    #[test]
    #[should_panic(expected = "len beyond capacity")]
    fn set_len_checks_capacity() {
        PacketBuf::with_capacity(2).set_len(3);
    }

    #[test]
    fn pool_exhausts_and_recycles() {
        let mut alloc = BufferPool::new(2, 16);
        assert_eq!(alloc.total(), 2);
        assert_eq!(alloc.buf_size(), 16);
        let a = alloc.alloc().unwrap();
        let b = alloc.alloc().unwrap();
        assert!(alloc.alloc().is_none(), "pool exhausted");
        let mut rel = alloc.releaser();
        rel.release(a);
        rel.release(b);
        assert_eq!(rel.cached(), 2, "releases batch locally");
        assert!(alloc.alloc().is_none(), "not yet flushed");
        rel.flush();
        assert!(alloc.alloc().is_some());
        assert!(alloc.alloc().is_some());
    }

    #[test]
    fn releaser_flushes_on_drop() {
        let mut alloc = BufferPool::new(1, 16);
        let buf = alloc.alloc().unwrap();
        {
            let mut rel = alloc.releaser();
            rel.release(buf);
        }
        assert!(alloc.alloc().is_some(), "drop must flush the cache");
    }

    #[test]
    fn releaser_auto_flushes_past_cache_max() {
        let mut alloc = BufferPool::new(64, 8);
        let mut bufs = Vec::new();
        for _ in 0..33 {
            bufs.push(alloc.alloc().unwrap());
        }
        let mut rel = alloc.releaser();
        for b in bufs {
            rel.release(b);
        }
        // 32 triggered a flush; the 33rd sits in the cache.
        assert_eq!(rel.cached(), 1);
    }

    #[test]
    fn alloc_returns_cleared_buffers() {
        let mut alloc = BufferPool::new(1, 16);
        let mut b = alloc.alloc().unwrap();
        b.fill(&[1, 2, 3]);
        let mut rel = alloc.releaser();
        rel.release(b);
        rel.flush();
        let b2 = alloc.alloc().unwrap();
        assert!(b2.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn cross_thread_release() {
        let mut alloc = BufferPool::new(4, 32);
        let bufs: Vec<_> = (0..4).map(|_| alloc.alloc().unwrap()).collect();
        let sender = alloc.release_sender();
        std::thread::spawn(move || {
            let mut rel = PoolReleaser {
                ring: sender,
                cache: Vec::new(),
                cache_max: 1,
            };
            for b in bufs {
                rel.release(b);
            }
        })
        .join()
        .unwrap();
        for _ in 0..4 {
            assert!(alloc.alloc().is_some());
        }
    }
}
