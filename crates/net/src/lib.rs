//! # persephone-net — in-process kernel-bypass networking substrate
//!
//! Stands in for the paper's DPDK + Intel X710 deployment: lock-free
//! SPSC/MPSC rings (the Barrelfish-style lightweight-RPC channels of
//! paper §4.3.2), a fixed-size packet-buffer pool with per-thread release
//! caches (§4.3.1), the request/response wire format with the type field
//! in the header (§5.1), and a loopback NIC with RX/TX queues.
//!
//! All `unsafe` code in the workspace lives in [`spsc`] and [`mpsc`], with
//! `// SAFETY:` arguments on every block — enforced mechanically by
//! `cargo xtask lint`. Both rings are built on the [`sync`] facade, so
//! under `--features model-check` the exact shipped code runs inside
//! `persephone_check`'s bounded interleaving explorer (see
//! `tests/model_rings.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use persephone_net::{nic, pool::BufferPool, wire};
//!
//! let mut alloc = BufferPool::new(8, 256);
//! let (mut client, mut server) = nic::loopback(16);
//!
//! // Client: encode a typed request and transmit it.
//! let mut buf = alloc.alloc().unwrap();
//! let len = wire::encode_request(buf.raw_mut(), 1, 42, b"GET k").unwrap();
//! buf.set_len(len);
//! client.send(buf).unwrap();
//!
//! // Server: receive and decode.
//! let pkt = server.recv().unwrap();
//! let (hdr, payload) = wire::decode(pkt.as_slice()).unwrap();
//! assert_eq!((hdr.ty, hdr.id, payload), (1, 42, &b"GET k"[..]));
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to the ring modules; see their SAFETY comments.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod headers;
pub mod mpsc;
pub mod nic;
pub mod pool;
pub mod spsc;
pub mod sync;
pub mod udp;
pub mod wire;

pub use nic::{
    loopback, loopback_mq, loopback_mq_with_faults, loopback_with_faults, ClientPort, NetContext,
    NicFaultPlan, ServerPort, Steering,
};
pub use pool::{BufferPool, PacketBuf, PoolAllocator, PoolReleaser};
pub use udp::{UdpConfig, UdpQueueStats};
