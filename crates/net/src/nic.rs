//! An in-process loopback "NIC".
//!
//! The hardware substitute for the paper's Intel X710: a pair of bounded
//! lock-free rings standing in for the RX and TX hardware queues. The
//! client side pushes request packets and drains responses; the server
//! side gives its net worker exclusive RX access and hands each
//! application worker a [`NetContext`] with direct TX access — matching
//! Perséphone's design where workers transmit responses themselves
//! without bouncing through the net worker (paper §4.3.1, §6).

use crate::mpsc;
use crate::pool::PacketBuf;

/// Default depth of each hardware queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Deterministic NIC-level fault injection for chaos tests.
///
/// The default plan injects nothing; [`loopback_with_faults`] wires a plan
/// into the client→server direction of a link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicFaultPlan {
    /// Silently drop every `drop_every`-th request packet (1-based count:
    /// with `drop_every = 7` the 7th, 14th, ... packets vanish in flight).
    /// `0` disables packet dropping.
    pub drop_every: u64,
}

impl NicFaultPlan {
    /// A plan that drops every `n`-th client→server packet.
    pub fn drop_every(n: u64) -> Self {
        NicFaultPlan { drop_every: n }
    }
}

/// The client's end of the link.
pub struct ClientPort {
    tx: mpsc::Sender<PacketBuf>,
    rx: mpsc::Receiver<PacketBuf>,
    faults: NicFaultPlan,
    sent: u64,
    fault_drops: u64,
}

/// The server's end of the link.
pub struct ServerPort {
    rx: mpsc::Receiver<PacketBuf>,
    tx: mpsc::Sender<PacketBuf>,
}

/// A per-worker transmit context (paper: "this context gives them unique
/// access to receive and transmit queues in the NIC").
pub struct NetContext {
    tx: mpsc::Sender<PacketBuf>,
}

/// Error returned when a hardware queue is full.
#[derive(Debug)]
pub struct QueueFull(pub PacketBuf);

/// Creates a loopback link with the given queue depth.
///
/// # Examples
///
/// ```
/// use persephone_net::nic;
/// use persephone_net::pool::PacketBuf;
///
/// let (mut client, mut server) = nic::loopback(16);
/// let mut pkt = PacketBuf::with_capacity(64);
/// pkt.fill(b"ping");
/// client.send(pkt).unwrap();
/// let got = server.recv().expect("packet arrived");
/// assert_eq!(got.as_slice(), b"ping");
/// ```
pub fn loopback(queue_depth: usize) -> (ClientPort, ServerPort) {
    loopback_with_faults(queue_depth, NicFaultPlan::default())
}

/// Creates a loopback link whose client→server direction injects the
/// faults described by `faults` — the "lossy wire" for chaos tests.
pub fn loopback_with_faults(queue_depth: usize, faults: NicFaultPlan) -> (ClientPort, ServerPort) {
    let (c2s_tx, c2s_rx) = mpsc::channel(queue_depth);
    let (s2c_tx, s2c_rx) = mpsc::channel(queue_depth);
    (
        ClientPort {
            tx: c2s_tx,
            rx: s2c_rx,
            faults,
            sent: 0,
            fault_drops: 0,
        },
        ServerPort {
            rx: c2s_rx,
            tx: s2c_tx,
        },
    )
}

impl ClientPort {
    /// Transmits a request packet toward the server.
    ///
    /// An injected fault "loses" the packet in flight: the call reports
    /// success (the wire accepted it) but the server never sees it — and,
    /// as on real hardware, the buffer is gone from the pool until the
    /// client's timeout accounting gives up on the response.
    pub fn send(&mut self, pkt: PacketBuf) -> Result<(), QueueFull> {
        self.sent += 1;
        if self.faults.drop_every != 0 && self.sent.is_multiple_of(self.faults.drop_every) {
            self.fault_drops += 1;
            drop(pkt);
            return Ok(());
        }
        self.tx.push(pkt).map_err(|e| QueueFull(e.0))
    }

    /// Packets silently dropped by the fault plan so far.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Receives the next response, if any.
    pub fn recv(&mut self) -> Option<PacketBuf> {
        self.rx.pop()
    }

    /// A cloneable sender for multi-threaded load generators.
    ///
    /// Raw senders bypass the fault plan: faults are injected only on
    /// [`ClientPort::send`], where they can be accounted.
    pub fn sender(&self) -> mpsc::Sender<PacketBuf> {
        self.tx.clone()
    }
}

impl ServerPort {
    /// Receives the next request (net worker only).
    pub fn recv(&mut self) -> Option<PacketBuf> {
        self.rx.pop()
    }

    /// Creates a transmit context for an application worker.
    pub fn context(&self) -> NetContext {
        NetContext {
            tx: self.tx.clone(),
        }
    }
}

impl NetContext {
    /// Transmits a response packet toward the client.
    pub fn send(&self, pkt: PacketBuf) -> Result<(), QueueFull> {
        self.tx.push(pkt).map_err(|e| QueueFull(e.0))
    }

    /// Transmits with a bounded spin-then-yield retry, returning the
    /// packet only after `max_attempts` pushes all found the queue full.
    ///
    /// This is the one send-retry loop shared by the dispatcher's control
    /// responses and the workers' data responses: short bursts of
    /// backpressure (a client briefly not draining) are absorbed, while a
    /// dead client bounds the stall instead of wedging the server. Callers
    /// should count an `Err` as a give-up in telemetry.
    pub fn send_with_retry(&self, pkt: PacketBuf, max_attempts: usize) -> Result<(), QueueFull> {
        let mut pkt = pkt;
        for attempt in 0..max_attempts.max(1) {
            match self.send(pkt) {
                Ok(()) => return Ok(()),
                Err(QueueFull(p)) => {
                    pkt = p;
                    // Spin briefly for the common transient case, then
                    // yield so a same-core client can drain the ring.
                    if attempt < 64 {
                        core::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        Err(QueueFull(pkt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: &[u8]) -> PacketBuf {
        let mut p = PacketBuf::with_capacity(64);
        assert!(p.fill(bytes));
        p
    }

    #[test]
    fn request_and_response_flow() {
        let (mut client, mut server) = loopback(8);
        client.send(pkt(b"req")).unwrap();
        let got = server.recv().unwrap();
        assert_eq!(got.as_slice(), b"req");
        let ctx = server.context();
        ctx.send(pkt(b"resp")).unwrap();
        assert_eq!(client.recv().unwrap().as_slice(), b"resp");
        assert!(client.recv().is_none());
        assert!(server.recv().is_none());
    }

    #[test]
    fn queue_depth_backpressures() {
        let (mut client, _server) = loopback(2);
        client.send(pkt(b"1")).unwrap();
        client.send(pkt(b"2")).unwrap();
        let err = client.send(pkt(b"3")).unwrap_err();
        assert_eq!(err.0.as_slice(), b"3", "rejected packet is returned");
    }

    #[test]
    fn multiple_worker_contexts_share_tx() {
        let (mut client, server) = loopback(16);
        let a = server.context();
        let b = server.context();
        a.send(pkt(b"a")).unwrap();
        b.send(pkt(b"b")).unwrap();
        let mut seen = Vec::new();
        while let Some(p) = client.recv() {
            seen.push(p.as_slice().to_vec());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn fault_plan_drops_every_nth_packet() {
        let (mut client, mut server) = loopback_with_faults(32, NicFaultPlan::drop_every(3));
        for i in 0..9u32 {
            client.send(pkt(&i.to_le_bytes())).unwrap();
        }
        assert_eq!(client.fault_drops(), 3, "packets 3, 6, 9 vanish");
        let mut arrived = 0;
        while server.recv().is_some() {
            arrived += 1;
        }
        assert_eq!(arrived, 6);
        // A zero plan (the default) never drops.
        let (mut c2, mut s2) = loopback(8);
        c2.send(pkt(b"x")).unwrap();
        assert_eq!(c2.fault_drops(), 0);
        assert!(s2.recv().is_some());
    }

    #[test]
    fn send_with_retry_succeeds_once_drained_and_bounds_give_up() {
        let (mut client, server) = loopback(2);
        let ctx = server.context();
        ctx.send(pkt(b"full1")).unwrap();
        ctx.send(pkt(b"full2")).unwrap();
        // Queue full and nobody draining: a bounded give-up returns the
        // packet instead of spinning forever.
        let err = ctx.send_with_retry(pkt(b"stuck"), 100).unwrap_err();
        assert_eq!(err.0.as_slice(), b"stuck");
        // A concurrent drain lets a longer retry get through.
        let drainer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 3 {
                if let Some(p) = client.recv() {
                    got.push(p.as_slice().to_vec());
                } else {
                    std::thread::yield_now();
                }
            }
            got
        });
        ctx.send_with_retry(pkt(b"later"), 1_000_000).unwrap();
        let got = drainer.join().unwrap();
        assert_eq!(got[0], b"full1");
        assert_eq!(got[2], b"later");
    }

    #[test]
    fn cross_thread_traffic() {
        let (mut client, mut server) = loopback(64);
        let sender = client.sender();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let mut p = pkt(&i.to_le_bytes());
                loop {
                    match sender.push(p) {
                        Ok(()) => break,
                        Err(e) => {
                            p = e.0;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = 0;
        while got < 1000 {
            if server.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert!(client.recv().is_none());
    }
}
