//! An in-process loopback "NIC".
//!
//! The hardware substitute for the paper's Intel X710: a pair of bounded
//! lock-free rings standing in for the RX and TX hardware queues. The
//! client side pushes request packets and drains responses; the server
//! side gives its net worker exclusive RX access and hands each
//! application worker a [`NetContext`] with direct TX access — matching
//! Perséphone's design where workers transmit responses themselves
//! without bouncing through the net worker (paper §4.3.1, §6).

use crate::mpsc;
use crate::pool::PacketBuf;

/// Default depth of each hardware queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// The client's end of the link.
pub struct ClientPort {
    tx: mpsc::Sender<PacketBuf>,
    rx: mpsc::Receiver<PacketBuf>,
}

/// The server's end of the link.
pub struct ServerPort {
    rx: mpsc::Receiver<PacketBuf>,
    tx: mpsc::Sender<PacketBuf>,
}

/// A per-worker transmit context (paper: "this context gives them unique
/// access to receive and transmit queues in the NIC").
pub struct NetContext {
    tx: mpsc::Sender<PacketBuf>,
}

/// Error returned when a hardware queue is full.
#[derive(Debug)]
pub struct QueueFull(pub PacketBuf);

/// Creates a loopback link with the given queue depth.
///
/// # Examples
///
/// ```
/// use persephone_net::nic;
/// use persephone_net::pool::PacketBuf;
///
/// let (mut client, mut server) = nic::loopback(16);
/// let mut pkt = PacketBuf::with_capacity(64);
/// pkt.fill(b"ping");
/// client.send(pkt).unwrap();
/// let got = server.recv().expect("packet arrived");
/// assert_eq!(got.as_slice(), b"ping");
/// ```
pub fn loopback(queue_depth: usize) -> (ClientPort, ServerPort) {
    let (c2s_tx, c2s_rx) = mpsc::channel(queue_depth);
    let (s2c_tx, s2c_rx) = mpsc::channel(queue_depth);
    (
        ClientPort {
            tx: c2s_tx,
            rx: s2c_rx,
        },
        ServerPort {
            rx: c2s_rx,
            tx: s2c_tx,
        },
    )
}

impl ClientPort {
    /// Transmits a request packet toward the server.
    pub fn send(&mut self, pkt: PacketBuf) -> Result<(), QueueFull> {
        self.tx.push(pkt).map_err(|e| QueueFull(e.0))
    }

    /// Receives the next response, if any.
    pub fn recv(&mut self) -> Option<PacketBuf> {
        self.rx.pop()
    }

    /// A cloneable sender for multi-threaded load generators.
    pub fn sender(&self) -> mpsc::Sender<PacketBuf> {
        self.tx.clone()
    }
}

impl ServerPort {
    /// Receives the next request (net worker only).
    pub fn recv(&mut self) -> Option<PacketBuf> {
        self.rx.pop()
    }

    /// Creates a transmit context for an application worker.
    pub fn context(&self) -> NetContext {
        NetContext {
            tx: self.tx.clone(),
        }
    }
}

impl NetContext {
    /// Transmits a response packet toward the client.
    pub fn send(&self, pkt: PacketBuf) -> Result<(), QueueFull> {
        self.tx.push(pkt).map_err(|e| QueueFull(e.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: &[u8]) -> PacketBuf {
        let mut p = PacketBuf::with_capacity(64);
        assert!(p.fill(bytes));
        p
    }

    #[test]
    fn request_and_response_flow() {
        let (mut client, mut server) = loopback(8);
        client.send(pkt(b"req")).unwrap();
        let got = server.recv().unwrap();
        assert_eq!(got.as_slice(), b"req");
        let ctx = server.context();
        ctx.send(pkt(b"resp")).unwrap();
        assert_eq!(client.recv().unwrap().as_slice(), b"resp");
        assert!(client.recv().is_none());
        assert!(server.recv().is_none());
    }

    #[test]
    fn queue_depth_backpressures() {
        let (mut client, _server) = loopback(2);
        client.send(pkt(b"1")).unwrap();
        client.send(pkt(b"2")).unwrap();
        let err = client.send(pkt(b"3")).unwrap_err();
        assert_eq!(err.0.as_slice(), b"3", "rejected packet is returned");
    }

    #[test]
    fn multiple_worker_contexts_share_tx() {
        let (mut client, server) = loopback(16);
        let a = server.context();
        let b = server.context();
        a.send(pkt(b"a")).unwrap();
        b.send(pkt(b"b")).unwrap();
        let mut seen = Vec::new();
        while let Some(p) = client.recv() {
            seen.push(p.as_slice().to_vec());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn cross_thread_traffic() {
        let (mut client, mut server) = loopback(64);
        let sender = client.sender();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let mut p = pkt(&i.to_le_bytes());
                loop {
                    match sender.push(p) {
                        Ok(()) => break,
                        Err(e) => {
                            p = e.0;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = 0;
        while got < 1000 {
            if server.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert!(client.recv().is_none());
    }
}
