//! The NIC abstraction: an in-process loopback "NIC" with multi-queue
//! RX, plus the plumbing shared with the real-socket UDP backend.
//!
//! The loopback transport is the hardware substitute for the paper's
//! Intel X710: bounded lock-free rings standing in for the RX and TX
//! hardware queues. The client side pushes request packets and drains
//! responses; the server side gives each net worker exclusive access to
//! one RX queue and hands every application worker a [`NetContext`] with
//! direct TX access — matching Perséphone's design where workers
//! transmit responses themselves without bouncing through the net worker
//! (paper §4.3.1, §6).
//!
//! The same three types also front the real-network transport: the
//! [`crate::udp`] constructors return `ClientPort`/`ServerPort` values
//! backed by nonblocking sockets instead of rings, so the dispatcher,
//! workers, and load generator are transport-agnostic.
//!
//! ## Multi-queue RX and steering
//!
//! Real NICs spread incoming traffic across hardware RX queues (RSS) so
//! multiple net workers can poll independently. [`loopback_mq`] creates a
//! link with `num_queues` client→server rings; [`ClientPort::send`]
//! steers each request to a queue per the configured [`Steering`] mode,
//! and [`ServerPort::split`] hands each dispatcher shard its own
//! single-queue port. The server→client direction stays a single shared
//! ring (every worker already owns a TX context; the client is one
//! drain loop).

use std::net::SocketAddr;

use crate::mpsc;
use crate::pool::PacketBuf;
use crate::udp;
use crate::wire;

/// Default depth of each hardware queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 1024;

/// Attempts of [`NetContext::send_with_retry`] spent pure-spinning
/// before the backoff ladder starts yielding.
const RETRY_SPIN_ATTEMPTS: usize = 64;

/// Attempts after which the ladder escalates from `yield_now` to a
/// short sleep — past this point the consumer is clearly not keeping
/// up, and burning a core polling the ring starves whatever shares it.
const RETRY_YIELD_ATTEMPTS: usize = 1024;

/// Sleep per attempt in the final backoff tier.
const RETRY_SLEEP: std::time::Duration = std::time::Duration::from_micros(10);

/// How [`ClientPort::send`] distributes requests over the RX queues —
/// the loopback stand-in for NIC receive-side scaling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Steering {
    /// RSS-style: hash the wire request id (offset 8) and take it modulo
    /// the queue count. Spreads load evenly but lets one request type
    /// land on every queue.
    #[default]
    Rss,
    /// Type-aware steering table: `table[ty]` names the queue for wire
    /// type `ty`. Types beyond the table (and packets whose header does
    /// not decode) fall back to the RSS hash. Keeping a type on one
    /// queue keeps the owning shard's DARC profile for it coherent.
    ByType(Vec<usize>),
}

/// Deterministic NIC-level fault injection for chaos tests.
///
/// The default plan injects nothing; [`loopback_with_faults`] wires a plan
/// into the client→server direction of a link. The UDP client applies
/// the same plan before the socket, so datagram loss is injected with
/// identical semantics on both transports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicFaultPlan {
    /// Silently drop every `drop_every`-th request packet (1-based count:
    /// with `drop_every = 7` the 7th, 14th, ... packets vanish in flight).
    /// `0` disables packet dropping.
    pub drop_every: u64,
}

impl NicFaultPlan {
    /// A plan that drops every `n`-th client→server packet.
    pub fn drop_every(n: u64) -> Self {
        NicFaultPlan { drop_every: n }
    }
}

/// The transport behind a [`ClientPort`].
enum ClientLink {
    /// In-process rings: one TX ring per RX queue plus the shared
    /// response ring.
    Loopback {
        txs: Vec<mpsc::Sender<PacketBuf>>,
        rx: mpsc::Receiver<PacketBuf>,
    },
    /// One real socket; steering picks the destination address.
    Udp(udp::UdpClient),
}

/// The client's end of the link.
///
/// Steering, fault injection, and per-queue accounting live here, above
/// the transport, so loopback and UDP behave identically to the load
/// generator.
pub struct ClientPort {
    link: ClientLink,
    steering: Steering,
    faults: NicFaultPlan,
    sent: u64,
    fault_drops: u64,
    per_queue_sent: Vec<u64>,
}

/// The transport behind a [`ServerPort`].
enum ServerInner {
    /// In-process rings: one RX ring per queue plus the shared TX ring.
    Loopback {
        rxs: Vec<mpsc::Receiver<PacketBuf>>,
        tx: mpsc::Sender<PacketBuf>,
    },
    /// One nonblocking socket per RX queue.
    Udp(Vec<udp::UdpServerQueue>),
}

/// The server's end of the link: one or more RX queues plus transmit
/// access. [`ServerPort::split`] turns a `k`-queue port into `k`
/// single-queue ports, one per dispatcher shard.
pub struct ServerPort {
    inner: ServerInner,
    /// Round-robin cursor so a multi-queue `recv` serves queues fairly.
    cursor: usize,
}

/// The transport behind a [`NetContext`].
enum CtxInner {
    Loopback(mpsc::Sender<PacketBuf>),
    Udp(udp::UdpContext),
}

/// A per-worker transmit context (paper: "this context gives them unique
/// access to receive and transmit queues in the NIC").
pub struct NetContext {
    inner: CtxInner,
}

/// Error returned when a hardware queue is full.
#[derive(Debug)]
pub struct QueueFull(pub PacketBuf);

/// Creates a single-queue loopback link with the given queue depth.
///
/// # Examples
///
/// ```
/// use persephone_net::nic;
/// use persephone_net::pool::PacketBuf;
///
/// let (mut client, mut server) = nic::loopback(16);
/// let mut pkt = PacketBuf::with_capacity(64);
/// pkt.fill(b"ping");
/// client.send(pkt).unwrap();
/// let got = server.recv().expect("packet arrived");
/// assert_eq!(got.as_slice(), b"ping");
/// ```
pub fn loopback(queue_depth: usize) -> (ClientPort, ServerPort) {
    loopback_mq(queue_depth, 1, Steering::Rss)
}

/// Creates a single-queue link whose client→server direction injects the
/// faults described by `faults` — the "lossy wire" for chaos tests.
pub fn loopback_with_faults(queue_depth: usize, faults: NicFaultPlan) -> (ClientPort, ServerPort) {
    loopback_mq_with_faults(queue_depth, 1, Steering::Rss, faults)
}

/// Creates a loopback link with `num_queues` client→server RX queues and
/// the given [`Steering`] mode — one RX queue per dispatcher shard.
///
/// # Panics
///
/// Panics if `num_queues == 0`.
pub fn loopback_mq(
    queue_depth: usize,
    num_queues: usize,
    steering: Steering,
) -> (ClientPort, ServerPort) {
    loopback_mq_with_faults(queue_depth, num_queues, steering, NicFaultPlan::default())
}

/// [`loopback_mq`] with a fault plan on the client→server direction.
///
/// # Panics
///
/// Panics if `num_queues == 0`.
pub fn loopback_mq_with_faults(
    queue_depth: usize,
    num_queues: usize,
    steering: Steering,
    faults: NicFaultPlan,
) -> (ClientPort, ServerPort) {
    assert!(num_queues > 0, "a NIC needs at least one RX queue");
    let mut txs = Vec::with_capacity(num_queues);
    let mut rxs = Vec::with_capacity(num_queues);
    for _ in 0..num_queues {
        let (tx, rx) = mpsc::channel(queue_depth);
        txs.push(tx);
        rxs.push(rx);
    }
    let (s2c_tx, s2c_rx) = mpsc::channel(queue_depth);
    (
        ClientPort {
            link: ClientLink::Loopback { txs, rx: s2c_rx },
            steering,
            faults,
            sent: 0,
            fault_drops: 0,
            per_queue_sent: vec![0; num_queues],
        },
        ServerPort {
            inner: ServerInner::Loopback { rxs, tx: s2c_tx },
            cursor: 0,
        },
    )
}

/// Splitmix64 finalizer — the loopback's RSS hash function.
fn rss_hash(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ClientPort {
    /// Wraps a UDP client in the shared steering/fault/accounting shell.
    pub(crate) fn from_udp(
        inner: udp::UdpClient,
        steering: Steering,
        faults: NicFaultPlan,
    ) -> Self {
        let num_queues = inner.num_queues();
        ClientPort {
            link: ClientLink::Udp(inner),
            steering,
            faults,
            sent: 0,
            fault_drops: 0,
            per_queue_sent: vec![0; num_queues],
        }
    }

    /// Number of client→server RX queues.
    pub fn num_queues(&self) -> usize {
        self.per_queue_sent.len()
    }

    /// The queue the current steering mode picks for `pkt`.
    fn steer(&self, pkt: &PacketBuf) -> usize {
        let k = self.per_queue_sent.len();
        if k == 1 {
            return 0;
        }
        let Some((ty, id)) = wire::peek_route(pkt.as_slice()) else {
            // Undecodable packets hash on nothing useful; queue 0's shard
            // answers them with BadRequest.
            return 0;
        };
        if let Steering::ByType(table) = &self.steering {
            if let Some(&q) = table.get(ty as usize) {
                return q % k;
            }
        }
        (rss_hash(id) % k as u64) as usize
    }

    /// Transmits a request packet toward the server, steering it to an RX
    /// queue per the configured [`Steering`] mode.
    ///
    /// An injected fault "loses" the packet in flight: the call reports
    /// success (the wire accepted it) but the server never sees it — and,
    /// as on real hardware, the buffer is gone from the pool until the
    /// client's timeout accounting gives up on the response.
    pub fn send(&mut self, pkt: PacketBuf) -> Result<(), QueueFull> {
        self.sent += 1;
        if self.faults.drop_every != 0 && self.sent.is_multiple_of(self.faults.drop_every) {
            self.fault_drops += 1;
            drop(pkt);
            return Ok(());
        }
        let q = self.steer(&pkt);
        let pushed = match &mut self.link {
            // audit:allow(A1): steer() reduces mod queue count, so q < txs.len()
            ClientLink::Loopback { txs, .. } => txs[q].push(pkt).map_err(|e| QueueFull(e.0)),
            ClientLink::Udp(cli) => cli.send(q, pkt),
        };
        match pushed {
            Ok(()) => {
                // audit:allow(A1): steer() reduces mod queue count, so q in bounds
                self.per_queue_sent[q] += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Packets silently dropped by the fault plan so far.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Packets delivered to each RX queue so far — the client-side view
    /// of how the steering mode spread the load.
    pub fn per_queue_sent(&self) -> &[u64] {
        &self.per_queue_sent
    }

    /// Receives the next response, if any.
    pub fn recv(&mut self) -> Option<PacketBuf> {
        match &mut self.link {
            ClientLink::Loopback { rx, .. } => rx.pop(),
            ClientLink::Udp(cli) => cli.recv(),
        }
    }

    /// Socket-level datagram counters, when this client runs over UDP
    /// (`None` on loopback).
    pub fn udp_stats(&self) -> Option<udp::UdpQueueStats> {
        match &self.link {
            ClientLink::Loopback { .. } => None,
            ClientLink::Udp(cli) => Some(cli.stats()),
        }
    }

    /// A cloneable sender for multi-threaded load generators, bound to
    /// RX queue 0.
    ///
    /// Raw senders bypass the fault plan and the steering table: faults
    /// are injected only on [`ClientPort::send`], where they can be
    /// accounted.
    ///
    /// # Panics
    ///
    /// Panics on a UDP-backed client: a real socket has no sharable
    /// ring; clone the socket-level client instead.
    pub fn sender(&self) -> mpsc::Sender<PacketBuf> {
        match &self.link {
            ClientLink::Loopback { txs, .. } => txs[0].clone(),
            ClientLink::Udp(_) => {
                panic!("ClientPort::sender is loopback-only; UDP clients steer on send")
            }
        }
    }
}

impl ServerPort {
    /// Wraps bound UDP sockets as a server port.
    pub(crate) fn from_udp(queues: Vec<udp::UdpServerQueue>) -> Self {
        ServerPort {
            inner: ServerInner::Udp(queues),
            cursor: 0,
        }
    }

    /// Number of RX queues this port polls.
    pub fn num_queues(&self) -> usize {
        match &self.inner {
            ServerInner::Loopback { rxs, .. } => rxs.len(),
            ServerInner::Udp(queues) => queues.len(),
        }
    }

    /// The bound socket address of every RX queue, when this port runs
    /// over UDP (`None` on loopback). Queue `i`'s shard listens on
    /// element `i` — this is what an external client must be given.
    pub fn local_addrs(&self) -> Option<Vec<SocketAddr>> {
        match &self.inner {
            ServerInner::Loopback { .. } => None,
            ServerInner::Udp(queues) => Some(queues.iter().map(|q| q.local_addr()).collect()),
        }
    }

    /// Socket-level datagram counters per RX queue, when this port runs
    /// over UDP (`None` on loopback).
    pub fn udp_stats(&self) -> Option<Vec<udp::UdpQueueStats>> {
        match &self.inner {
            ServerInner::Loopback { .. } => None,
            ServerInner::Udp(queues) => Some(queues.iter().map(|q| q.stats()).collect()),
        }
    }

    /// Splits a multi-queue port into one single-queue port per RX queue.
    /// Loopback shards share the TX ring; UDP shards each keep their own
    /// socket (responses leave from the socket the request arrived on).
    /// This is how a sharded server hands every dispatcher its own queue.
    pub fn split(self) -> Vec<ServerPort> {
        match self.inner {
            ServerInner::Loopback { rxs, tx } => rxs
                .into_iter()
                .map(|rx| ServerPort {
                    inner: ServerInner::Loopback {
                        rxs: vec![rx],
                        tx: tx.clone(),
                    },
                    cursor: 0,
                })
                .collect(),
            ServerInner::Udp(queues) => queues
                .into_iter()
                .map(|q| ServerPort {
                    inner: ServerInner::Udp(vec![q]),
                    cursor: 0,
                })
                .collect(),
        }
    }

    /// Polls one RX queue. Callers index with `cursor % num_queues()`,
    /// so `q` is always in bounds.
    fn poll_queue(&mut self, q: usize) -> Option<PacketBuf> {
        match &mut self.inner {
            // audit:allow(A1): q < num_queues(), the arm's Vec length,
            // by the callers' mod — both arms below
            ServerInner::Loopback { rxs, .. } => rxs[q].pop(),
            ServerInner::Udp(queues) => queues[q].recv_one(),
        }
    }

    /// Receives the next request, polling the RX queues round-robin
    /// (net worker only).
    pub fn recv(&mut self) -> Option<PacketBuf> {
        let k = self.num_queues();
        for i in 0..k {
            let q = (self.cursor + i) % k;
            if let Some(pkt) = self.poll_queue(q) {
                self.cursor = (q + 1) % k;
                return Some(pkt);
            }
        }
        None
    }

    /// Drains up to `max` requests into `out`, round-robin across the RX
    /// queues, and returns how many arrived. The dispatcher hot path:
    /// one call replaces `max` individual [`ServerPort::recv`]s.
    pub fn recv_batch(&mut self, out: &mut Vec<PacketBuf>, max: usize) -> usize {
        let k = self.num_queues();
        let mut got = 0;
        let mut dry = 0;
        while got < max && dry < k {
            let q = self.cursor;
            match self.poll_queue(q) {
                Some(pkt) => {
                    out.push(pkt);
                    got += 1;
                    dry = 0;
                }
                None => dry += 1,
            }
            self.cursor = (self.cursor + 1) % k;
        }
        got
    }

    /// Creates a transmit context for an application worker.
    ///
    /// On UDP the context clones queue 0's socket (a split single-queue
    /// shard port has exactly one), so responses leave from the address
    /// the shard's requests arrive on.
    ///
    /// # Panics
    ///
    /// Panics if cloning the socket handle fails (UDP only) — a
    /// fd-exhaustion failure at spawn time, not a hot-path condition.
    pub fn context(&self) -> NetContext {
        match &self.inner {
            ServerInner::Loopback { tx, .. } => NetContext {
                inner: CtxInner::Loopback(tx.clone()),
            },
            ServerInner::Udp(queues) => match queues[0].context() {
                Ok(ctx) => NetContext {
                    inner: CtxInner::Udp(ctx),
                },
                Err(e) => panic!("cloning the shard socket for a worker context failed: {e}"),
            },
        }
    }
}

impl NetContext {
    /// Transmits a response packet toward the client.
    pub fn send(&self, pkt: PacketBuf) -> Result<(), QueueFull> {
        match &self.inner {
            CtxInner::Loopback(tx) => tx.push(pkt).map_err(|e| QueueFull(e.0)),
            CtxInner::Udp(ctx) => ctx.send(pkt),
        }
    }

    /// Transmits with a bounded backoff retry, returning the packet only
    /// after `max_attempts` pushes all found the queue full.
    ///
    /// This is the one send-retry loop shared by the dispatcher's control
    /// responses and the workers' data responses: short bursts of
    /// backpressure (a client briefly not draining) are absorbed by a
    /// spin-then-yield ladder, while sustained backpressure — a slow or
    /// dead peer, which a real socket makes routine — escalates to short
    /// sleeps so the retry loop cannot peg a core and starve the worker
    /// sharing it. Callers should count an `Err` as a give-up in
    /// telemetry.
    pub fn send_with_retry(&self, pkt: PacketBuf, max_attempts: usize) -> Result<(), QueueFull> {
        let mut pkt = pkt;
        for attempt in 0..max_attempts.max(1) {
            match self.send(pkt) {
                Ok(()) => return Ok(()),
                Err(QueueFull(p)) => {
                    pkt = p;
                    // Spin briefly for the common transient case, yield
                    // so a same-core client can drain the ring, then back
                    // off to sleeps once the queue is clearly stuck.
                    if attempt < RETRY_SPIN_ATTEMPTS {
                        core::hint::spin_loop();
                    } else if attempt < RETRY_YIELD_ATTEMPTS {
                        std::thread::yield_now();
                    } else {
                        // audit:allow(A3): opt-in backoff ladder — sleeps only
                        // after the spin and yield tiers found the queue stuck
                        std::thread::sleep(RETRY_SLEEP);
                    }
                }
            }
        }
        Err(QueueFull(pkt))
    }

    /// Transmits a batch of packets, each with the bounded retry of
    /// [`NetContext::send_with_retry`], and returns how many were
    /// delivered. Packets that exhaust their retries are dropped (UDP
    /// semantics); callers should count `batch_len - delivered` as
    /// give-ups in telemetry.
    pub fn send_batch(
        &self,
        pkts: impl IntoIterator<Item = PacketBuf>,
        max_attempts_each: usize,
    ) -> usize {
        let mut delivered = 0;
        for pkt in pkts {
            if self.send_with_retry(pkt, max_attempts_each).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(bytes: &[u8]) -> PacketBuf {
        let mut p = PacketBuf::with_capacity(64);
        assert!(p.fill(bytes));
        p
    }

    fn request(ty: u32, id: u64) -> PacketBuf {
        let mut p = PacketBuf::with_capacity(64);
        let len = wire::encode_request(p.raw_mut(), ty, id, b"").unwrap();
        p.set_len(len);
        p
    }

    #[test]
    fn request_and_response_flow() {
        let (mut client, mut server) = loopback(8);
        client.send(pkt(b"req")).unwrap();
        let got = server.recv().unwrap();
        assert_eq!(got.as_slice(), b"req");
        let ctx = server.context();
        ctx.send(pkt(b"resp")).unwrap();
        assert_eq!(client.recv().unwrap().as_slice(), b"resp");
        assert!(client.recv().is_none());
        assert!(server.recv().is_none());
    }

    #[test]
    fn queue_depth_backpressures() {
        let (mut client, _server) = loopback(2);
        client.send(pkt(b"1")).unwrap();
        client.send(pkt(b"2")).unwrap();
        let err = client.send(pkt(b"3")).unwrap_err();
        assert_eq!(err.0.as_slice(), b"3", "rejected packet is returned");
    }

    #[test]
    fn loopback_has_no_udp_facilities() {
        let (client, server) = loopback(8);
        assert!(client.udp_stats().is_none());
        assert!(server.local_addrs().is_none());
        assert!(server.udp_stats().is_none());
    }

    #[test]
    fn multiple_worker_contexts_share_tx() {
        let (mut client, server) = loopback(16);
        let a = server.context();
        let b = server.context();
        a.send(pkt(b"a")).unwrap();
        b.send(pkt(b"b")).unwrap();
        let mut seen = Vec::new();
        while let Some(p) = client.recv() {
            seen.push(p.as_slice().to_vec());
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn fault_plan_drops_every_nth_packet() {
        let (mut client, mut server) = loopback_with_faults(32, NicFaultPlan::drop_every(3));
        for i in 0..9u32 {
            client.send(pkt(&i.to_le_bytes())).unwrap();
        }
        assert_eq!(client.fault_drops(), 3, "packets 3, 6, 9 vanish");
        let mut arrived = 0;
        while server.recv().is_some() {
            arrived += 1;
        }
        assert_eq!(arrived, 6);
        // A zero plan (the default) never drops.
        let (mut c2, mut s2) = loopback(8);
        c2.send(pkt(b"x")).unwrap();
        assert_eq!(c2.fault_drops(), 0);
        assert!(s2.recv().is_some());
    }

    #[test]
    fn send_with_retry_succeeds_once_drained_and_bounds_give_up() {
        let (mut client, server) = loopback(2);
        let ctx = server.context();
        ctx.send(pkt(b"full1")).unwrap();
        ctx.send(pkt(b"full2")).unwrap();
        // Queue full and nobody draining: a bounded give-up returns the
        // packet instead of spinning forever.
        let err = ctx.send_with_retry(pkt(b"stuck"), 100).unwrap_err();
        assert_eq!(err.0.as_slice(), b"stuck");
        // A concurrent drain lets a longer retry get through.
        let drainer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 3 {
                if let Some(p) = client.recv() {
                    got.push(p.as_slice().to_vec());
                } else {
                    std::thread::yield_now();
                }
            }
            got
        });
        ctx.send_with_retry(pkt(b"later"), 1_000_000).unwrap();
        let got = drainer.join().unwrap();
        assert_eq!(got[0], b"full1");
        assert_eq!(got[2], b"later");
    }

    #[test]
    fn send_with_retry_backs_off_instead_of_busy_spinning() {
        // Regression (wire-path hardening): a stuck queue used to burn
        // pure spin/yield for the whole retry budget, pegging the core.
        // The ladder's sleep tier makes a deep retry measurably idle:
        // 3_000 attempts spend ≥ ~1_900 of them in 10µs sleeps (≥ 19ms
        // even with perfect timers), where the pre-fix loop finished in
        // well under a millisecond of yields.
        let (_client, server) = loopback(2);
        let ctx = server.context();
        ctx.send(pkt(b"plug1")).unwrap();
        ctx.send(pkt(b"plug2")).unwrap();
        let start = std::time::Instant::now();
        let err = ctx.send_with_retry(pkt(b"stuck"), 3_000).unwrap_err();
        let elapsed = start.elapsed();
        assert_eq!(
            err.0.as_slice(),
            b"stuck",
            "give-up still returns the packet"
        );
        assert!(
            elapsed >= std::time::Duration::from_millis(15),
            "deep retries must back off, not busy-spin (took {elapsed:?})"
        );
    }

    #[test]
    fn cross_thread_traffic() {
        let (mut client, mut server) = loopback(64);
        let sender = client.sender();
        let producer = std::thread::spawn(move || {
            for i in 0..1000u32 {
                let mut p = pkt(&i.to_le_bytes());
                loop {
                    match sender.push(p) {
                        Ok(()) => break,
                        Err(e) => {
                            p = e.0;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = 0;
        while got < 1000 {
            if server.recv().is_some() {
                got += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert!(client.recv().is_none());
    }

    #[test]
    fn rss_steering_spreads_across_queues() {
        let (mut client, server) = loopback_mq(256, 4, Steering::Rss);
        assert_eq!(client.num_queues(), 4);
        assert_eq!(server.num_queues(), 4);
        for id in 0..200u64 {
            client.send(request(0, id)).unwrap();
        }
        let per_queue = client.per_queue_sent().to_vec();
        assert_eq!(per_queue.iter().sum::<u64>(), 200);
        assert!(
            per_queue.iter().all(|&n| n > 20),
            "RSS must touch every queue: {per_queue:?}"
        );
        // Everything sent is receivable across the split ports.
        let mut total = 0;
        for mut shard in server.split() {
            let mut batch = Vec::new();
            total += shard.recv_batch(&mut batch, usize::MAX);
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn rss_steering_is_deterministic_per_id() {
        let (mut a, server_a) = loopback_mq(64, 4, Steering::Rss);
        let (mut b, server_b) = loopback_mq(64, 4, Steering::Rss);
        for id in [0u64, 1, 7, 42, u64::MAX] {
            a.send(request(0, id)).unwrap();
            b.send(request(9, id)).unwrap(); // type must not matter to RSS
        }
        assert_eq!(a.per_queue_sent(), b.per_queue_sent());
        drop(server_a);
        drop(server_b);
    }

    #[test]
    fn by_type_steering_pins_types_and_falls_back_to_rss() {
        let (mut client, server) = loopback_mq(64, 2, Steering::ByType(vec![1, 0]));
        for id in 0..10u64 {
            client.send(request(0, id)).unwrap(); // table says queue 1
        }
        for id in 0..5u64 {
            client.send(request(1, id)).unwrap(); // table says queue 0
        }
        let mut shards = server.split();
        let mut q0 = Vec::new();
        let mut q1 = Vec::new();
        shards[0].recv_batch(&mut q0, usize::MAX);
        shards[1].recv_batch(&mut q1, usize::MAX);
        assert_eq!(q0.len(), 5);
        assert_eq!(q1.len(), 10);
        assert!(q0
            .iter()
            .all(|p| wire::decode(p.as_slice()).unwrap().0.ty == 1));
        assert!(q1
            .iter()
            .all(|p| wire::decode(p.as_slice()).unwrap().0.ty == 0));
        // A type past the table end still goes somewhere (RSS fallback).
        client.send(request(99, 3)).unwrap();
        assert_eq!(client.per_queue_sent().iter().sum::<u64>(), 16);
    }

    #[test]
    fn undecodable_packets_steer_to_queue_zero() {
        let (mut client, server) = loopback_mq(64, 3, Steering::Rss);
        client.send(pkt(b"garbage")).unwrap();
        let mut shards = server.split();
        assert!(shards[0].recv().is_some(), "malformed lands on queue 0");
        assert!(shards[1].recv().is_none());
        assert!(shards[2].recv().is_none());
    }

    #[test]
    fn recv_batch_respects_max_and_round_robins() {
        let (mut client, mut server) = loopback_mq(64, 2, Steering::Rss);
        let mut sent_ids: Vec<u64> = (0..20).collect();
        for &id in &sent_ids {
            client.send(request(0, id)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(server.recv_batch(&mut out, 8), 8);
        assert_eq!(out.len(), 8);
        assert_eq!(server.recv_batch(&mut out, usize::MAX), 12);
        let mut got_ids: Vec<u64> = out
            .iter()
            .map(|p| wire::decode(p.as_slice()).unwrap().0.id)
            .collect();
        got_ids.sort_unstable();
        sent_ids.sort_unstable();
        assert_eq!(got_ids, sent_ids, "no packet lost or duplicated");
        assert_eq!(server.recv_batch(&mut out, 8), 0);
    }

    #[test]
    fn send_batch_counts_deliveries() {
        let (mut client, server) = loopback(4);
        let ctx = server.context();
        let batch: Vec<PacketBuf> = (0..6).map(|i| pkt(&[i as u8])).collect();
        // Depth 4: the first four fit, the rest exhaust their retries.
        let delivered = ctx.send_batch(batch, 10);
        assert_eq!(delivered, 4);
        let mut got = 0;
        while client.recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 4);
    }
}
