//! Real-network UDP backend for the NIC abstraction.
//!
//! Where [`crate::nic::loopback_mq`] stands in for the paper's DPDK
//! deployment with in-process rings, this module binds actual
//! `std::net::UdpSocket`s — one nonblocking socket per dispatcher shard —
//! and adapts them to the exact same [`crate::nic::ServerPort`] /
//! [`crate::nic::ClientPort`] / [`crate::nic::NetContext`] surface, so a
//! server flips from loopback to a real port with zero dispatcher
//! changes.
//!
//! ## Socket-per-shard model
//!
//! `std` exposes no `SO_REUSEPORT` (and this workspace is offline: no
//! `libc`/`socket2`), so kernel-side RSS fan-out over one port is not
//! available. Instead every RX queue is its own socket on its own port:
//! [`server`] binds `num_queues` sockets on consecutive ports (or all
//! ephemeral when asked for port 0), and the *client* performs the
//! steering — the same [`crate::nic::Steering`] policy that picks a
//! loopback ring now picks a destination port. Responses leave from the
//! owning shard's socket, so the reply's source address matches the
//! address the request was sent to.
//!
//! ## Buffer management
//!
//! RX buffers are pooled per queue: a recycle ring brings buffers back
//! from worker [`crate::nic::NetContext`]s after `send_to`, and a local
//! stash refills it without cross-thread traffic. When both run dry the
//! queue allocates a fresh buffer — total outstanding memory stays
//! bounded by the engine's typed-queue capacities, and a buffer dropped
//! on an error path is simply freed, never leaked. Unlike the loopback
//! transport, buffers never travel between client and server: the wire
//! carries bytes, both ends recycle locally.
//!
//! ## What loopback guarantees that UDP does not
//!
//! The in-process rings are lossless, ordered per queue, and conserve
//! buffers end to end. A real socket can drop datagrams in either
//! direction (kernel buffer overrun), reorder them, and silently
//! truncate a datagram longer than the receive buffer — which is exactly
//! why the wire path validates lengths instead of trusting them
//! (`wire::decode` returns `WireError::Truncated`, the dispatcher counts
//! `rx_malformed`). Client-side accounting absorbs loss as
//! `timed_out`, the same write-off as a loopback fault-plan drop.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::mpsc;
use crate::nic::{ClientPort, NicFaultPlan, QueueFull, ServerPort, Steering};
use crate::pool::PacketBuf;

/// Sizing knobs for a UDP endpoint (one per server queue, one per
/// client).
#[derive(Clone, Copy, Debug)]
pub struct UdpConfig {
    /// Capacity of each receive buffer, bytes. Datagrams longer than
    /// this are silently truncated by the kernel and then rejected by
    /// the wire decoder.
    pub buf_size: usize,
    /// Buffers kept cached per endpoint (recycle ring + stash). More
    /// are allocated on demand; this only bounds the cache.
    pub pool_buffers: usize,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            buf_size: 2048,
            pool_buffers: 1024,
        }
    }
}

/// Shared per-socket counters — the UDP analogue of the loopback's
/// per-queue accounting, cheap enough to bump on every datagram (the
/// syscall dominates by orders of magnitude).
///
/// All counters are independent monotone event counts: no cross-thread
/// control flow reads them, so relaxed ordering is sufficient (same
/// argument as `persephone-telemetry`'s counter slots).
#[derive(Debug, Default)]
pub struct UdpCounters {
    rx_datagrams: AtomicU64,
    tx_datagrams: AtomicU64,
    tx_would_block: AtomicU64,
    tx_errors: AtomicU64,
    rx_allocs: AtomicU64,
}

/// A plain snapshot of one socket's [`UdpCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UdpQueueStats {
    /// Datagrams received on this socket.
    pub rx_datagrams: u64,
    /// Datagrams transmitted from this socket.
    pub tx_datagrams: u64,
    /// Sends that found the kernel TX buffer full (`WouldBlock`) — each
    /// surfaces to the caller as a retryable `QueueFull`.
    pub tx_would_block: u64,
    /// Sends that failed with a non-retryable error; UDP semantics treat
    /// the datagram as sent-and-lost.
    pub tx_errors: u64,
    /// Receive buffers allocated because the recycle path ran dry.
    pub rx_allocs: u64,
}

impl UdpCounters {
    fn snapshot(&self) -> UdpQueueStats {
        UdpQueueStats {
            // audit:ordering: monotonic statistics reads — approximate
            // under load by design, exact at quiescence
            rx_datagrams: self.rx_datagrams.load(Ordering::Relaxed),
            tx_datagrams: self.tx_datagrams.load(Ordering::Relaxed),
            // audit:ordering: same statistics-read rationale as above
            tx_would_block: self.tx_would_block.load(Ordering::Relaxed),
            tx_errors: self.tx_errors.load(Ordering::Relaxed),
            rx_allocs: self.rx_allocs.load(Ordering::Relaxed),
        }
    }
}

/// One server RX queue: a nonblocking socket plus its buffer recycling.
pub(crate) struct UdpServerQueue {
    sock: UdpSocket,
    local: SocketAddr,
    /// Buffers returned by worker contexts after transmission.
    recycle_rx: mpsc::Receiver<PacketBuf>,
    recycle_tx: mpsc::Sender<PacketBuf>,
    /// Thread-local refill cache in front of the recycle ring.
    stash: Vec<PacketBuf>,
    stash_max: usize,
    buf_size: usize,
    counters: Arc<UdpCounters>,
}

impl UdpServerQueue {
    fn bind(addr: SocketAddr, cfg: UdpConfig) -> io::Result<UdpServerQueue> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        let local = sock.local_addr()?;
        let ring_cap = cfg.pool_buffers.next_power_of_two() * 2;
        let (recycle_tx, recycle_rx) = mpsc::channel(ring_cap);
        let stash = (0..cfg.pool_buffers)
            .map(|_| PacketBuf::with_capacity(cfg.buf_size))
            .collect();
        Ok(UdpServerQueue {
            sock,
            local,
            recycle_rx,
            recycle_tx,
            stash,
            stash_max: cfg.pool_buffers,
            buf_size: cfg.buf_size,
            counters: Arc::new(UdpCounters::default()),
        })
    }

    /// The socket's bound address.
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.local
    }

    pub(crate) fn stats(&self) -> UdpQueueStats {
        self.counters.snapshot()
    }

    fn take_buffer(&mut self) -> PacketBuf {
        if let Some(b) = self.stash.pop() {
            return b;
        }
        if let Some(mut b) = self.recycle_rx.pop() {
            b.clear();
            return b;
        }
        // audit:ordering: monotonic statistics counter — nothing is published through it
        self.counters.rx_allocs.fetch_add(1, Ordering::Relaxed);
        PacketBuf::with_capacity(self.buf_size)
    }

    fn put_buffer(&mut self, buf: PacketBuf) {
        if self.stash.len() < self.stash_max {
            self.stash.push(buf);
        }
        // Over the cap the buffer is simply freed; the cache is a
        // fast path, not a conservation invariant.
    }

    /// Receives one datagram, or `None` when the socket is dry.
    pub(crate) fn recv_one(&mut self) -> Option<PacketBuf> {
        let mut buf = self.take_buffer();
        match self.sock.recv_from(buf.raw_mut()) {
            Ok((n, peer)) => {
                buf.set_len(n);
                buf.set_peer(Some(peer));
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.rx_datagrams.fetch_add(1, Ordering::Relaxed);
                Some(buf)
            }
            Err(_) => {
                // WouldBlock (dry) and transient errors (e.g. a
                // connection-refused bounce surfaced by the kernel) are
                // both "nothing received"; keep the buffer.
                self.put_buffer(buf);
                None
            }
        }
    }

    /// A transmit context bound to this queue's socket.
    pub(crate) fn context(&self) -> io::Result<UdpContext> {
        Ok(UdpContext {
            sock: self.sock.try_clone()?,
            recycle: self.recycle_tx.clone(),
            counters: self.counters.clone(),
        })
    }
}

/// The UDP flavour of a worker's transmit context: `send_to` on the
/// owning shard's socket, then recycle the buffer back to that shard's
/// RX queue.
pub(crate) struct UdpContext {
    sock: UdpSocket,
    recycle: mpsc::Sender<PacketBuf>,
    counters: Arc<UdpCounters>,
}

impl UdpContext {
    fn recycle(&self, buf: PacketBuf) {
        // A full recycle ring means the queue already has more cached
        // buffers than it will ever hand out; freeing is correct.
        let _ = self.recycle.push(buf);
    }

    /// Transmits `pkt` to its stamped peer. `WouldBlock` surfaces as a
    /// retryable [`QueueFull`]; any other send error is counted and the
    /// datagram treated as sent-and-lost (UDP semantics), so a dead
    /// route can never wedge the worker in its retry loop.
    pub(crate) fn send(&self, pkt: PacketBuf) -> Result<(), QueueFull> {
        let Some(peer) = pkt.peer() else {
            // Only packets that arrived through `recv_from` reach a
            // response path; a peerless packet has nowhere to go.
            // audit:ordering: monotonic statistics counter — nothing is published through it
            self.counters.tx_errors.fetch_add(1, Ordering::Relaxed);
            self.recycle(pkt);
            return Ok(());
        };
        match self.sock.send_to(pkt.as_slice(), peer) {
            Ok(_) => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_datagrams.fetch_add(1, Ordering::Relaxed);
                self.recycle(pkt);
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_would_block.fetch_add(1, Ordering::Relaxed);
                Err(QueueFull(pkt))
            }
            Err(_) => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_errors.fetch_add(1, Ordering::Relaxed);
                self.recycle(pkt);
                Ok(())
            }
        }
    }
}

/// The UDP flavour of the client side: one socket, steering done by
/// destination address. Owned by [`ClientPort`], which layers the
/// shared fault-injection and per-queue accounting on top.
pub(crate) struct UdpClient {
    sock: UdpSocket,
    addrs: Vec<SocketAddr>,
    /// Buffers parked after `send_to`, reused as receive buffers.
    stash: Vec<PacketBuf>,
    stash_max: usize,
    buf_size: usize,
    counters: Arc<UdpCounters>,
}

impl UdpClient {
    pub(crate) fn num_queues(&self) -> usize {
        self.addrs.len()
    }

    pub(crate) fn stats(&self) -> UdpQueueStats {
        self.counters.snapshot()
    }

    /// Sends `pkt` to server queue `q`. The buffer is parked locally on
    /// success — unlike loopback, it never travels to the server.
    pub(crate) fn send(&mut self, q: usize, pkt: PacketBuf) -> Result<(), QueueFull> {
        // audit:allow(A1): callers steer with q % num_queues(), and
        // num_queues() == addrs.len()
        match self.sock.send_to(pkt.as_slice(), self.addrs[q]) {
            Ok(_) => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_datagrams.fetch_add(1, Ordering::Relaxed);
                if self.stash.len() < self.stash_max {
                    self.stash.push(pkt);
                }
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_would_block.fetch_add(1, Ordering::Relaxed);
                Err(QueueFull(pkt))
            }
            Err(_) => {
                // Sent-and-lost: the open-loop client writes the request
                // off as timed out, exactly like a dropped datagram.
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.tx_errors.fetch_add(1, Ordering::Relaxed);
                if self.stash.len() < self.stash_max {
                    self.stash.push(pkt);
                }
                Ok(())
            }
        }
    }

    /// Receives one response datagram, if any is readable.
    pub(crate) fn recv(&mut self) -> Option<PacketBuf> {
        let mut buf = match self.stash.pop() {
            Some(b) => {
                let mut b = b;
                b.clear();
                b
            }
            None => {
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.rx_allocs.fetch_add(1, Ordering::Relaxed);
                PacketBuf::with_capacity(self.buf_size)
            }
        };
        match self.sock.recv_from(buf.raw_mut()) {
            Ok((n, peer)) => {
                buf.set_len(n);
                buf.set_peer(Some(peer));
                // audit:ordering: monotonic statistics counter — nothing is published through it
                self.counters.rx_datagrams.fetch_add(1, Ordering::Relaxed);
                Some(buf)
            }
            Err(_) => {
                if self.stash.len() < self.stash_max {
                    self.stash.push(buf);
                }
                None
            }
        }
    }
}

/// Binds one nonblocking UDP socket per RX queue and returns a
/// [`ServerPort`] indistinguishable, to the dispatcher, from a loopback
/// one.
///
/// With `addr.port() == 0` every queue binds an ephemeral port (query
/// them via [`ServerPort::local_addrs`]); otherwise queue `i` binds
/// `addr.port() + i` — the explicit per-shard-port layout clients must
/// mirror in [`client`].
///
/// # Errors
///
/// Any bind or socket-option failure is returned as-is.
pub fn server(addr: SocketAddr, num_queues: usize, cfg: UdpConfig) -> io::Result<ServerPort> {
    assert!(num_queues > 0, "a NIC needs at least one RX queue");
    let mut queues = Vec::with_capacity(num_queues);
    for i in 0..num_queues {
        let mut qaddr = addr;
        if addr.port() != 0 {
            qaddr.set_port(addr.port() + i as u16);
        }
        queues.push(UdpServerQueue::bind(qaddr, cfg)?);
    }
    Ok(ServerPort::from_udp(queues))
}

/// Connects a client to the per-queue server addresses, steering and
/// fault injection included — the real-socket twin of
/// [`crate::nic::loopback_mq_with_faults`]'s client half.
///
/// # Errors
///
/// Any bind or socket-option failure is returned as-is.
///
/// # Panics
///
/// Panics if `server_addrs` is empty.
pub fn client(
    server_addrs: &[SocketAddr],
    steering: Steering,
    faults: NicFaultPlan,
    cfg: UdpConfig,
) -> io::Result<ClientPort> {
    assert!(
        !server_addrs.is_empty(),
        "a client needs at least one server address"
    );
    let bind: SocketAddr = if server_addrs[0].is_ipv4() {
        SocketAddr::from(([0, 0, 0, 0], 0))
    } else {
        SocketAddr::from((std::net::Ipv6Addr::UNSPECIFIED, 0))
    };
    let sock = UdpSocket::bind(bind)?;
    sock.set_nonblocking(true)?;
    let inner = UdpClient {
        sock,
        addrs: server_addrs.to_vec(),
        stash: Vec::new(),
        stash_max: cfg.pool_buffers,
        buf_size: cfg.buf_size,
        counters: Arc::new(UdpCounters::default()),
    };
    Ok(ClientPort::from_udp(inner, steering, faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;

    fn request(ty: u32, id: u64, payload: &[u8]) -> PacketBuf {
        let mut p = PacketBuf::with_capacity(256);
        let len = wire::encode_request(p.raw_mut(), ty, id, payload).unwrap();
        p.set_len(len);
        p
    }

    fn local_server(queues: usize) -> (ServerPort, Vec<SocketAddr>) {
        let port =
            server("127.0.0.1:0".parse().unwrap(), queues, UdpConfig::default()).expect("bind");
        let addrs = port.local_addrs().expect("udp port has addrs");
        (port, addrs)
    }

    /// Polls `f` until it yields, failing after ~2s — real sockets are
    /// asynchronous even on loopback.
    fn poll_until<T>(mut f: impl FnMut() -> Option<T>) -> T {
        for _ in 0..20_000 {
            if let Some(v) = f() {
                return v;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        panic!("polled out");
    }

    #[test]
    fn udp_request_and_response_flow() {
        let (mut srv, addrs) = local_server(1);
        let mut cli = client(
            &addrs,
            Steering::Rss,
            NicFaultPlan::default(),
            UdpConfig::default(),
        )
        .unwrap();
        cli.send(request(1, 42, b"ping")).unwrap();
        let got = poll_until(|| srv.recv());
        let (hdr, payload) = wire::decode(got.as_slice()).unwrap();
        assert_eq!((hdr.ty, hdr.id, payload), (1, 42, &b"ping"[..]));
        assert!(got.peer().is_some(), "ingress datagram carries its peer");

        // Zero-copy response reuse: rewrite in place, send via context.
        let ctx = srv.context();
        let mut resp = got;
        wire::request_to_response_in_place(resp.raw_mut(), wire::Status::Ok).unwrap();
        ctx.send(resp).unwrap();
        let back = poll_until(|| cli.recv());
        let (hdr, _) = wire::decode(back.as_slice()).unwrap();
        assert_eq!(hdr.kind, wire::Kind::Response);
        assert_eq!(hdr.id, 42);
    }

    #[test]
    fn udp_steering_spreads_and_split_isolates() {
        let (srv, addrs) = local_server(2);
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0].port(), addrs[1].port());
        let mut cli = client(
            &addrs,
            Steering::ByType(vec![0, 1]),
            NicFaultPlan::default(),
            UdpConfig::default(),
        )
        .unwrap();
        for id in 0..4u64 {
            cli.send(request(0, id, b"")).unwrap();
            cli.send(request(1, id, b"")).unwrap();
        }
        assert_eq!(cli.per_queue_sent(), &[4, 4]);
        let mut shards = srv.split();
        for (q, shard) in shards.iter_mut().enumerate() {
            for _ in 0..4 {
                let pkt = poll_until(|| shard.recv());
                let (hdr, _) = wire::decode(pkt.as_slice()).unwrap();
                assert_eq!(hdr.ty as usize, q, "type pinned to its queue");
            }
        }
    }

    #[test]
    fn udp_fault_plan_drops_before_the_wire() {
        let (mut srv, addrs) = local_server(1);
        let mut cli = client(
            &addrs,
            Steering::Rss,
            NicFaultPlan::drop_every(3),
            UdpConfig::default(),
        )
        .unwrap();
        for id in 0..9u64 {
            cli.send(request(0, id, b"")).unwrap();
        }
        assert_eq!(cli.fault_drops(), 3);
        let mut arrived = 0;
        for _ in 0..6 {
            let _ = poll_until(|| srv.recv());
            arrived += 1;
        }
        assert_eq!(arrived, 6);
        // Nothing else in flight.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(srv.recv().is_none());
    }

    #[test]
    fn consecutive_port_layout_for_explicit_base() {
        // Find a pair of free consecutive ports by binding ephemerally
        // first, then re-binding the explicit layout.
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let base = probe.local_addr().unwrap().port();
        drop(probe);
        let Ok(port) = server(
            format!("127.0.0.1:{base}").parse().unwrap(),
            2,
            UdpConfig::default(),
        ) else {
            // The neighbouring port was taken; nothing to assert.
            return;
        };
        let addrs = port.local_addrs().unwrap();
        assert_eq!(addrs[0].port(), base);
        assert_eq!(addrs[1].port(), base + 1);
    }

    #[test]
    fn stats_count_datagrams() {
        let (mut srv, addrs) = local_server(1);
        let mut cli = client(
            &addrs,
            Steering::Rss,
            NicFaultPlan::default(),
            UdpConfig::default(),
        )
        .unwrap();
        cli.send(request(0, 7, b"x")).unwrap();
        let _ = poll_until(|| srv.recv());
        let srv_stats = srv.udp_stats().expect("udp port has stats");
        assert_eq!(srv_stats[0].rx_datagrams, 1);
        let cli_stats = cli.udp_stats().expect("udp client has stats");
        assert_eq!(cli_stats.tx_datagrams, 1);
    }
}
