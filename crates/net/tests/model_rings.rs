//! Model-checked tests for the real SPSC/MPSC rings.
//!
//! These run the exact shipped ring code — not a test double — inside
//! `persephone_check`'s bounded interleaving explorer, because the rings
//! are built on the `crate::sync` facade. Every atomic operation and
//! every `UnsafeCell` access is a scheduling point; the explorer
//! enumerates thread schedules (and stale-but-coherent values for
//! relaxed loads) within the configured bounds, so a misplaced
//! `Ordering` in push/pop shows up as a reported data race or a failed
//! assertion here rather than as a one-in-a-million corruption in a
//! stress test.
//!
//! Scenarios stay tiny (capacity 2, two or three values): the point is
//! exhaustiveness within bounds, not volume. `Config::auto()` deepens
//! the preemption bound under `--features heavy-testing`.

#![cfg(feature = "model-check")]

use std::collections::VecDeque;

use persephone_check::{model, model_with, thread, Config};
use persephone_net::{mpsc, spsc};

/// Single-value-at-a-time ownership transfer: the producer hands two
/// boxed values across the ring; the consumer must observe each value
/// fully initialized, in order, exactly once. A weakened tail publish
/// in `Producer::push` is reported as a data race on the slot.
#[test]
fn spsc_ownership_transfer_single() {
    model(|| {
        let (mut tx, mut rx) = spsc::channel::<Box<u64>>(2);
        let producer = thread::spawn(move || {
            for v in 0..2u64 {
                let mut boxed = Box::new(v);
                loop {
                    match tx.push(boxed) {
                        Ok(()) => break,
                        Err(spsc::Full(back)) => {
                            boxed = back;
                            thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 2 {
            match rx.pop() {
                Some(v) => got.push(*v),
                None => thread::yield_now(),
            }
        }
        assert_eq!(got, vec![0, 1], "values crossed the ring in order");
        assert_eq!(rx.pop(), None, "nothing published beyond the two pushes");
        producer.join();
    });
}

/// Batched transfer: `push_batch` claims free slots with one Acquire
/// head refresh and publishes with one Release tail store; `pop_batch`
/// mirrors it. The single publish covering multiple slots is exactly
/// where a weakened ordering would tear, so drive it under the model.
#[test]
fn spsc_ownership_transfer_batch() {
    model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(2);
        let producer = thread::spawn(move || {
            let mut src: VecDeque<u64> = (0..3).collect();
            while !src.is_empty() {
                if tx.push_batch(&mut src) == 0 {
                    thread::yield_now();
                }
            }
        });
        let mut got = Vec::new();
        while got.len() < 3 {
            if rx.pop_batch(&mut got, 2) == 0 {
                thread::yield_now();
            }
        }
        assert_eq!(got, vec![0, 1, 2], "batch transfer preserved order");
        producer.join();
    });
}

/// Full/empty boundary race: with capacity 2, the producer spins on
/// `Full` while the consumer spins on empty, so head/tail cache
/// refreshes interleave with publishes at every offset. `len`'s
/// Acquire-refreshed `tail_cache` feeds the subsequent `pop`, which is
/// the exact feedback path its ordering comment argues about.
#[test]
fn spsc_full_empty_boundary() {
    model(|| {
        let (mut tx, mut rx) = spsc::channel::<u64>(2);
        let producer = thread::spawn(move || {
            let mut rejected = 0u32;
            for v in 0..3u64 {
                let mut val = v;
                loop {
                    match tx.push(val) {
                        Ok(()) => break,
                        Err(spsc::Full(back)) => {
                            val = back;
                            rejected += 1;
                            thread::yield_now();
                        }
                    }
                }
            }
            rejected
        });
        let mut got = Vec::new();
        while got.len() < 3 {
            let advertised = rx.len();
            if advertised > 0 {
                // Anything `len` advertises must be poppable and intact:
                // the Acquire in `len` ordered the slot contents before
                // the count.
                let v = rx.pop().expect("len() advertised a value");
                got.push(v);
            } else {
                thread::yield_now();
            }
        }
        assert!(rx.is_empty());
        assert_eq!(got, vec![0, 1, 2]);
        producer.join();
    });
}

/// Two producers race CAS claims on the Vyukov ring while the consumer
/// drains: every pushed value arrives exactly once and per-producer
/// order holds. A weakened per-slot `seq` publish would let the
/// consumer read an unwritten slot — a data race on the slot cell.
#[test]
fn mpsc_two_producer_claims() {
    model(|| {
        let (tx, mut rx) = mpsc::channel::<u64>(2);
        let mut producers = Vec::new();
        for p in 0..2u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                // Tag values with the producer id in the high bit.
                let mut v = (p << 32) | 0;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(mpsc::Full(back)) => {
                            v = back;
                            thread::yield_now();
                        }
                    }
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while got.len() < 2 {
            match rx.pop() {
                Some(v) => got.push(v),
                None => thread::yield_now(),
            }
        }
        got.sort_unstable();
        assert_eq!(
            got,
            vec![0, 1 << 32],
            "each producer delivered exactly once"
        );
        for p in producers {
            p.join();
        }
    });
}

/// `Receiver::len` semantics: under concurrency it is an estimate
/// (the first exploration of this test caught an over-strong "never
/// undershoots" assertion — an Acquire `tail` load may lag a claim
/// whose slot publish is already visible), it never underflows, and it
/// becomes exact once the consumer happens-after the producer (here:
/// after `join`).
#[test]
fn mpsc_len_exact_after_join() {
    model(|| {
        let (tx, mut rx) = mpsc::channel::<u64>(2);
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || {
                tx.push(7)
                    .unwrap_or_else(|_| panic!("capacity-2 ring rejected first push"));
            })
        };
        // Concurrent estimates must at least stay in range (no
        // underflow, never more than the one claim in flight).
        assert!(rx.len() <= 1);
        producer.join();
        // The join edge makes the claim visible: now the count is exact.
        assert_eq!(
            rx.len(),
            1,
            "len() exact once it happens-after the producer"
        );
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.len(), 0);
        assert!(rx.is_empty(), "drained ring reports empty");
    });
}

/// In-flight values are dropped exactly once when the ring is torn
/// down with values still queued — for both rings. Exercises the Drop
/// impls' Relaxed loads, which are sound only because `Arc` teardown
/// ordered both sides' final stores (the checker models that edge).
#[test]
fn rings_drop_in_flight_values_exactly_once() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc as StdArc;

    struct D(StdArc<AtomicU32>);
    impl Drop for D {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    model(|| {
        let drops = StdArc::new(AtomicU32::new(0));
        {
            let (mut tx, mut rx) = spsc::channel::<D>(2);
            tx.push(D(drops.clone())).unwrap_or_else(|_| unreachable!());
            tx.push(D(drops.clone())).unwrap_or_else(|_| unreachable!());
            let consumer = thread::spawn(move || {
                // Pop at most one; whatever is left must be dropped by the
                // ring's destructor, never twice.
                rx.pop().is_some()
            });
            let popped = consumer.join();
            drop(tx);
            assert!(popped, "both values were published before the spawn");
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "spsc: every value dropped once"
        );

        let drops = StdArc::new(AtomicU32::new(0));
        {
            let (tx, rx) = mpsc::channel::<D>(2);
            tx.push(D(drops.clone())).unwrap_or_else(|_| unreachable!());
            tx.push(D(drops.clone())).unwrap_or_else(|_| unreachable!());
            drop(tx);
            drop(rx);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "mpsc: every value dropped once"
        );
    });
}

/// The randomized generators in `tests/ring_proptests.rs` reuse this
/// entry point to drive model-checked scenarios; keep one explicit
/// deep-tier smoke here so `--features heavy-testing` exercises the
/// wider preemption bound even when run standalone.
#[test]
fn spsc_deep_tier_smoke() {
    let stats = model_with(Config::auto(), || {
        let (mut tx, mut rx) = spsc::channel::<u8>(2);
        let producer = thread::spawn(move || {
            let mut v = 1u8;
            loop {
                match tx.push(v) {
                    Ok(()) => break,
                    Err(spsc::Full(back)) => {
                        v = back;
                        thread::yield_now();
                    }
                }
            }
        });
        loop {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, 1);
                    break;
                }
                None => thread::yield_now(),
            }
        }
        producer.join();
    });
    assert!(
        stats.executions > 1,
        "explorer tried more than one schedule"
    );
}
