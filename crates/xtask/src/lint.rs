//! The workspace invariant linter.
//!
//! Six rules, each guarding a decision the codebase has already made
//! and that code review keeps re-litigating:
//!
//! * **R1 — unsafe confinement.** `unsafe` may appear only in the
//!   allowlisted modules (the two rings, the checker's cell shim, and
//!   the allocation-counting test harness), and *every* occurrence —
//!   allowlisted or not — must carry a `// SAFETY:` comment on the same
//!   line or within the three lines above it.
//! * **R2 — Relaxed allowlist.** `Ordering::Relaxed` on an atomic is a
//!   claim that no cross-thread data depends on it; that claim is only
//!   accepted in the allowlisted files, where each use is argued in
//!   comments (and, for the rings, exercised under the model checker).
//!   Matched as the bare word `Relaxed`, so `use Ordering::Relaxed` /
//!   `Ordering as O` aliasing cannot smuggle one past the rule.
//! * **R3 — simulated-time purity.** `persephone-core` and
//!   `persephone-sim` run on virtual nanoseconds; `Instant::now` or
//!   `thread::sleep` in their `src/` would silently couple results to
//!   wall-clock load.
//! * **R4 — hot-path style.** Dispatcher/worker/ring hot-path modules
//!   must not `println!` (stdout locking in a microsecond loop) or
//!   `.unwrap()` (use `.expect(...)` with a reason, or handle it).
//! * **R5 — unsafe-fn hygiene.** Any crate whose `src/` contains
//!   `unsafe`, and any standalone test file using it, must opt into
//!   `#![deny(unsafe_op_in_unsafe_fn)]` (or forbid unsafe outright).
//! * **R6 — dense request plane.** `HashMap`, `VecDeque`, and
//!   `BTreeMap` are forbidden in the request-plane modules (typed
//!   queues, arena, dispatch engines, dispatcher/worker loops): the hot
//!   path indexes dense type ids into flat arrays and arena rings, and
//!   a rehash or node allocation hiding in a µs-scale loop is exactly
//!   the regression this rule exists to catch. Cold setup code may be
//!   allowlisted with an argument.
//!
//! The scanner is a hand-rolled line cleaner (comments, strings, and
//! char literals stripped; `// SAFETY:` markers remembered), not a full
//! parser — deliberately: it has no dependencies, runs in milliseconds,
//! and rejects the obfuscated cases a parser would accept. Test code
//! (`#[cfg(test)]` modules, `tests/`, `benches/`) is exempt from the
//! style rules R2–R4 but not from the unsafe rules R1/R5.

use std::fmt;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (suffix match on `/`-separated
/// relative paths). Every occurrence still requires `// SAFETY:`.
const UNSAFE_ALLOW: &[&str] = &[
    "crates/net/src/spsc.rs",
    "crates/net/src/mpsc.rs",
    "crates/check/src/sync/cell.rs",
    "crates/telemetry/tests/no_alloc.rs",
    "crates/core/tests/no_alloc_dispatch.rs",
    "crates/check/tests/litmus.rs",
    "crates/check/tests/mutation.rs",
];

/// Files allowed to use `Ordering::Relaxed` in non-test code.
const RELAXED_ALLOW: &[&str] = &[
    "crates/net/src/spsc.rs",
    "crates/net/src/mpsc.rs",
    // udp.rs: per-socket datagram counters are independent monotone
    // event counts; no cross-thread control flow reads them.
    "crates/net/src/udp.rs",
    "crates/telemetry/src/ring.rs",
    "crates/telemetry/src/counters.rs",
    "crates/telemetry/src/hist.rs",
    "crates/telemetry/src/snapshot.rs",
];

/// Crates that must stay on virtual time (rule applies to their src/).
const VIRTUAL_TIME_CRATES: &[&str] = &["crates/core/src/", "crates/sim/src/"];

/// Hot-path modules: no `println!`, no `.unwrap()` outside tests.
const HOT_PATH: &[&str] = &[
    "crates/runtime/src/dispatcher.rs",
    "crates/runtime/src/worker.rs",
    "crates/net/src/spsc.rs",
    "crates/net/src/mpsc.rs",
    "crates/net/src/nic.rs",
    "crates/net/src/udp.rs",
];

/// Request-plane modules that must stay on dense containers (R6): no
/// `HashMap` / `VecDeque` / `BTreeMap` outside test code. Everything a
/// request touches between enqueue and completion lives here.
const DENSE_HOT_PATH: &[&str] = &[
    "crates/core/src/queue.rs",
    "crates/core/src/arena.rs",
    "crates/core/src/dispatch/",
    "crates/runtime/src/dispatcher.rs",
    "crates/runtime/src/worker.rs",
];

/// Files inside [`DENSE_HOT_PATH`] allowed to use the forbidden
/// containers in *cold setup only* (construction/reconfiguration, never
/// per-request). Currently empty — add an entry only with a comment in
/// the file arguing why the use can never run per-request.
const DENSE_COLD_ALLOW: &[&str] = &[];

/// One lint finding; `Display` renders `path:line: [rule] message`.
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// A source line with comments/strings removed and metadata kept.
struct CleanLine {
    /// Code with comments, string contents, and char literals blanked.
    code: String,
    /// The line carries a `// SAFETY:` (or `/* SAFETY:`) comment.
    safety: bool,
    /// The line is inside a `#[cfg(test)]` module block.
    in_test_mod: bool,
}

/// Strips comments, string literals, and char literals, preserving the
/// line structure so findings keep real line numbers.
fn clean_source(text: &str) -> Vec<CleanLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;
    let mut lines = Vec::new();
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut safety = raw.contains("SAFETY:")
            && (raw.trim_start().starts_with("//")
                || raw.contains("// SAFETY:")
                || raw.contains("/* SAFETY:"));
        let b = raw.as_bytes();
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Block(depth) => {
                    if raw[i..].starts_with("*/") {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if raw[i..].starts_with("/*") {
                        st = St::Block(depth + 1);
                        i += 2;
                    } else {
                        if raw[i..].starts_with("SAFETY:") {
                            safety = true;
                        }
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    let close = format!("\"{}", "#".repeat(hashes as usize));
                    if raw[i..].starts_with(&close) {
                        st = St::Code;
                        code.push('"');
                        i += close.len();
                    } else {
                        i += 1;
                    }
                }
                St::Code => {
                    if raw[i..].starts_with("//") {
                        if raw[i..].contains("SAFETY:") {
                            safety = true;
                        }
                        break; // rest of line is a comment
                    } else if raw[i..].starts_with("/*") {
                        st = St::Block(1);
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Str;
                        code.push('"');
                        i += 1;
                    } else if b[i] == b'r' && raw[i + 1..].starts_with(['"', '#']) {
                        // Raw string: r"..." or r#"..."#
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            st = St::RawStr(hashes);
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push('r');
                            i += 1;
                        }
                    } else if b[i] == b'\'' {
                        // Char literal vs lifetime: 'x' / '\n' are
                        // literals, 'a (no closing quote nearby) is a
                        // lifetime.
                        if i + 2 < b.len() && b[i + 1] == b'\\' {
                            let mut j = i + 2;
                            while j < b.len() && b[j] != b'\'' {
                                j += 1;
                            }
                            i = (j + 1).min(b.len());
                        } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                            i += 3;
                        } else {
                            i += 1; // lifetime tick
                        }
                    } else {
                        code.push(b[i] as char);
                        i += 1;
                    }
                }
            }
        }
        lines.push(CleanLine {
            code,
            safety,
            in_test_mod: false,
        });
    }
    mark_test_mods(&mut lines);
    lines
}

/// Marks lines inside `#[cfg(test)] mod ... { ... }` blocks by brace
/// counting on the cleaned code.
fn mark_test_mods(lines: &mut [CleanLine]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the following item.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                lines[j].in_test_mod = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Word-boundary search: `needle` at a position not flanked by
/// identifier characters.
fn has_word(code: &str, needle: &str) -> bool {
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(off) = code[from..].find(needle) {
        let start = from + off;
        let end = start + needle.len();
        let pre = start == 0 || !is_ident(b[start - 1]);
        let post = end >= b.len() || !is_ident(b[end]);
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

fn rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn matches_any(rel: &str, list: &[&str]) -> bool {
    list.iter()
        .any(|s| rel == *s || rel.ends_with(s) || rel.contains(s))
}

fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | ".cargo" | "related"
            ) {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints every `.rs` file under `root` (excluding `target/`, fixture
/// trees, and VCS metadata) and returns the findings, sorted by path.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    // crate src dir -> (has unsafe, has deny attr in crate root file)
    let mut crate_unsafe: Vec<(PathBuf, PathBuf)> = Vec::new();

    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        let relpath = rel(path, root);
        let lines = clean_source(&text);
        let has_deny_attr = text.contains("#![deny(unsafe_op_in_unsafe_fn)]")
            || text.contains("#![forbid(unsafe_code)]");
        let mut file_has_unsafe = false;

        for (idx, line) in lines.iter().enumerate() {
            let n = idx + 1;
            let code = line.code.as_str();

            // R1: unsafe confinement + SAFETY discipline (applies to
            // test code too — unsafe is unsafe everywhere).
            if has_word(code, "unsafe") {
                file_has_unsafe = true;
                if !matches_any(&relpath, UNSAFE_ALLOW) {
                    violations.push(Violation {
                        file: PathBuf::from(&relpath),
                        line: n,
                        rule: "R1-confine",
                        msg: "`unsafe` outside the allowlisted modules (see xtask lint docs)"
                            .into(),
                    });
                } else {
                    // Walk upward through the contiguous run of
                    // comment-only / attribute / blank lines above: a
                    // multi-line `// SAFETY: ...` argument counts no
                    // matter how long it is.
                    let mut documented = line.safety;
                    let mut j = idx;
                    while !documented && j > 0 {
                        j -= 1;
                        let above = &lines[j];
                        if above.safety {
                            documented = true;
                            break;
                        }
                        let t = above.code.trim();
                        if !(t.is_empty() || t.starts_with("#[")) {
                            break;
                        }
                    }
                    if !documented {
                        violations.push(Violation {
                            file: PathBuf::from(&relpath),
                            line: n,
                            rule: "R1-safety",
                            msg: "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                        });
                    }
                }
            }

            let style_exempt = line.in_test_mod || is_test_path(&relpath);
            if style_exempt {
                continue;
            }

            // R2: Relaxed allowlist. Word-boundary match so aliased forms
            // (`use Ordering::Relaxed`, `Ordering as O` + `O::Relaxed`)
            // are caught, not just the fully qualified path.
            if has_word(code, "Relaxed") && !matches_any(&relpath, RELAXED_ALLOW) {
                violations.push(Violation {
                    file: PathBuf::from(&relpath),
                    line: n,
                    rule: "R2-relaxed",
                    msg: "`Relaxed` ordering outside the allowlisted files; justify and allowlist, or strengthen".into(),
                });
            }

            // R3: virtual-time purity.
            if matches_any(&relpath, VIRTUAL_TIME_CRATES)
                && (code.contains("Instant::now") || code.contains("thread::sleep"))
            {
                violations.push(Violation {
                    file: PathBuf::from(&relpath),
                    line: n,
                    rule: "R3-virtual-time",
                    msg: "wall-clock call in a virtual-time crate (persephone-core/sim run on simulated ns)".into(),
                });
            }

            // R4: hot-path style.
            if matches_any(&relpath, HOT_PATH) {
                if code.contains("println!") {
                    violations.push(Violation {
                        file: PathBuf::from(&relpath),
                        line: n,
                        rule: "R4-hotpath",
                        msg: "`println!` in a hot-path module (stdout lock in the dispatch loop)"
                            .into(),
                    });
                }
                if code.contains(".unwrap()") {
                    violations.push(Violation {
                        file: PathBuf::from(&relpath),
                        line: n,
                        rule: "R4-hotpath",
                        msg:
                            "`.unwrap()` in a hot-path module; use `.expect(\"reason\")` or handle"
                                .into(),
                    });
                }
            }

            // R6: dense containers only in the request plane.
            if matches_any(&relpath, DENSE_HOT_PATH) && !matches_any(&relpath, DENSE_COLD_ALLOW) {
                for container in ["HashMap", "VecDeque", "BTreeMap"] {
                    if has_word(code, container) {
                        violations.push(Violation {
                            file: PathBuf::from(&relpath),
                            line: n,
                            rule: "R6-dense",
                            msg: format!(
                                "`{container}` in a request-plane module; use dense \
                                 type-indexed arrays or the arena ring (or allowlist \
                                 cold setup with an argument)"
                            ),
                        });
                    }
                }
            }
        }

        // R5 bookkeeping: remember files with unsafe and whether their
        // compilation unit opted into unsafe-fn hygiene.
        if file_has_unsafe && !has_deny_attr {
            crate_unsafe.push((path.clone(), PathBuf::from(&relpath)));
        }
    }

    // R5: a file using unsafe must itself carry the attr (tests) or its
    // crate root must (src files).
    for (path, relpath) in crate_unsafe {
        let rels = relpath.to_string_lossy();
        if is_test_path(&rels) {
            violations.push(Violation {
                file: relpath.clone(),
                line: 1,
                rule: "R5-unsafe-fn",
                msg: "test file uses `unsafe` but lacks `#![deny(unsafe_op_in_unsafe_fn)]`".into(),
            });
            continue;
        }
        // Walk up to the crate's src/ dir, then check lib.rs / main.rs.
        let mut dir = path.parent();
        let mut root_file = None;
        while let Some(d) = dir {
            if d.file_name().is_some_and(|n| n == "src") {
                for cand in ["lib.rs", "main.rs"] {
                    let c = d.join(cand);
                    if c.exists() {
                        root_file = Some(c);
                        break;
                    }
                }
                break;
            }
            dir = d.parent();
        }
        let covered = root_file
            .and_then(|f| std::fs::read_to_string(f).ok())
            .is_some_and(|t| {
                t.contains("#![deny(unsafe_op_in_unsafe_fn)]")
                    || t.contains("#![forbid(unsafe_code)]")
            });
        if !covered {
            violations.push(Violation {
                file: relpath,
                line: 1,
                rule: "R5-unsafe-fn",
                msg: "crate uses `unsafe` but its root lacks `#![deny(unsafe_op_in_unsafe_fn)]`"
                    .into(),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad")
    }

    fn workspace_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn relaxed_aliasing_gap_is_closed() {
        // The fixture dispatcher smuggles a bare `Relaxed` through
        // `use Ordering::Relaxed` — no `Ordering::Relaxed` literal on
        // the offending line. R2 must still fire on it.
        let violations = run(&fixture_root());
        let r2_lines: Vec<usize> = violations
            .iter()
            .filter(|v| {
                v.rule == "R2-relaxed" && v.file.to_string_lossy().ends_with("dispatcher.rs")
            })
            .map(|v| v.line)
            .collect();
        assert!(
            r2_lines.len() >= 3,
            "R2 should fire on the use-alias line, the qualified use, and \
             the bare `Relaxed` load; got lines {r2_lines:?}"
        );
    }

    #[test]
    fn relaxed_inside_string_literal_is_not_flagged() {
        // The audit tool's own source compares token text against the
        // string "Relaxed"; the cleaner strips string contents, so R2
        // must not fire on it.
        let lines = clean_source("let hit = t.text == \"Relaxed\";\n");
        assert!(!lines.iter().any(|l| has_word(&l.code, "Relaxed")));
    }

    #[test]
    fn seeded_fixture_trips_every_rule() {
        let violations = run(&fixture_root());
        let fired: Vec<&str> = violations.iter().map(|v| v.rule).collect();
        for rule in [
            "R1-confine",
            "R1-safety",
            "R2-relaxed",
            "R3-virtual-time",
            "R4-hotpath",
            "R5-unsafe-fn",
            "R6-dense",
        ] {
            assert!(
                fired.contains(&rule),
                "fixture should trip {rule}; got {fired:?}"
            );
        }
    }

    #[test]
    fn real_workspace_is_clean() {
        let violations = run(&workspace_root());
        assert!(
            violations.is_empty(),
            "workspace lint must be clean:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn cleaner_strips_comments_strings_and_doc_examples() {
        let lines = clean_source(
            "/// let x = foo.unwrap();\nlet s = \"unsafe println!\"; // unsafe in comment\nlet c = 'u'; let l: &'static str = s;\n",
        );
        assert!(!lines.iter().any(|l| has_word(&l.code, "unsafe")));
        assert!(!lines.iter().any(|l| l.code.contains(".unwrap()")));
    }

    #[test]
    fn safety_comment_detection_spans_adjacent_lines() {
        let src = "// SAFETY: fine\nlet x = unsafe { y() };\n";
        let lines = clean_source(src);
        assert!(lines[0].safety);
        assert!(has_word(&lines[1].code, "unsafe"));
    }

    #[test]
    fn cfg_test_modules_are_style_exempt() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lines = clean_source(src);
        assert!(!lines[0].in_test_mod);
        assert!(lines[3].in_test_mod);
        assert!(!lines[5].in_test_mod);
    }
}
