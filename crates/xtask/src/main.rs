//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo xtask lint [workspace-root]
//! ```
//!
//! runs the invariant linter over the workspace sources and exits
//! non-zero if any rule fires. See [`lint`] for the rule catalogue.

mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let violations = lint::run(&root);
            if violations.is_empty() {
                eprintln!("xtask lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask lint [workspace-root]{}",
                other
                    .map(|o| format!(" (unknown task {o:?})"))
                    .unwrap_or_default()
            );
            ExitCode::FAILURE
        }
    }
}
