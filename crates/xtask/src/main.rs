//! Workspace task runner. Two tasks:
//!
//! ```text
//! cargo xtask lint  [workspace-root]
//! cargo xtask audit [--json] [--write-baseline] [workspace-root]
//! ```
//!
//! `lint` runs the per-line invariant linter (rules R1–R6); `audit` runs
//! the interprocedural call-graph audit (rules A1–A5) and checks the
//! rendered report against the committed `AUDIT.json` baseline. Both
//! exit non-zero if any rule fires. See [`lint`] and [`audit`] for the
//! rule catalogues.

mod audit;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = args
                .next()
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let violations = lint::run(&root);
            if violations.is_empty() {
                eprintln!("xtask lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Some("audit") => {
            let mut print_json = false;
            let mut write_baseline = false;
            let mut dump = None;
            let mut root = None;
            let mut args = args.peekable();
            while let Some(a) = args.next() {
                match a.as_str() {
                    "--json" => print_json = true,
                    "--write-baseline" => write_baseline = true,
                    "--dump" => dump = args.next(),
                    other => root = Some(PathBuf::from(other)),
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            if let Some(rel) = dump {
                audit::dump(&root, &rel);
                return ExitCode::SUCCESS;
            }
            if audit::cli(&root, print_json, write_baseline) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask <lint|audit> [--json] [--write-baseline] [workspace-root]{}",
                other
                    .map(|o| format!(" (unknown task {o:?})"))
                    .unwrap_or_default()
            );
            ExitCode::FAILURE
        }
    }
}
