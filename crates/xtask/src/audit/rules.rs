//! Audit rules A1–A5 over the call graph, plus the inline suppression
//! mechanism.
//!
//! | rule | property | scope |
//! |------|----------|-------|
//! | A1 | no panic path (`unwrap`/`expect`/panic macros/indexing on non-exempt types) | reachable from roots |
//! | A2 | no allocation outside pre-warmed arenas / `#[cold]` paths | reachable from roots |
//! | A3 | no blocking call (`sleep`/`lock`/`wait`) outside the idle-backoff ladder | reachable from roots |
//! | A4 | every `Ordering::Relaxed` site (however spelled) carries `// audit:ordering: why` | whole workspace, non-test |
//! | A5 | every `unsafe` site's `SAFETY:` comment names the invariant-owning type | whole workspace, non-test |
//!
//! Suppression: `// audit:allow(A1): reason` on the offending line or up
//! to [`SUPPRESS_WINDOW`] lines above it. The reason is mandatory, and a
//! suppression that stops matching any finding fails the audit — stale
//! allowances cannot outlive the code they excused.

use super::graph::Graph;
use super::parser::ParsedFile;

/// Lines below a marker comment that it still covers (same line counts).
pub const SUPPRESS_WINDOW: u32 = 3;

/// Lines above an `unsafe` site searched for its `SAFETY:` comment
/// (mirrors the R1 lint walk).
const SAFETY_WINDOW: u32 = 6;

/// Types whose *internal* indexing is exempt from A1: their dense arrays
/// are sized at construction (`num_types` × `num_workers` slots, arena
/// capacity) and never shrink, and the index invariants are covered by
/// the model checker and targeted tests. Indexing anywhere else — free
/// functions, net code, new engines — is flagged.
pub const INDEX_EXEMPT_TYPES: &[&str] = &[
    // hot-path containers: slot indices are generation-checked handles
    "ArenaRing",
    "TypedQueue",
    "WorkerTable",
    // engines: dense per-type/per-worker arrays sized at construction
    "Profiler",
    "DarcEngine",
    "CfcfsEngine",
    "SjfEngine",
    "DfcfsEngine",
    "FixedPriorityEngine",
    // rings: power-of-two capacity, masked indices
    "Ring",
    "Producer",
    "Consumer",
    "Sender",
    "Receiver",
    "EventRing",
    "SchedEvent",
    // telemetry: per-type/per-worker counter arrays sized at init
    "Telemetry",
    "AtomicHist",
    "LogHist",
    // length-validated byte buffer (`len <= data.len()` invariant)
    "PacketBuf",
];

/// Std types accepted as invariant owners in SAFETY comments, alongside
/// every workspace-declared type.
const STD_INVARIANT_TYPES: &[&str] = &[
    "UnsafeCell",
    "MaybeUninit",
    "NonNull",
    "Cell",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU32",
];

/// One audit finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub what: String,
    /// Root-to-site call chain for reachability rules; empty otherwise.
    pub via: String,
}

/// One parsed `audit:allow` marker.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
    pub used: bool,
}

/// Everything the rules produced: unsuppressed findings plus the full
/// suppression ledger (used ones feed the baseline; unused ones are
/// findings themselves).
pub struct RuleOutcome {
    pub findings: Vec<Finding>,
    pub suppressions: Vec<Suppression>,
}

/// True for plain `//` line comments — doc comments (`///`, `//!`) and
/// block comments never carry audit markers, so prose that *describes*
/// the syntax (like this module's docs) cannot accidentally invoke it.
fn is_marker_comment(text: &str) -> bool {
    text.starts_with("//") && !text.starts_with("///") && !text.starts_with("//!")
}

/// Parses `audit:allow(RULE): reason` markers out of a file's comments.
fn collect_suppressions(file: &ParsedFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &file.comments {
        if !is_marker_comment(&c.text) {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("audit:allow(") {
            rest = &rest[pos + "audit:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(|r| {
                    let line_end = r.find('\n').unwrap_or(r.len());
                    r[..line_end].trim().to_string()
                })
                .unwrap_or_default();
            out.push(Suppression {
                file: file.path.clone(),
                line: c.line,
                rule,
                reason,
                used: false,
            });
            rest = after;
        }
    }
    out
}

/// True when a comment in `file` marks `line` with `audit:ordering: why`.
fn has_ordering_marker(file: &ParsedFile, line: u32) -> bool {
    file.comments.iter().any(|c| {
        is_marker_comment(&c.text)
            && c.line <= line
            && line - c.line <= SUPPRESS_WINDOW
            && c.text
                .find("audit:ordering:")
                .map(|p| !c.text[p + "audit:ordering:".len()..].trim().is_empty())
                .unwrap_or(false)
    })
}

/// Extracts CamelCase words (at least one lowercase after an uppercase
/// start) from a comment — candidate type names.
fn camel_words(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    let b = text.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        let word_char = c.is_ascii_alphanumeric() || c == b'_';
        match start {
            None if word_char => start = Some(i),
            Some(s) if !word_char => {
                out.push(&text[s..i]);
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(&text[s..]);
    }
    out.retain(|w| {
        let mut chars = w.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_uppercase())
            && w.chars().any(|c| c.is_ascii_lowercase())
    });
    out
}

/// Runs all rules. `workspace_types` is the union of declared type names
/// across every parsed file (A5's accepted invariant owners).
pub fn run(graph: &Graph<'_>, workspace_types: &[String]) -> RuleOutcome {
    let mut findings = Vec::new();
    let mut suppressions: Vec<Suppression> = Vec::new();
    for f in graph.files {
        suppressions.extend(collect_suppressions(f));
    }

    // --- Reachability rules: A1 / A2 / A3 -------------------------------
    for id in 0..graph.fns.len() {
        if !graph.reachable[id] {
            continue;
        }
        let it = graph.item(id);
        let file = graph.file(id);
        if it.is_cold || it.is_test || file.file_is_test {
            // Cold paths are the sanctioned slow lane (arena growth,
            // allocation-matrix install): exempt by design.
            continue;
        }
        let via = graph.via(id);
        for s in &it.facts.panics {
            findings.push(Finding {
                rule: "A1".into(),
                file: file.path.clone(),
                line: s.line,
                what: format!("panic path: {}", s.what),
                via: via.clone(),
            });
        }
        let index_exempt = it
            .self_ty
            .as_deref()
            .is_some_and(|t| INDEX_EXEMPT_TYPES.contains(&t));
        if !index_exempt {
            for s in &it.facts.indexing {
                findings.push(Finding {
                    rule: "A1".into(),
                    file: file.path.clone(),
                    line: s.line,
                    what: format!("unchecked indexing on `{}`", s.what),
                    via: via.clone(),
                });
            }
        }
        for s in &it.facts.allocs {
            findings.push(Finding {
                rule: "A2".into(),
                file: file.path.clone(),
                line: s.line,
                what: format!("allocation: {}", s.what),
                via: via.clone(),
            });
        }
        for s in &it.facts.blocking {
            findings.push(Finding {
                rule: "A3".into(),
                file: file.path.clone(),
                line: s.line,
                what: format!("blocking call: {}", s.what),
                via: via.clone(),
            });
        }
    }

    // --- File-scope rules: A4 / A5 --------------------------------------
    for f in graph.files {
        for &(line, in_test) in &f.relaxed_sites {
            if in_test || f.file_is_test {
                continue;
            }
            if !has_ordering_marker(f, line) {
                findings.push(Finding {
                    rule: "A4".into(),
                    file: f.path.clone(),
                    line,
                    what: "Relaxed ordering without `// audit:ordering: why` justification".into(),
                    via: String::new(),
                });
            }
        }
        for &(line, in_test) in &f.unsafe_sites {
            if in_test || f.file_is_test {
                continue;
            }
            let nearby: String = f
                .comments
                .iter()
                .filter(|c| {
                    c.end_line <= line && line - c.end_line <= SAFETY_WINDOW || c.line == line
                })
                .map(|c| c.text.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            if !nearby.contains("SAFETY") {
                // R1 already fails this; A5 restates it so the audit is
                // self-contained.
                findings.push(Finding {
                    rule: "A5".into(),
                    file: f.path.clone(),
                    line,
                    what: "unsafe without a SAFETY: comment".into(),
                    via: String::new(),
                });
                continue;
            }
            let names_type = camel_words(&nearby)
                .iter()
                .any(|w| workspace_types.iter().any(|t| t == w) || STD_INVARIANT_TYPES.contains(w));
            if !names_type {
                findings.push(Finding {
                    rule: "A5".into(),
                    file: f.path.clone(),
                    line,
                    what: "SAFETY: comment does not name the invariant-owning type".into(),
                    via: String::new(),
                });
            }
        }
    }

    // --- Apply suppressions ---------------------------------------------
    findings.retain(|fd| {
        for s in suppressions.iter_mut() {
            if s.file == fd.file
                && s.rule == fd.rule
                && s.line <= fd.line
                && fd.line - s.line <= SUPPRESS_WINDOW
            {
                if s.reason.is_empty() {
                    // Reason-less allowances do not suppress; the marker
                    // itself becomes a finding below.
                    continue;
                }
                s.used = true;
                return false;
            }
        }
        true
    });

    // Reason-less or stale markers fail the audit.
    for s in &suppressions {
        if s.reason.is_empty() {
            findings.push(Finding {
                rule: "suppression".into(),
                file: s.file.clone(),
                line: s.line,
                what: format!("audit:allow({}) without a reason", s.rule),
                via: String::new(),
            });
        } else if !s.used {
            findings.push(Finding {
                rule: "suppression".into(),
                file: s.file.clone(),
                line: s.line,
                what: format!(
                    "unused suppression audit:allow({}): the line it excused is gone — remove it",
                    s.rule
                ),
                via: String::new(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    suppressions.retain(|s| s.used);
    suppressions.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    RuleOutcome {
        findings,
        suppressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::graph::build;
    use crate::audit::parser::parse_file;

    fn audit(src: &str) -> RuleOutcome {
        let files = vec![parse_file("crates/demo/src/lib.rs", src)];
        let types: Vec<String> = files.iter().flat_map(|f| f.types.clone()).collect();
        let g = build(
            &files,
            &["run_dispatcher", "run_worker"],
            &["ScheduleEngine"],
            &[],
            &std::collections::BTreeMap::new(),
        );
        run(&g, &types)
    }

    fn rules_of(o: &RuleOutcome) -> Vec<&str> {
        o.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn a1_fires_on_reachable_unwrap() {
        let o = audit("pub fn run_dispatcher(x: Option<u32>) { helper(x); }\nfn helper(x: Option<u32>) { x.unwrap(); }");
        assert_eq!(rules_of(&o), ["A1"]);
        assert!(o.findings[0].via.contains("run_dispatcher → helper"));
    }

    #[test]
    fn a1_ignores_unreachable_unwrap() {
        let o = audit("pub fn run_dispatcher() {}\nfn cold_code(x: Option<u32>) { x.unwrap(); }");
        assert!(o.findings.is_empty(), "{:?}", o.findings);
    }

    #[test]
    fn a2_fires_on_reachable_alloc_but_not_cold() {
        let o = audit(
            "pub fn run_dispatcher() { a(); b(); }\nfn a() { let v: Vec<u32> = Vec::new(); }\n#[cold]\nfn b() { let v: Vec<u32> = Vec::new(); }",
        );
        assert_eq!(rules_of(&o), ["A2"]);
        assert_eq!(o.findings[0].line, 2);
    }

    #[test]
    fn a3_fires_on_reachable_sleep() {
        let o = audit("pub fn run_worker(d: Duration) { std::thread::sleep(d); }");
        assert_eq!(rules_of(&o), ["A3"]);
    }

    #[test]
    fn a4_fires_without_marker_and_not_with() {
        let bad = audit("fn f(c: &AtomicU64) { c.load(std::sync::atomic::Ordering::Relaxed); }");
        assert_eq!(rules_of(&bad), ["A4"]);
        let good = audit(
            "fn f(c: &AtomicU64) {\n    // audit:ordering: monotonic counter, no cross-thread edge\n    c.load(std::sync::atomic::Ordering::Relaxed);\n}",
        );
        assert!(good.findings.is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn a4_catches_aliased_relaxed() {
        let o = audit(
            "use std::sync::atomic::Ordering as O;\nfn f(c: &AtomicU64) { c.load(O::Relaxed); }",
        );
        assert_eq!(rules_of(&o), ["A4"]);
    }

    #[test]
    fn a5_requires_type_name_in_safety() {
        let bad = audit(
            "struct Ring;\n// SAFETY: this is fine\nfn f(p: *const u8) { unsafe { p.read() }; }",
        );
        assert_eq!(rules_of(&bad), ["A5"]);
        let good = audit(
            "struct Ring;\n// SAFETY: Ring guarantees the slot is initialized before publish\nfn f(p: *const u8) { unsafe { p.read() }; }",
        );
        assert!(good.findings.is_empty(), "{:?}", good.findings);
    }

    #[test]
    fn suppression_with_reason_works_and_is_tracked() {
        let o = audit(
            "pub fn run_dispatcher(x: Option<u32>) {\n    // audit:allow(A1): spawn-time protocol check, runs once\n    x.unwrap();\n}",
        );
        assert!(o.findings.is_empty(), "{:?}", o.findings);
        assert_eq!(o.suppressions.len(), 1);
        assert!(o.suppressions[0].used);
    }

    #[test]
    fn reasonless_suppression_is_a_finding() {
        let o = audit(
            "pub fn run_dispatcher(x: Option<u32>) {\n    // audit:allow(A1)\n    x.unwrap();\n}",
        );
        let r = rules_of(&o);
        assert!(r.contains(&"A1"), "not suppressed");
        assert!(r.contains(&"suppression"), "marker flagged");
    }

    #[test]
    fn stale_suppression_is_a_finding() {
        let o = audit("pub fn run_dispatcher() {\n    // audit:allow(A1): excuse with nothing left to excuse\n    let x = 1;\n}");
        assert_eq!(rules_of(&o), ["suppression"]);
        assert!(o.findings[0].what.contains("unused"));
    }

    #[test]
    fn index_exempt_types_skip_a1_indexing() {
        let o = audit(
            "impl ArenaRing { fn get(&self, i: usize) -> u32 { self.slots[i] } }\npub fn run_dispatcher(a: &ArenaRing) { a.get(0); }",
        );
        assert!(o.findings.is_empty(), "{:?}", o.findings);
        let o2 = audit("pub fn run_dispatcher(held: &[u32], w: usize) { let _ = held[w]; }");
        assert_eq!(rules_of(&o2), ["A1"]);
    }

    #[test]
    fn test_code_is_exempt_from_file_scope_rules() {
        let o = audit(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(c: &AtomicU64) { c.load(std::sync::atomic::Ordering::Relaxed); unsafe { x() }; }\n}",
        );
        assert!(o.findings.is_empty(), "{:?}", o.findings);
    }
}
