//! Item-level parser: extracts `fn` items, impl blocks, declared types,
//! and per-function facts (calls, panic/alloc/blocking sites, indexing,
//! `unsafe` and `Relaxed` occurrences) from a lexed token stream.
//!
//! This is a recursive-descent walk over the token stream with brace
//! balancing, not a full grammar — it only understands as much Rust as
//! the audit rules need, and errs on the side of over-reporting facts
//! (a fact the rules ignore is free; a missed call edge is a hole).

use super::lexer::{lex, Comment, Tok, Token};

/// A single rule-relevant occurrence inside a function body.
#[derive(Clone, Debug)]
pub struct Site {
    /// What was seen (`"unwrap"`, `"vec!"`, receiver name for indexing…).
    pub what: String,
    pub line: u32,
}

/// A call expression: `foo(…)`, `path::to::foo(…)`, or `recv.foo(…)`.
#[derive(Clone, Debug)]
pub struct Call {
    /// Final path segment / method name.
    pub name: String,
    /// Second-to-last path segment (`wire` in `wire::decode`), if any.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    pub line: u32,
}

/// Facts harvested from one function body.
#[derive(Clone, Debug, Default)]
pub struct Facts {
    pub calls: Vec<Call>,
    pub panics: Vec<Site>,
    pub allocs: Vec<Site>,
    pub blocking: Vec<Site>,
    pub indexing: Vec<Site>,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Surrounding impl/trait type name (`DarcEngine`), if any.
    pub self_ty: Option<String>,
    /// Trait name when declared in `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Module path inside the file (`["tests"]`).
    pub module: Vec<String>,
    pub line: u32,
    pub is_test: bool,
    pub is_cold: bool,
    pub has_self: bool,
    pub facts: Facts,
}

/// A whole parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Owning crate (directory name under `crates/`).
    pub crate_name: String,
    /// True when the whole file is test code (`tests/`, `benches/`).
    pub file_is_test: bool,
    pub fns: Vec<FnItem>,
    /// Type names declared in this file (struct/enum/union/trait/type).
    pub types: Vec<String>,
    pub comments: Vec<Comment>,
    /// Every `Relaxed` identifier outside `use` declarations: (line, in test code).
    pub relaxed_sites: Vec<(u32, bool)>,
    /// Every `unsafe` keyword: (line, in test code).
    pub unsafe_sites: Vec<(u32, bool)>,
}

/// Panic-producing macros (A1). `debug_assert*` is excluded: it compiles
/// out of release builds, which are what the latency claims run on.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Allocating macros (A2).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Panic-producing methods (A1).
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Allocating methods (A2). `.push` is deliberately absent: it cannot be
/// told apart from arena/ring pushes syntactically; growth-free pushes
/// are covered dynamically by the counting-allocator test instead.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "reserve",
    "reserve_exact",
    "resize",
    "resize_with",
    "extend_from_slice",
    "into_boxed_slice",
];

/// Types whose associated constructors allocate (A2).
const ALLOC_TYPES: &[&str] = &[
    "Box", "String", "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap",
];

/// Blocking method names (A3).
const BLOCK_METHODS: &[&str] = &["lock", "wait", "wait_timeout", "recv_timeout"];

/// Blocking free/path calls (A3).
const BLOCK_CALLS: &[&str] = &["sleep", "park", "park_timeout"];

/// Parses one file. `rel_path` is the workspace-relative path.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|p| p.split('/').next())
        .unwrap_or("")
        .to_string();
    let file_is_test = rel_path.contains("/tests/") || rel_path.contains("/benches/");
    let mut pf = ParsedFile {
        path: rel_path.to_string(),
        crate_name,
        file_is_test,
        comments: lexed.comments,
        ..ParsedFile::default()
    };
    let toks = &lexed.tokens;
    let mut p = Parser {
        toks,
        i: 0,
        out: &mut pf,
        use_spans: Vec::new(),
        test_spans: Vec::new(),
    };
    p.items(&Ctx {
        module: Vec::new(),
        in_test: file_is_test,
        self_ty: None,
        trait_impl: None,
    });
    let use_spans = p.use_spans.clone();
    let test_spans = p.test_spans.clone();
    drop(p);
    // File-scope scans for A4/A5: these must see code outside fn bodies
    // too (statics, `unsafe impl`).
    let in_spans =
        |spans: &[(usize, usize)], idx: usize| spans.iter().any(|&(a, b)| idx >= a && idx < b);
    for (idx, t) in toks.iter().enumerate() {
        if t.kind != Tok::Ident {
            continue;
        }
        let test = file_is_test || in_spans(&test_spans, idx);
        if t.text == "Relaxed" && !in_spans(&use_spans, idx) {
            pf.relaxed_sites.push((t.line, test));
        } else if t.text == "unsafe" {
            pf.unsafe_sites.push((t.line, test));
        }
    }
    pf
}

struct Ctx {
    module: Vec<String>,
    in_test: bool,
    self_ty: Option<String>,
    trait_impl: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    out: &'a mut ParsedFile,
    /// Token-index spans of `use` declarations (excluded from A4 scan).
    use_spans: Vec<(usize, usize)>,
    /// Token-index spans of test items (`#[cfg(test)]` mods, `#[test]` fns).
    test_spans: Vec<(usize, usize)>,
}

impl<'a> Parser<'a> {
    fn peek(&self, off: usize) -> Option<&Token> {
        self.toks.get(self.i + off)
    }

    fn is_punct(&self, off: usize, c: char) -> bool {
        matches!(self.peek(off), Some(t) if t.kind == Tok::Punct && t.text.as_bytes()[0] as char == c)
    }

    fn is_ident(&self, off: usize, s: &str) -> bool {
        matches!(self.peek(off), Some(t) if t.kind == Tok::Ident && t.text == s)
    }

    /// Skips a balanced `open…close` group starting at the current token
    /// (which must be `open`); leaves the cursor just past the close.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.kind == Tok::Punct {
                let c = t.text.as_bytes()[0] as char;
                if c == open {
                    depth += 1;
                } else if c == close {
                    depth -= 1;
                    if depth == 0 {
                        self.i += 1;
                        return;
                    }
                }
            }
            self.i += 1;
        }
    }

    /// Parses items at one brace level until the matching `}` or EOF.
    fn items(&mut self, ctx: &Ctx) {
        let mut attr_test = false;
        let mut attr_cold = false;
        loop {
            let Some(t) = self.peek(0) else { return };
            match (t.kind, t.text.as_str()) {
                (Tok::Punct, "}") => {
                    self.i += 1;
                    return;
                }
                (Tok::Punct, "#") => {
                    if self.is_punct(1, '!') {
                        self.i += 2; // inner attribute `#![…]`
                        if self.is_punct(0, '[') {
                            self.skip_balanced('[', ']');
                        }
                        continue;
                    }
                    self.i += 1;
                    let start = self.i;
                    if self.is_punct(0, '[') {
                        self.skip_balanced('[', ']');
                    }
                    let words: Vec<&str> = self.toks[start..self.i]
                        .iter()
                        .filter(|t| t.kind == Tok::Ident)
                        .map(|t| t.text.as_str())
                        .collect();
                    if words.contains(&"test") && !words.contains(&"not") {
                        attr_test = true;
                    }
                    if words.contains(&"cold") {
                        attr_cold = true;
                    }
                }
                (Tok::Ident, "mod") => {
                    let name = self.peek(1).map(|t| t.text.clone()).unwrap_or_default();
                    self.i += 2;
                    if self.is_punct(0, ';') {
                        self.i += 1;
                    } else if self.is_punct(0, '{') {
                        let body_start = self.i;
                        self.i += 1;
                        let mut module = ctx.module.clone();
                        module.push(name.clone());
                        let in_test = ctx.in_test || attr_test || name == "tests";
                        self.items(&Ctx {
                            module,
                            in_test,
                            self_ty: None,
                            trait_impl: None,
                        });
                        if in_test && !ctx.in_test {
                            self.test_spans.push((body_start, self.i));
                        }
                    }
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "impl") => {
                    self.i += 1;
                    if self.is_punct(0, '<') {
                        self.skip_angles();
                    }
                    let first = self.type_path();
                    let (trait_impl, self_ty) = if self.is_ident(0, "for") {
                        self.i += 1;
                        let second = self.type_path();
                        (first, second)
                    } else {
                        (None, first)
                    };
                    // skip where-clause up to the body
                    while !self.is_punct(0, '{') && !self.is_punct(0, ';') && self.peek(0).is_some()
                    {
                        if self.is_punct(0, '<') {
                            self.skip_angles();
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.is_punct(0, '{') {
                        let body_start = self.i;
                        self.i += 1;
                        let in_test = ctx.in_test || attr_test;
                        self.items(&Ctx {
                            module: ctx.module.clone(),
                            in_test,
                            self_ty: self_ty.clone(),
                            trait_impl,
                        });
                        if in_test && !ctx.in_test {
                            self.test_spans.push((body_start, self.i));
                        }
                    } else {
                        self.i += 1;
                    }
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "trait") => {
                    let name = self.peek(1).map(|t| t.text.clone()).unwrap_or_default();
                    self.out.types.push(name.clone());
                    self.i += 2;
                    while !self.is_punct(0, '{') && !self.is_punct(0, ';') && self.peek(0).is_some()
                    {
                        if self.is_punct(0, '<') {
                            self.skip_angles();
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.is_punct(0, '{') {
                        self.i += 1;
                        self.items(&Ctx {
                            module: ctx.module.clone(),
                            in_test: ctx.in_test || attr_test,
                            self_ty: Some(name),
                            trait_impl: None,
                        });
                    } else {
                        self.i += 1;
                    }
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "struct" | "enum" | "union") => {
                    if let Some(n) = self.peek(1) {
                        if n.kind == Tok::Ident {
                            self.out.types.push(n.text.clone());
                        }
                    }
                    self.i += 2;
                    // skip to `;` (unit/tuple struct) or past the body braces
                    while let Some(t) = self.peek(0) {
                        if t.kind == Tok::Punct {
                            match t.text.as_bytes()[0] {
                                b';' => {
                                    self.i += 1;
                                    break;
                                }
                                b'{' => {
                                    self.skip_balanced('{', '}');
                                    break;
                                }
                                b'(' => {
                                    self.skip_balanced('(', ')');
                                    continue;
                                }
                                b'<' => {
                                    self.skip_angles();
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        self.i += 1;
                    }
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "type") => {
                    if let Some(n) = self.peek(1) {
                        if n.kind == Tok::Ident {
                            self.out.types.push(n.text.clone());
                        }
                    }
                    self.skip_to_semi();
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "use") => {
                    let start = self.i;
                    self.skip_to_semi();
                    self.use_spans.push((start, self.i));
                }
                (Tok::Ident, "static" | "const") => {
                    // `const fn` is handled by the `fn` arm on the next spin.
                    if self.is_ident(1, "fn") {
                        self.i += 1;
                    } else {
                        self.skip_to_semi();
                        attr_test = false;
                        attr_cold = false;
                    }
                }
                (Tok::Ident, "macro_rules") => {
                    self.i += 1; // `!` name
                    while !self.is_punct(0, '{') && self.peek(0).is_some() {
                        self.i += 1;
                    }
                    self.skip_balanced('{', '}');
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Ident, "fn") => {
                    let fn_start = self.i;
                    self.parse_fn(ctx, attr_test, attr_cold);
                    if attr_test && !ctx.in_test {
                        self.test_spans.push((fn_start, self.i));
                    }
                    attr_test = false;
                    attr_cold = false;
                }
                (Tok::Punct, "{") => {
                    // stray block (e.g. `extern "C" { … }` body reached here)
                    self.skip_balanced('{', '}');
                }
                _ => self.i += 1,
            }
        }
    }

    /// Skips a balanced angle-bracket group. Shift operators cannot appear
    /// in the positions this is called from (generic parameter lists).
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek(0) {
            if t.kind == Tok::Punct {
                match t.text.as_bytes()[0] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                    b';' | b'{' => return, // malformed; bail safely
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Skips to just past the next `;` at the current nesting level,
    /// balancing braces/brackets/parens in between.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek(0) {
            if t.kind == Tok::Punct {
                match t.text.as_bytes()[0] {
                    b';' => {
                        self.i += 1;
                        return;
                    }
                    b'{' => {
                        self.skip_balanced('{', '}');
                        continue;
                    }
                    b'(' => {
                        self.skip_balanced('(', ')');
                        continue;
                    }
                    b'[' => {
                        self.skip_balanced('[', ']');
                        continue;
                    }
                    b'}' => return, // end of enclosing block; malformed item
                    _ => {}
                }
            }
            self.i += 1;
        }
    }

    /// Parses a type path (`dispatch::common::WorkerTable<R>`), returning
    /// the last identifier. Leaves the cursor after the path.
    fn type_path(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            // leading `&`, `dyn`, `mut`, lifetimes
            while self.is_punct(0, '&')
                || self.is_ident(0, "dyn")
                || self.is_ident(0, "mut")
                || matches!(self.peek(0), Some(t) if t.kind == Tok::Lifetime)
            {
                self.i += 1;
            }
            match self.peek(0) {
                Some(t) if t.kind == Tok::Ident => {
                    last = Some(t.text.clone());
                    self.i += 1;
                }
                _ => return last,
            }
            if self.is_punct(0, '<') {
                self.skip_angles();
            }
            if self.is_punct(0, ':') && self.is_punct(1, ':') {
                self.i += 2;
                continue;
            }
            return last;
        }
    }

    fn parse_fn(&mut self, ctx: &Ctx, attr_test: bool, attr_cold: bool) {
        self.i += 1; // past `fn`
        let Some(name_tok) = self.peek(0) else { return };
        let name = name_tok.text.clone();
        let line = name_tok.line;
        self.i += 1;
        if self.is_punct(0, '<') {
            self.skip_angles();
        }
        // Parameter list.
        let mut has_self = false;
        if self.is_punct(0, '(') {
            let params_start = self.i + 1;
            self.skip_balanced('(', ')');
            let params_end = self.i.saturating_sub(1).max(params_start);
            for t in &self.toks[params_start..params_end] {
                match t.kind {
                    // `&`, `&'a`, and `mut` precede `self` in receivers.
                    Tok::Ident if t.text == "mut" => continue,
                    Tok::Ident => {
                        has_self = t.text == "self";
                        break;
                    }
                    Tok::Punct if t.text == "," => break,
                    _ => continue,
                }
            }
        }
        // Return type / where clause, then body or `;`.
        loop {
            let Some(t) = self.peek(0) else { return };
            if t.kind == Tok::Punct {
                match t.text.as_bytes()[0] {
                    b';' => {
                        self.i += 1;
                        return; // bodyless declaration
                    }
                    b'{' => break,
                    b'<' => {
                        self.skip_angles();
                        continue;
                    }
                    b'(' => {
                        self.skip_balanced('(', ')');
                        continue;
                    }
                    b'[' => {
                        self.skip_balanced('[', ']');
                        continue;
                    }
                    _ => {}
                }
            }
            self.i += 1;
        }
        let body_start = self.i + 1;
        self.skip_balanced('{', '}');
        let body_end = self.i.saturating_sub(1);
        let facts = scan_facts(&self.toks[body_start..body_end.max(body_start)]);
        self.out.fns.push(FnItem {
            name,
            self_ty: ctx.self_ty.clone(),
            trait_impl: ctx.trait_impl.clone(),
            module: ctx.module.clone(),
            line,
            is_test: ctx.in_test || attr_test,
            is_cold: attr_cold,
            has_self,
            facts,
        });
    }
}

/// Scans a function body token slice for calls and rule facts.
fn scan_facts(toks: &[Token]) -> Facts {
    let mut f = Facts::default();
    let punct = |j: usize, c: char| matches!(toks.get(j), Some(t) if t.kind == Tok::Punct && t.text.as_bytes()[0] as char == c);
    let ident = |j: usize| -> Option<&str> {
        match toks.get(j) {
            Some(t) if t.kind == Tok::Ident => Some(t.text.as_str()),
            _ => None,
        }
    };
    let mut j = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            Tok::Ident => {
                // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
                if punct(j + 1, '!')
                    && (punct(j + 2, '(') || punct(j + 2, '[') || punct(j + 2, '{'))
                {
                    let m = t.text.as_str();
                    if PANIC_MACROS.contains(&m) {
                        f.panics.push(Site {
                            what: format!("{m}!"),
                            line: t.line,
                        });
                    } else if ALLOC_MACROS.contains(&m) {
                        f.allocs.push(Site {
                            what: format!("{m}!"),
                            line: t.line,
                        });
                    }
                    j += 2;
                    continue;
                }
                // Method call: `.name(…)` or `.name::<T>(…)`.
                let prev_dot = j > 0 && punct(j - 1, '.');
                if prev_dot {
                    let mut k = j + 1;
                    if punct(k, ':') && punct(k + 1, ':') && punct(k + 2, '<') {
                        k += 2;
                        let mut depth = 0i32;
                        while k < toks.len() {
                            if punct(k, '<') {
                                depth += 1;
                            } else if punct(k, '>') {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            k += 1;
                        }
                    }
                    if punct(k, '(') {
                        let name = t.text.as_str();
                        f.calls.push(Call {
                            name: name.to_string(),
                            qualifier: None,
                            method: true,
                            line: t.line,
                        });
                        if PANIC_METHODS.contains(&name) {
                            f.panics.push(Site {
                                what: format!(".{name}()"),
                                line: t.line,
                            });
                        } else if ALLOC_METHODS.contains(&name) {
                            f.allocs.push(Site {
                                what: format!(".{name}()"),
                                line: t.line,
                            });
                        } else if BLOCK_METHODS.contains(&name) {
                            f.blocking.push(Site {
                                what: format!(".{name}()"),
                                line: t.line,
                            });
                        }
                    }
                    j += 1;
                    continue;
                }
                // Path or plain call: `a::b::c(…)`. Walk the whole path.
                if !prev_dot && ident(j).is_some() && (j == 0 || ident(j - 1) != Some("fn")) {
                    let mut segs: Vec<&str> = vec![t.text.as_str()];
                    let mut k = j + 1;
                    let mut lines = t.line;
                    while punct(k, ':') && punct(k + 1, ':') {
                        if punct(k + 2, '<') {
                            // turbofish: skip, then expect `(`
                            let mut depth = 0i32;
                            let mut m = k + 2;
                            while m < toks.len() {
                                if punct(m, '<') {
                                    depth += 1;
                                } else if punct(m, '>') {
                                    depth -= 1;
                                    if depth == 0 {
                                        m += 1;
                                        break;
                                    }
                                }
                                m += 1;
                            }
                            k = m;
                            break;
                        }
                        match ident(k + 2) {
                            Some(s) => {
                                segs.push(s);
                                lines = toks[k + 2].line;
                                k += 3;
                            }
                            None => break,
                        }
                    }
                    if punct(k, '(') && !segs.is_empty() {
                        let name = segs[segs.len() - 1];
                        let qualifier = if segs.len() >= 2 {
                            Some(segs[segs.len() - 2].to_string())
                        } else {
                            None
                        };
                        f.calls.push(Call {
                            name: name.to_string(),
                            qualifier: qualifier.clone(),
                            method: false,
                            line: lines,
                        });
                        let q = qualifier.as_deref().unwrap_or("");
                        if ALLOC_TYPES.contains(&q)
                            && matches!(name, "new" | "with_capacity" | "from" | "from_iter")
                        {
                            f.allocs.push(Site {
                                what: format!("{q}::{name}"),
                                line: lines,
                            });
                        } else if BLOCK_CALLS.contains(&name) {
                            f.blocking.push(Site {
                                what: format!("{name}()"),
                                line: lines,
                            });
                        }
                        j = k;
                        continue;
                    }
                    j = k.max(j + 1);
                    continue;
                }
                j += 1;
            }
            Tok::Punct if t.text == "[" => {
                // Index expression: `recv[…]` / `f()[…]`. Attributes (`#[`)
                // and array literals/macros are excluded because their
                // preceding token is not an ident / `)` / `]`.
                if j > 0 {
                    let prev = &toks[j - 1];
                    let is_recv = match prev.kind {
                        Tok::Ident => !matches!(
                            prev.text.as_str(),
                            // keywords that can directly precede `[`
                            "mut" | "return" | "in" | "as" | "else" | "match" | "break" | "if"
                        ),
                        Tok::Punct => prev.text == ")" || prev.text == "]",
                        _ => false,
                    };
                    if is_recv {
                        let what = if prev.kind == Tok::Ident {
                            prev.text.clone()
                        } else {
                            "<expr>".to_string()
                        };
                        f.indexing.push(Site { what, line: t.line });
                    }
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_and_impls() {
        let src = r#"
            pub struct Engine { q: Vec<u32> }
            impl Engine {
                pub fn poll(&mut self) -> Option<u32> { self.q.pop() }
            }
            impl ScheduleEngine<R> for Engine {
                fn enqueue(&mut self, r: R) { helper(r); }
            }
            fn helper(r: R) {}
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(pf.types, ["Engine"]);
        let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["poll", "enqueue", "helper"]);
        assert_eq!(pf.fns[0].self_ty.as_deref(), Some("Engine"));
        assert!(pf.fns[0].has_self);
        assert_eq!(pf.fns[1].trait_impl.as_deref(), Some("ScheduleEngine"));
        assert!(!pf.fns[2].has_self);
        assert!(pf.fns[1]
            .facts
            .calls
            .iter()
            .any(|c| c.name == "helper" && !c.method));
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = r#"
            fn hot() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { hot(); }
            }
            #[cfg(not(test))]
            fn also_hot() {}
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        let by_name = |n: &str| pf.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("hot").is_test);
        assert!(by_name("check").is_test);
        assert!(!by_name("also_hot").is_test);
    }

    #[test]
    fn facts_panic_alloc_block_index() {
        let src = r#"
            fn f(v: &mut Vec<u32>, m: &std::sync::Mutex<u32>) {
                let x = v.pop().unwrap();
                let b = Box::new(x);
                let s = format!("{x}");
                let g = m.lock();
                std::thread::sleep(d);
                let y = v[0];
                let z: Vec<u32> = v.iter().collect();
                panic!("no");
            }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        let f = &pf.fns[0].facts;
        assert!(f.panics.iter().any(|s| s.what == ".unwrap()"));
        assert!(f.panics.iter().any(|s| s.what == "panic!"));
        assert!(f.allocs.iter().any(|s| s.what == "Box::new"));
        assert!(f.allocs.iter().any(|s| s.what == "format!"));
        assert!(f.allocs.iter().any(|s| s.what == ".collect()"));
        assert!(f.blocking.iter().any(|s| s.what == ".lock()"));
        assert!(f.blocking.iter().any(|s| s.what == "sleep()"));
        assert!(f.indexing.iter().any(|s| s.what == "v"));
    }

    #[test]
    fn relaxed_sites_skip_use_decls() {
        let src = r#"
            use std::sync::atomic::Ordering::Relaxed;
            static C: AtomicU64 = AtomicU64::new(0);
            fn bump() { C.fetch_add(1, Relaxed); }
            #[cfg(test)]
            mod tests {
                use super::*;
                #[test]
                fn t() { C.load(Relaxed); }
            }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(pf.relaxed_sites.len(), 2);
        assert!(!pf.relaxed_sites[0].1, "fn site is not test code");
        assert!(pf.relaxed_sites[1].1, "test-mod site is test code");
    }

    #[test]
    fn unsafe_sites_include_impls_and_blocks() {
        let src = r#"
            unsafe impl Send for X {}
            fn f() { unsafe { core::hint::unreachable_unchecked() } }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        assert_eq!(pf.unsafe_sites.len(), 2);
    }

    #[test]
    fn turbofish_method_call_is_seen() {
        let src = "fn f(v: &[u32]) -> Vec<u32> { v.iter().collect::<Vec<u32>>() }";
        let pf = parse_file("crates/demo/src/lib.rs", src);
        assert!(pf.fns[0]
            .facts
            .allocs
            .iter()
            .any(|s| s.what == ".collect()"));
    }

    #[test]
    fn macro_bodies_are_scanned_and_array_literals_skipped() {
        let src = r#"
            fn f(xs: &[u32]) {
                assert!(xs.first().unwrap() < &10);
                let a = [0u8; 4];
                let b = vec![1, 2];
            }
        "#;
        let pf = parse_file("crates/demo/src/lib.rs", src);
        let f = &pf.fns[0].facts;
        assert!(f.panics.iter().any(|s| s.what == "assert!"));
        assert!(f.panics.iter().any(|s| s.what == ".unwrap()"));
        assert!(f.allocs.iter().any(|s| s.what == "vec!"));
        // `[0u8; 4]` after `=` is not an index expression
        assert!(!f.indexing.iter().any(|s| s.what == "a"));
    }

    #[test]
    fn integration_test_files_are_test_code() {
        let pf = parse_file("crates/demo/tests/e2e.rs", "fn f() { x.unwrap(); }");
        assert!(pf.fns[0].is_test);
    }
}
