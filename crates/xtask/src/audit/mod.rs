//! `cargo xtask audit` — whole-workspace interprocedural static audit.
//!
//! Where `xtask lint` (R1–R6) checks single lines against allowlists,
//! the audit builds a call graph over every workspace crate and proves
//! reachability properties from the declared hot-path roots: no panic
//! path (A1), no allocation (A2), and no blocking call (A3) reachable
//! from the dispatch/worker/rack loops or any `ScheduleEngine` method,
//! plus two whole-workspace discipline rules — every `Relaxed` ordering
//! needs an `audit:ordering:` justification (A4, closing lint R2's
//! aliasing gap), and every `SAFETY:` comment must name the
//! invariant-owning type (A5).
//!
//! The pipeline: [`lexer`] → [`parser`] → [`graph`] → [`rules`] →
//! [`report`] (`AUDIT.json` baseline). Everything is hand-rolled and
//! dependency-free, same offline constraint as the rest of the tree.

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

/// Free functions rooted by name: the three event loops.
pub const ROOT_FNS: &[&str] = &["run_dispatcher", "run_worker", "run_rack_scheduled"];

/// Traits whose every impl method (and default body) is a root.
pub const ROOT_TRAITS: &[&str] = &["ScheduleEngine"];

/// Types whose every `self` method is a root: the hot-path containers.
pub const ROOT_TYPES: &[&str] = &["ArenaRing", "TypedQueue", "WorkerTable"];

/// Full analysis result.
pub struct Audit {
    pub findings: Vec<rules::Finding>,
    pub suppressions: Vec<rules::Suppression>,
    /// Rendered `AUDIT.json` contents (findings included, empty when clean).
    pub json: String,
}

fn rel(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Per-crate transitive dependency closure, keyed by crate dir name.
/// Read from each `crates/<dir>/Cargo.toml`'s `[dependencies]` section
/// (`persephone-<dir>` lines); call resolution uses this to rule out
/// edges into crates the caller cannot see.
fn crate_deps(
    root: &Path,
) -> std::collections::BTreeMap<String, std::collections::BTreeSet<String>> {
    let mut deps: std::collections::BTreeMap<String, std::collections::BTreeSet<String>> =
        Default::default();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return deps;
    };
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        let Ok(toml) = std::fs::read_to_string(e.path().join("Cargo.toml")) else {
            continue;
        };
        let mut in_deps = false;
        let mut direct = std::collections::BTreeSet::new();
        for line in toml.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
            } else if in_deps {
                if let Some(rest) = line.strip_prefix("persephone-") {
                    let dep: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
                        .collect();
                    direct.insert(dep);
                }
            }
        }
        deps.insert(name, direct);
    }
    // Tiny graph: iterate to the transitive fixpoint.
    loop {
        let mut changed = false;
        let names: Vec<String> = deps.keys().cloned().collect();
        for n in &names {
            let cur = deps[n].clone();
            let mut grown = cur.clone();
            for d in &cur {
                if let Some(dd) = deps.get(d) {
                    grown.extend(dd.iter().cloned());
                }
            }
            if grown.len() != cur.len() {
                deps.insert(n.clone(), grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    deps
}

/// Runs the audit over the workspace at `root`.
pub fn analyze(root: &Path) -> Audit {
    analyze_with_overrides(root, &[])
}

/// Like [`analyze`], but file contents for workspace-relative paths in
/// `overrides` replace what is on disk. This is the mutation-test hook:
/// self-tests inject a violation into a real hot-path file in memory and
/// assert the corresponding rule fires, without touching the tree.
pub fn analyze_with_overrides(root: &Path, overrides: &[(&str, String)]) -> Audit {
    let mut paths: Vec<PathBuf> = Vec::new();
    crate::lint::collect_rs_files(root, &mut paths);
    paths.sort();

    let mut files = Vec::new();
    for path in &paths {
        let rp = rel(path, root);
        let src = match overrides.iter().find(|(p, _)| *p == rp) {
            Some((_, s)) => s.clone(),
            None => match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(_) => continue,
            },
        };
        files.push(parser::parse_file(&rp, &src));
    }

    let mut types: Vec<String> = files.iter().flat_map(|f| f.types.iter().cloned()).collect();
    types.sort();
    types.dedup();

    let deps = crate_deps(root);
    let g = graph::build(&files, ROOT_FNS, ROOT_TRAITS, ROOT_TYPES, &deps);
    let outcome = rules::run(&g, &types);

    let roots: Vec<String> = g
        .roots
        .iter()
        .map(|&id| format!("{}:{}", g.file(id).path, g.label(id)))
        .collect();
    let stats = report::Stats {
        files: files.len(),
        functions: g.fns.len(),
        edges: g.edges.iter().map(|e| e.len()).sum(),
        roots: g.roots.len(),
        reachable: g.reachable.iter().filter(|&&r| r).count(),
    };
    let json = report::render(&roots, &stats, &outcome.suppressions, &outcome.findings);
    Audit {
        findings: outcome.findings,
        suppressions: outcome.suppressions,
        json,
    }
}

/// Debug aid: prints every parsed function (with self type, flags, and
/// fact counts) for one workspace-relative file. Used when a rule seems
/// to miss or over-report — `cargo xtask audit --dump crates/core/src/dispatch/darc.rs`.
pub fn dump(root: &Path, rel_path: &str) {
    let Ok(src) = std::fs::read_to_string(root.join(rel_path)) else {
        eprintln!("xtask audit: cannot read {rel_path}");
        return;
    };
    let pf = parser::parse_file(rel_path, &src);
    for f in &pf.fns {
        println!(
            "{}:{} {}{} [test={} cold={} self={}] calls={} panics={} allocs={} blocking={} indexing={}",
            rel_path,
            f.line,
            f.self_ty.as_deref().map(|t| format!("{t}::")).unwrap_or_default(),
            f.name,
            f.is_test,
            f.is_cold,
            f.has_self,
            f.facts.calls.len(),
            f.facts.panics.len(),
            f.facts.allocs.len(),
            f.facts.blocking.len(),
            f.facts.indexing.len(),
        );
        for c in &f.facts.calls {
            println!("    call {}:{} {}", rel_path, c.line, c.name);
        }
    }
    println!(
        "{} fns, {} types, {} relaxed, {} unsafe",
        pf.fns.len(),
        pf.types.len(),
        pf.relaxed_sites.len(),
        pf.unsafe_sites.len()
    );
}

/// CLI entry: `cargo xtask audit [--json] [--write-baseline] [root]`.
///
/// Exit is non-zero on any finding, and — unless `--write-baseline` was
/// given — when the rendered report differs from the committed
/// `AUDIT.json` (the baseline must be regenerated explicitly so the diff
/// shows up in review).
pub fn cli(root: &Path, print_json: bool, write_baseline: bool) -> bool {
    let audit = analyze(root);
    if print_json {
        print!("{}", audit.json);
    }
    for f in &audit.findings {
        eprintln!(
            "{}:{}: [{}] {}{}",
            f.file,
            f.line,
            f.rule,
            f.what,
            if f.via.is_empty() {
                String::new()
            } else {
                format!("  (via {})", f.via)
            }
        );
    }
    let baseline_path = root.join("AUDIT.json");
    let mut ok = audit.findings.is_empty();
    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &audit.json) {
            eprintln!("xtask audit: cannot write {}: {e}", baseline_path.display());
            ok = false;
        } else {
            eprintln!(
                "xtask audit: baseline written to {}",
                baseline_path.display()
            );
        }
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(committed) if committed == audit.json => {}
            Ok(_) => {
                eprintln!(
                    "xtask audit: report differs from committed AUDIT.json — \
                     run `cargo xtask audit --write-baseline` and commit the diff"
                );
                ok = false;
            }
            Err(_) => {
                eprintln!(
                    "xtask audit: no committed AUDIT.json baseline — \
                     run `cargo xtask audit --write-baseline`"
                );
                ok = false;
            }
        }
    }
    if ok {
        eprintln!(
            "xtask audit: clean ({} suppressions in ledger)",
            audit.suppressions.len()
        );
    } else {
        eprintln!("xtask audit: {} finding(s)", audit.findings.len());
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("xtask lives two levels below the workspace root")
            .to_path_buf()
    }

    /// The committed workspace must audit clean — this is the self-audit:
    /// the analyzer's own source (`crates/xtask`) is part of the scan.
    #[test]
    fn real_workspace_is_audit_clean() {
        let audit = analyze(&workspace_root());
        assert!(
            audit.findings.is_empty(),
            "workspace has audit findings:\n{}",
            audit
                .findings
                .iter()
                .map(|f| format!(
                    "{}:{}: [{}] {} (via {})",
                    f.file, f.line, f.rule, f.what, f.via
                ))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The committed AUDIT.json must match a fresh render byte-for-byte.
    #[test]
    fn committed_baseline_is_current() {
        let root = workspace_root();
        let audit = analyze(&root);
        let committed = std::fs::read_to_string(root.join("AUDIT.json"))
            .expect("AUDIT.json baseline is committed at the workspace root");
        assert_eq!(
            committed, audit.json,
            "AUDIT.json is stale — run `cargo xtask audit --write-baseline`"
        );
    }

    fn read(root: &Path, rel: &str) -> String {
        std::fs::read_to_string(root.join(rel)).expect(rel)
    }

    fn findings_for<'a>(audit: &'a Audit, rule: &str, file: &str) -> Vec<&'a rules::Finding> {
        audit
            .findings
            .iter()
            .filter(|f| f.rule == rule && f.file == file)
            .collect()
    }

    /// Mutation: an `unwrap()` injected under `run_dispatcher` trips A1.
    #[test]
    fn mutation_unwrap_under_dispatcher_trips_a1() {
        let root = workspace_root();
        let rel = "crates/runtime/src/dispatcher.rs";
        let src = read(&root, rel);
        let anchor = "let mut idle_spins: u32 = 0;";
        assert!(src.contains(anchor), "anchor moved; update this test");
        let mutated = src.replace(
            anchor,
            "let mut idle_spins: u32 = 0;\n    held.first().unwrap();",
        );
        let audit = analyze_with_overrides(&root, &[(rel, mutated)]);
        let hits = findings_for(&audit, "A1", rel);
        assert!(!hits.is_empty(), "injected unwrap not caught");
        assert!(
            hits.iter().any(|f| f.via.starts_with("run_dispatcher")),
            "{:?}",
            hits[0].via
        );
    }

    /// Mutation: a `Box::new` injected under `run_worker` trips A2.
    #[test]
    fn mutation_alloc_under_worker_trips_a2() {
        let root = workspace_root();
        let rel = "crates/runtime/src/worker.rs";
        let src = read(&root, rel);
        let anchor = "let mut idle_spins: u32 = 0;";
        assert!(src.contains(anchor), "anchor moved; update this test");
        let mutated = src.replace(
            anchor,
            "let mut idle_spins: u32 = 0;\n    let _leak = Box::new(0u64);",
        );
        let audit = analyze_with_overrides(&root, &[(rel, mutated)]);
        assert!(
            !findings_for(&audit, "A2", rel).is_empty(),
            "injected Box::new not caught"
        );
    }

    /// Mutation: an unguarded `Mutex::lock` in a `ScheduleEngine` method
    /// trips A3 (engine methods are roots in their own right).
    #[test]
    fn mutation_lock_in_engine_method_trips_a3() {
        let root = workspace_root();
        let rel = "crates/core/src/dispatch/cfcfs.rs";
        let src = read(&root, rel);
        let anchor = "fn enqueue(";
        assert!(src.contains(anchor), "anchor moved; update this test");
        // Inject at the top of the enqueue body.
        let mutated = src.replacen(
            "fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> {",
            "fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R> { self.mu.lock();",
            1,
        );
        assert_ne!(mutated, src, "enqueue signature moved; update this test");
        let audit = analyze_with_overrides(&root, &[(rel, mutated)]);
        assert!(
            !findings_for(&audit, "A3", rel).is_empty(),
            "injected lock() not caught"
        );
    }

    /// Mutation: an unannotated aliased `Relaxed` trips A4 — including
    /// the `use … Ordering::{self, Relaxed}` spelling lint R2 missed.
    #[test]
    fn mutation_unannotated_relaxed_trips_a4() {
        let root = workspace_root();
        let rel = "crates/core/src/lib.rs";
        let mut src = read(&root, rel);
        src.push_str(
            "\npub fn zz_a4_probe(c: &std::sync::atomic::AtomicU64) -> u64 {\n    use std::sync::atomic::Ordering::{self, Relaxed};\n    let _ = Ordering::SeqCst;\n    c.load(Relaxed)\n}\n",
        );
        let audit = analyze_with_overrides(&root, &[(rel, src)]);
        assert!(
            !findings_for(&audit, "A4", rel).is_empty(),
            "aliased Relaxed not caught"
        );
    }

    /// Mutation: a SAFETY comment that names no type trips A5.
    #[test]
    fn mutation_vague_safety_comment_trips_a5() {
        let root = workspace_root();
        let rel = "crates/core/src/lib.rs";
        let mut src = read(&root, rel);
        src.push_str(
            "\n// SAFETY: this is fine, trust the caller\npub fn zz_a5_probe(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        let audit = analyze_with_overrides(&root, &[(rel, src)]);
        assert!(
            !findings_for(&audit, "A5", rel).is_empty(),
            "vague SAFETY not caught"
        );
    }

    /// Mutation: deleting a line a suppression excuses turns the marker
    /// itself into a finding (stale allowances fail the build).
    #[test]
    fn mutation_stale_suppression_is_flagged() {
        let root = workspace_root();
        let rel = "crates/core/src/lib.rs";
        let mut src = read(&root, rel);
        src.push_str(
            "\npub fn zz_stale_probe() {\n    // audit:allow(A1): excuse for a line that does not exist\n    let _x = 1u64;\n}\n",
        );
        let audit = analyze_with_overrides(&root, &[(rel, src)]);
        assert!(
            audit
                .findings
                .iter()
                .any(|f| f.rule == "suppression" && f.file == rel),
            "stale suppression not flagged"
        );
    }

    /// Torture fixture: the lexer/parser must survive pathological but
    /// valid Rust and still extract the right call edges.
    #[test]
    fn torture_fixture_parses_with_correct_edges() {
        let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/audit/torture.rs");
        let src = std::fs::read_to_string(&fixture).expect("torture fixture present");
        let pf = parser::parse_file("crates/demo/src/torture.rs", &src);
        let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"entry"), "{names:?}");
        assert!(names.contains(&"called_for_real"), "{names:?}");
        assert!(
            !names.contains(&"phantom"),
            "fn inside raw string must not parse: {names:?}"
        );
        let entry = pf.fns.iter().find(|f| f.name == "entry").unwrap();
        assert!(
            entry
                .facts
                .calls
                .iter()
                .any(|c| c.name == "called_for_real"),
            "call edge through the torture constructs survives"
        );
        assert!(
            !entry.facts.calls.iter().any(|c| c.name == "never_called"),
            "identifiers inside strings/comments must not become edges"
        );
        let gated = pf.fns.iter().find(|f| f.name == "cfg_gated").unwrap();
        assert!(gated.is_test, "#[cfg(test)] item is test code");
    }

    /// The analyzer finishes well inside the 5 s acceptance budget.
    #[test]
    fn audit_is_fast() {
        let root = workspace_root();
        let t0 = std::time::Instant::now();
        let _ = analyze(&root);
        assert!(t0.elapsed().as_secs() < 5, "audit took {:?}", t0.elapsed());
    }
}
