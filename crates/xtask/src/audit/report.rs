//! `AUDIT.json` rendering: a stable, diffable snapshot of the audit —
//! the root set, rule inventory, graph stats, and the full suppression
//! ledger. Committed at the workspace root and byte-diffed in CI (same
//! workflow as the `BENCH_*.json` trajectory): any change to findings or
//! allowances must arrive as an explicit `--write-baseline` diff.
//!
//! Suppression entries deliberately omit line numbers — the ledger keys
//! on (file, rule, reason) with a count, so unrelated edits in the same
//! file do not churn the baseline. Staleness is enforced separately by
//! the unused-suppression rule at analysis time.

use std::collections::BTreeMap;

use super::rules::{Finding, Suppression};

/// Graph-level counters surfaced in the baseline.
pub struct Stats {
    pub files: usize,
    pub functions: usize,
    pub edges: usize,
    pub roots: usize,
    pub reachable: usize,
}

const RULES: &[(&str, &str)] = &[
    (
        "A1",
        "no panic path (unwrap/expect/panic!/indexing on non-exempt types) reachable from a root",
    ),
    (
        "A2",
        "no allocation reachable from a root outside pre-warmed arenas and #[cold] paths",
    ),
    (
        "A3",
        "no blocking call reachable from a root outside the idle-backoff ladder",
    ),
    (
        "A4",
        "every Relaxed ordering site carries an `audit:ordering:` justification",
    ),
    (
        "A5",
        "every unsafe site's SAFETY: comment names the invariant-owning type",
    ),
];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the baseline document. `roots` are resolved root labels
/// (`file:Type::fn`), pre-sorted by the caller or sorted here.
pub fn render(
    roots: &[String],
    stats: &Stats,
    suppressions: &[Suppression],
    findings: &[Finding],
) -> String {
    let mut roots = roots.to_vec();
    roots.sort();
    roots.dedup();

    // Ledger: (file, rule, reason) -> count.
    let mut ledger: BTreeMap<(String, String, String), u32> = BTreeMap::new();
    for s in suppressions {
        *ledger
            .entry((s.file.clone(), s.rule.clone(), s.reason.clone()))
            .or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"persephone-audit/v1\",\n");
    out.push_str("  \"rules\": {\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        let comma = if i + 1 < RULES.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": \"{}\"{}\n", id, esc(desc), comma));
    }
    out.push_str("  },\n");
    out.push_str("  \"roots\": [\n");
    for (i, r) in roots.iter().enumerate() {
        let comma = if i + 1 < roots.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\"{}\n", esc(r), comma));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"stats\": {{ \"files\": {}, \"functions\": {}, \"edges\": {}, \"roots\": {}, \"reachable\": {} }},\n",
        stats.files, stats.functions, stats.edges, stats.roots, stats.reachable
    ));
    out.push_str("  \"suppressions\": [\n");
    let n = ledger.len();
    for (i, ((file, rule, reason), count)) in ledger.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"file\": \"{}\", \"rule\": \"{}\", \"count\": {}, \"reason\": \"{}\" }}{}\n",
            esc(file),
            esc(rule),
            count,
            esc(reason),
            comma
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"what\": \"{}\", \"via\": \"{}\" }}{}\n",
            esc(&f.rule),
            esc(&f.file),
            f.line,
            esc(&f.what),
            esc(&f.via),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_escapes() {
        let stats = Stats {
            files: 1,
            functions: 2,
            edges: 3,
            roots: 1,
            reachable: 2,
        };
        let sup = vec![
            Suppression {
                file: "crates/a/src/lib.rs".into(),
                line: 10,
                rule: "A1".into(),
                reason: "spawn-time \"check\"".into(),
                used: true,
            },
            Suppression {
                file: "crates/a/src/lib.rs".into(),
                line: 20,
                rule: "A1".into(),
                reason: "spawn-time \"check\"".into(),
                used: true,
            },
        ];
        let a = render(&["b".into(), "a".into()], &stats, &sup, &[]);
        let b = render(&["a".into(), "b".into()], &stats, &sup, &[]);
        assert_eq!(a, b, "root order does not leak into output");
        assert!(a.contains("\\\"check\\\""));
        assert!(
            a.contains("\"count\": 2"),
            "identical suppressions merge: {a}"
        );
        assert!(a.contains("\"findings\": [\n  ]"), "{a}");
    }
}
