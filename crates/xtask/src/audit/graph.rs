//! Workspace call graph: flattens every parsed function into one index,
//! resolves call expressions to candidate definitions by name (with
//! qualifier narrowing), and computes reachability from the declared
//! hot-path roots.
//!
//! Resolution is deliberately conservative: an unqualified name that
//! matches several workspace functions links to all of them. A spurious
//! edge costs at most one suppression; a missing edge is a hole in the
//! audit. Two traversal boundaries keep the over-approximation honest:
//!
//! * `#[cold]` functions are frontier nodes — reachability stops at
//!   them. Cold reconfiguration paths (arena growth, allocation-matrix
//!   install) are *allowed* to allocate; that is the paper's design.
//! * Boundary method names (`handle`, `classify`, `report`, `merged`)
//!   are dyn-dispatch seams: the app handler boundary (handler cost IS
//!   the measured workload, not dispatch machinery) and the teardown
//!   reporting boundary (runs once, after the loop exits).

use std::collections::BTreeMap;

use super::parser::{FnItem, ParsedFile};

/// Method names whose call edges are not traversed (see module docs).
pub const BOUNDARY_METHODS: &[&str] = &["handle", "classify", "report", "merged"];

/// Crates excluded from edge targets and roots (file-scope rules A4/A5
/// still apply to them):
///
/// * `check` — the model checker itself; its `Core`/`Execution` shims are
///   lock-based test infrastructure sharing method names (`load`,
///   `store`, `lock`) with the production atomics.
/// * `store` — the application workload (the paper's KV store). It runs
///   behind the `handle` boundary: its cost IS the measured service
///   time, not dispatch machinery.
/// * `sim` — the virtual-time experiment driver; it hosts the engines
///   but its own loop is not the wall-clock hot path.
pub const EXCLUDED_CRATES: &[&str] = &["check", "store", "sim"];

/// Trait methods that are *not* rooted: they run once at wiring or
/// teardown (`set_telemetry` before the loop starts, `report` and
/// `drain_all` after it exits — engine.rs documents `drain_all` as
/// "orderly teardown"), not per request.
pub const ROOT_EXCLUDE_METHODS: &[&str] = &["report", "set_telemetry", "drain_all"];

/// The flattened workspace: every function with its file, plus edges.
pub struct Graph<'a> {
    pub files: &'a [ParsedFile],
    /// (file index, fn index) per flattened id.
    pub fns: Vec<(usize, usize)>,
    /// Outgoing call edges per flattened id.
    pub edges: Vec<Vec<usize>>,
    /// BFS predecessor for reachable nodes (for `via` diagnostics).
    pub pred: Vec<Option<usize>>,
    /// Reachability from the root set (cold/test/boundary rules applied).
    pub reachable: Vec<bool>,
    /// Ids that were selected as roots.
    pub roots: Vec<usize>,
}

impl<'a> Graph<'a> {
    pub fn item(&self, id: usize) -> &'a FnItem {
        let (fi, ni) = self.fns[id];
        &self.files[fi].fns[ni]
    }

    pub fn file(&self, id: usize) -> &'a ParsedFile {
        let (fi, _) = self.fns[id];
        &self.files[fi]
    }

    /// Human-readable `crate::Type::fn` label.
    pub fn label(&self, id: usize) -> String {
        let it = self.item(id);
        match &it.self_ty {
            Some(ty) => format!("{}::{}", ty, it.name),
            None => it.name.clone(),
        }
    }

    /// Root-to-here call chain, e.g. `run_dispatcher → poll → helper`.
    pub fn via(&self, id: usize) -> String {
        let mut chain = vec![self.label(id)];
        let mut cur = id;
        while let Some(p) = self.pred[cur] {
            chain.push(self.label(p));
            cur = p;
        }
        chain.reverse();
        chain.join(" → ")
    }
}

/// File-stem of a workspace-relative path (`queue` for `…/src/queue.rs`).
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

/// True when `qualifier` plausibly names the definition site of `it`
/// (its impl type, file, in-file module, or crate).
fn qualifier_matches(qualifier: &str, it: &FnItem, file: &ParsedFile) -> bool {
    if it.self_ty.as_deref() == Some(qualifier) {
        return true;
    }
    if file_stem(&file.path) == qualifier {
        return true;
    }
    if it.module.iter().any(|m| m == qualifier) {
        return true;
    }
    // `persephone_core::helper(…)` → crate dir `core`.
    if let Some(suffix) = qualifier.strip_prefix("persephone_") {
        if suffix == file.crate_name {
            return true;
        }
    }
    qualifier == file.crate_name
}

/// True when a call in `caller` may target a function in `callee`:
/// same crate, or `callee` is in `caller`'s transitive dependency
/// closure. An empty map disables the filter (unit-test graphs).
fn crate_allowed(
    deps: &BTreeMap<String, std::collections::BTreeSet<String>>,
    caller: &str,
    callee: &str,
) -> bool {
    caller == callee || deps.is_empty() || deps.get(caller).is_some_and(|d| d.contains(callee))
}

/// Builds the call graph and runs reachability from the given roots.
///
/// `root_fns` selects free functions by name; `root_traits` selects every
/// method of every `impl Trait for …` block (and trait default bodies)
/// whose trait name matches; `root_types` selects every method of the
/// named types. `deps` is the per-crate transitive dependency closure
/// (dir names); candidates outside the caller's closure are pruned —
/// `core` cannot call into `sim`, so a name collision there is noise.
pub fn build<'a>(
    files: &'a [ParsedFile],
    root_fns: &[&str],
    root_traits: &[&str],
    root_types: &[&str],
    deps: &BTreeMap<String, std::collections::BTreeSet<String>>,
) -> Graph<'a> {
    let mut fns = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ni, _) in f.fns.iter().enumerate() {
            fns.push((fi, ni));
        }
    }
    // Name index over non-test functions outside excluded crates.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, &(fi, ni)) in fns.iter().enumerate() {
        let it = &files[fi].fns[ni];
        if !it.is_test
            && !files[fi].file_is_test
            && !EXCLUDED_CRATES.contains(&files[fi].crate_name.as_str())
        {
            by_name.entry(it.name.as_str()).or_default().push(id);
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (id, &(fi, ni)) in fns.iter().enumerate() {
        let caller = &files[fi].fns[ni];
        if caller.is_test || files[fi].file_is_test {
            continue;
        }
        for call in &caller.facts.calls {
            if call.method && BOUNDARY_METHODS.contains(&call.name.as_str()) {
                continue;
            }
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            let cands: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let (cfi, _) = fns[c];
                    crate_allowed(deps, &files[fi].crate_name, &files[cfi].crate_name)
                })
                .collect();
            if cands.is_empty() {
                continue;
            }
            let mut chosen: Vec<usize> = Vec::new();
            if call.method {
                // Method call: any workspace method of that name.
                chosen.extend(cands.iter().filter(|&&c| {
                    let (cfi, cni) = fns[c];
                    files[cfi].fns[cni].has_self
                }));
            } else if let Some(q) = &call.qualifier {
                let q = if q == "Self" {
                    caller.self_ty.clone().unwrap_or_default()
                } else {
                    q.clone()
                };
                chosen.extend(cands.iter().filter(|&&c| {
                    let (cfi, cni) = fns[c];
                    qualifier_matches(&q, &files[cfi].fns[cni], &files[cfi])
                }));
                if chosen.is_empty() && !q.is_empty() {
                    // Unknown qualifier (std type, renamed import): treat as
                    // external rather than linking to every same-named fn.
                    continue;
                }
            } else {
                // Plain call: prefer same-crate free functions.
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let (cfi, _) = fns[c];
                        files[cfi].crate_name == files[fi].crate_name
                    })
                    .collect();
                let pool = if same_crate.is_empty() {
                    cands.clone()
                } else {
                    same_crate
                };
                let free: Vec<usize> = pool
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let (cfi, cni) = fns[c];
                        !files[cfi].fns[cni].has_self
                    })
                    .collect();
                chosen.extend(if free.is_empty() { pool } else { free });
            }
            for c in chosen {
                if c != id && !edges[id].contains(&c) {
                    edges[id].push(c);
                }
            }
        }
    }

    // Root selection. `report`/`set_telemetry` are wiring/teardown, not
    // per-request; ROOT_TYPES only roots `self` methods (constructors
    // and associated helpers are setup, reached through real roots when
    // they matter).
    let mut roots = Vec::new();
    for (id, &(fi, ni)) in fns.iter().enumerate() {
        let it = &files[fi].fns[ni];
        if it.is_test
            || files[fi].file_is_test
            || EXCLUDED_CRATES.contains(&files[fi].crate_name.as_str())
            || ROOT_EXCLUDE_METHODS.contains(&it.name.as_str())
        {
            continue;
        }
        let is_root = root_fns.contains(&it.name.as_str())
            || it
                .trait_impl
                .as_deref()
                .is_some_and(|t| root_traits.contains(&t))
            || it
                .self_ty
                .as_deref()
                .is_some_and(|t| root_traits.contains(&t))
            || (it.has_self
                && it
                    .self_ty
                    .as_deref()
                    .is_some_and(|t| root_types.contains(&t)));
        if is_root {
            roots.push(id);
        }
    }

    // BFS; do not expand test or #[cold] nodes.
    let mut reachable = vec![false; fns.len()];
    let mut pred: Vec<Option<usize>> = vec![None; fns.len()];
    let mut queue = std::collections::VecDeque::new();
    for &r in &roots {
        if !reachable[r] {
            reachable[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        let (fi, ni) = fns[u];
        if files[fi].fns[ni].is_cold {
            continue; // frontier: the cold path is exempt by design
        }
        for &v in &edges[u] {
            if !reachable[v] {
                reachable[v] = true;
                pred[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    Graph {
        files,
        fns,
        edges,
        pred,
        reachable,
        roots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::parser::parse_file;

    fn ws(srcs: &[(&str, &str)]) -> Vec<ParsedFile> {
        srcs.iter().map(|(p, s)| parse_file(p, s)).collect()
    }

    #[test]
    fn reachability_stops_at_cold() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            r#"
            pub fn run_dispatcher() { hot_helper(); }
            fn hot_helper() { grow(); }
            #[cold]
            fn grow() { deep(); }
            fn deep() {}
            fn unrelated() {}
            "#,
        )]);
        let g = build(&files, &["run_dispatcher"], &[], &[], &BTreeMap::new());
        let id = |name: &str| (0..g.fns.len()).find(|&i| g.item(i).name == name).unwrap();
        assert!(g.reachable[id("hot_helper")]);
        assert!(
            g.reachable[id("grow")],
            "cold fn is a reachable frontier node"
        );
        assert!(!g.reachable[id("deep")], "but nothing past it is");
        assert!(!g.reachable[id("unrelated")]);
    }

    #[test]
    fn trait_impl_methods_are_roots() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            r#"
            impl ScheduleEngine<R> for Engine {
                fn poll(&mut self) { self.inner_poll(); }
            }
            impl Engine {
                fn inner_poll(&mut self) {}
                fn not_reached(&mut self) {}
            }
            "#,
        )]);
        let g = build(&files, &[], &["ScheduleEngine"], &[], &BTreeMap::new());
        let id = |name: &str| (0..g.fns.len()).find(|&i| g.item(i).name == name).unwrap();
        assert!(g.reachable[id("poll")]);
        assert!(g.reachable[id("inner_poll")]);
        assert!(!g.reachable[id("not_reached")]);
    }

    #[test]
    fn boundary_methods_are_not_traversed() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            r#"
            pub fn run_worker(h: &dyn Handler) { h.handle(1); }
            impl KvHandler { fn handle(&self, x: u32) { self.app_alloc(); } }
            impl KvHandler { fn app_alloc(&self) {} }
            "#,
        )]);
        let g = build(&files, &["run_worker"], &[], &[], &BTreeMap::new());
        let id = |name: &str| (0..g.fns.len()).find(|&i| g.item(i).name == name).unwrap();
        assert!(!g.reachable[id("handle")], "dyn app boundary");
        assert!(!g.reachable[id("app_alloc")]);
    }

    #[test]
    fn qualifier_narrows_resolution() {
        let files = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn run_dispatcher() { wire::decode(); }",
            ),
            ("crates/a/src/wire.rs", "pub fn decode() {}"),
            (
                "crates/b/src/other.rs",
                "pub fn decode() { std::thread::sleep(d); }",
            ),
        ]);
        let g = build(&files, &["run_dispatcher"], &[], &[], &BTreeMap::new());
        let reach: Vec<String> = (0..g.fns.len())
            .filter(|&i| g.reachable[i])
            .map(|i| format!("{}:{}", g.file(i).path, g.item(i).name))
            .collect();
        assert!(reach.contains(&"crates/a/src/wire.rs:decode".to_string()));
        assert!(
            !reach.iter().any(|s| s.starts_with("crates/b/")),
            "{reach:?}"
        );
    }

    #[test]
    fn calls_from_test_code_do_not_leak_roots() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            r#"
            fn quiet() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { run_dispatcher(); quiet(); }
            }
            pub fn run_dispatcher() {}
            "#,
        )]);
        let g = build(&files, &["run_dispatcher"], &[], &[], &BTreeMap::new());
        let id = |name: &str| (0..g.fns.len()).find(|&i| g.item(i).name == name).unwrap();
        assert!(!g.reachable[id("quiet")]);
    }

    #[test]
    fn root_types_select_methods() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            r#"
            impl ArenaRing {
                pub fn push(&mut self) { self.bump(); }
                fn bump(&mut self) {}
            }
            "#,
        )]);
        let g = build(&files, &[], &[], &["ArenaRing"], &BTreeMap::new());
        assert!(g.reachable.iter().all(|&r| r), "both methods reachable");
    }

    #[test]
    fn via_chain_reads_root_first() {
        let files = ws(&[(
            "crates/demo/src/lib.rs",
            "pub fn run_dispatcher() { mid(); } fn mid() { leaf(); } fn leaf() {}",
        )]);
        let g = build(&files, &["run_dispatcher"], &[], &[], &BTreeMap::new());
        let leaf = (0..g.fns.len())
            .find(|&i| g.item(i).name == "leaf")
            .unwrap();
        assert_eq!(g.via(leaf), "run_dispatcher → mid → leaf");
    }
}
