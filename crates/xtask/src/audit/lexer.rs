//! Hand-rolled Rust lexer for the audit pass.
//!
//! Produces a flat token stream with line numbers plus a separate comment
//! stream (comments carry the audit markers: `SAFETY:`, `audit:allow`,
//! `audit:ordering`). Handles the lexical corners that break naive
//! line-oriented scanners: raw strings with arbitrary `#` fences, nested
//! block comments, byte/char literals vs. lifetimes (`b'\''` vs `'a`),
//! and string escapes. No external dependencies; the parser consumes the
//! token stream directly.

/// Token classification. Keywords are ordinary `Ident`s — the parser
/// matches on text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `r#ident` raw identifiers).
    Ident,
    /// Lifetime (`'a`, `'static`). Text excludes the quote.
    Lifetime,
    /// Char or byte literal (`'x'`, `b'\''`). Text is blanked to `'?'`.
    Char,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). Blanked.
    Str,
    /// Numeric literal (`0xFF`, `1_000`, `2.5e3`, `23u64`).
    Num,
    /// Single punctuation character (`:`, `<`, `!`, …). Multi-char
    /// operators appear as adjacent tokens; the parser re-joins them.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Tok,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block), with its full text and line span.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: code tokens and comments, both in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes a whole source file. Never panics on malformed input — on an
/// unterminated literal it consumes to end of file, which is the safe
/// over-approximation for an auditor (the compiler will reject the file
/// anyway).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.tokens.push(tok(Tok::Str, "\"\"", line));
            }
            b'\'' => {
                // Lifetime vs. char literal: a char literal closes with a
                // quote after one (possibly escaped) char; a lifetime is
                // `'` + ident with no closing quote.
                if let Some(next) = char_literal_end(b, i) {
                    i = next;
                    out.tokens.push(tok(Tok::Char, "'?'", line));
                } else {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(tok(Tok::Lifetime, &src[start..i], line));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let ch = b[i];
                    if is_ident_char(ch) {
                        i += 1;
                    } else if ch == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        // fractional part — but not `1..3` range syntax
                        i += 2;
                    } else if (ch == b'+' || ch == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && !src[start..i].starts_with("0x")
                    {
                        i += 1; // exponent sign: `2.5e-3`
                    } else {
                        break;
                    }
                }
                out.tokens.push(tok(Tok::Num, &src[start..i], line));
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_char(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // Literal prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…',
                // and raw identifiers r#ident.
                if i < b.len() {
                    match (word, b[i]) {
                        ("r" | "br" | "b", b'"') => {
                            i = if word == "r" || word == "br" {
                                skip_raw_string(b, i, 0, &mut line)
                            } else {
                                skip_string(b, i, &mut line)
                            };
                            out.tokens.push(tok(Tok::Str, "\"\"", line));
                            continue;
                        }
                        ("r" | "br", b'#') => {
                            // Count fence hashes; if a quote follows it is a
                            // raw string, otherwise `r#ident`.
                            let mut j = i;
                            while j < b.len() && b[j] == b'#' {
                                j += 1;
                            }
                            if j < b.len() && b[j] == b'"' {
                                i = skip_raw_string(b, j, j - i, &mut line);
                                out.tokens.push(tok(Tok::Str, "\"\"", line));
                                continue;
                            }
                            if word == "r" && j == i + 1 && j < b.len() && is_ident_start(b[j]) {
                                let id_start = j;
                                let mut k = j;
                                while k < b.len() && is_ident_char(b[k]) {
                                    k += 1;
                                }
                                out.tokens.push(tok(Tok::Ident, &src[id_start..k], line));
                                i = k;
                                continue;
                            }
                        }
                        ("b", b'\'') => {
                            if let Some(next) = char_literal_end(b, i) {
                                i = next;
                                out.tokens.push(tok(Tok::Char, "'?'", line));
                                continue;
                            }
                        }
                        _ => {}
                    }
                }
                out.tokens.push(tok(Tok::Ident, word, line));
            }
            _ => {
                out.tokens.push(Token {
                    kind: Tok::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn tok(kind: Tok, text: &str, line: u32) -> Token {
    Token {
        kind,
        text: text.to_string(),
        line,
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// If `b[i]` opens a char literal (`'`), returns the index just past the
/// closing quote, or `None` if this is a lifetime.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    debug_assert!(b[i] == b'\'');
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: consume the escape (handles `'\''`, `'\\'`,
        // `'\u{1F600}'`, `'\x7f'`).
        j += 1;
        if j < b.len() && b[j] == b'u' {
            j += 1;
            if j < b.len() && b[j] == b'{' {
                while j < b.len() && b[j] != b'}' {
                    j += 1;
                }
                j += 1;
            }
        } else if j < b.len() && b[j] == b'x' {
            j += 3;
        } else {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' {
            return Some(j + 1);
        }
        return None;
    }
    // Unescaped: exactly one char (possibly multi-byte UTF-8) then a quote.
    let mut k = j + 1;
    while k < b.len() && (b[k] & 0xC0) == 0x80 {
        k += 1; // skip UTF-8 continuation bytes
    }
    if k < b.len() && b[k] == b'\'' && b[j] != b'\'' {
        return Some(k + 1);
    }
    None
}

/// Skips a plain (escaped) string starting at the opening quote; returns
/// the index past the closing quote.
fn skip_string(b: &[u8], open: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string whose opening quote is at `open` with `hashes`
/// fence characters; returns the index past the closing fence.
fn skip_raw_string(b: &[u8], open: usize, hashes: usize, line: &mut u32) -> usize {
    let mut i = open + 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut n = 0usize;
            while j < b.len() && b[j] == b'#' && n < hashes {
                j += 1;
                n += 1;
            }
            if n == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Tok, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn foo(x: u32) -> u32 { x }");
        assert_eq!(t[0], (Tok::Ident, "fn".into()));
        assert_eq!(t[1], (Tok::Ident, "foo".into()));
        assert!(t.iter().any(|(k, s)| *k == Tok::Punct && s == "{"));
    }

    #[test]
    fn raw_string_with_hashes_hides_quotes() {
        let l = lex(r####"let s = r##"a "quoted" } fn bogus("##; call();"####);
        let names: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["let", "s", "call"]);
        // nothing inside the raw string leaked as a token
        assert!(!names.contains(&"bogus"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        let names: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn byte_char_with_escaped_quote() {
        let l = lex(r"let q = b'\''; let r = b'a'; next()");
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(chars, 2);
        assert!(l.tokens.iter().any(|t| t.text == "next"));
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == Tok::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 1);
    }

    #[test]
    fn lifetime_in_turbofish() {
        let l = lex("iter::<'static, u8>(x)");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == Tok::Lifetime && t.text == "static"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nbottom()";
        let l = lex(src);
        let bottom = l.tokens.iter().find(|t| t.text == "bottom").unwrap();
        assert_eq!(bottom.line, 4);
    }

    #[test]
    fn comments_keep_lines() {
        let src = "// one\n/* two\nthree */\nfour()";
        let l = lex(src);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[1].end_line, 3);
        assert_eq!(l.tokens[0].line, 4);
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == Tok::Ident && s == "type"));
    }

    #[test]
    fn numeric_literals() {
        let t = kinds("0xFF 1_000u64 2.5e-3 23");
        assert_eq!(t.iter().filter(|(k, _)| *k == Tok::Num).count(), 4);
    }
}
