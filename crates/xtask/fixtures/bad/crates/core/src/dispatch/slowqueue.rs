// Seeded violation: pointer-chasing std containers in a request-plane
// module (R6-dense).
use std::collections::{HashMap, VecDeque};

pub struct SlowQueues {
    pub by_type: HashMap<u32, VecDeque<u64>>,
}
