// Seeded violation: wall-clock time in a virtual-time crate (R3).
pub fn now_ns() -> u128 {
    let t = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    t.elapsed().as_nanos()
}
