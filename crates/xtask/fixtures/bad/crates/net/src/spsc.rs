// Seeded violation: this path IS allowlisted for unsafe, but the block
// below carries no SAFETY comment (R1-safety).
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
