// Seeded violations: Relaxed outside the allowlist (R2) and hot-path
// style breaches (R4: println! and .unwrap()).
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn dispatch(depth: &AtomicUsize, queue: &mut Vec<u64>) {
    depth.fetch_add(1, Ordering::Relaxed);
    let req = queue.pop().unwrap();
    println!("dispatching {req}");
}
