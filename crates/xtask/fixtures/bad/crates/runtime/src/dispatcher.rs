// Seeded violations: Relaxed outside the allowlist (R2, both the
// qualified path and the use-aliased bare form) and hot-path style
// breaches (R4: println! and .unwrap()).
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn dispatch(depth: &AtomicUsize, queue: &mut Vec<u64>) {
    depth.fetch_add(1, Ordering::Relaxed);
    let req = queue.pop().unwrap();
    println!("dispatching {req}");
}

pub fn aliased_depth(depth: &AtomicUsize) -> usize {
    // The R2 aliasing gap: no `Ordering::Relaxed` literal on this line.
    depth.load(Relaxed)
}
