// Seeded violations: unsafe outside the allowlist (R1-confine) in a
// crate without unsafe-fn hygiene (R5-unsafe-fn).
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
