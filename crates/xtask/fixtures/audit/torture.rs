//! Lexer/parser torture fixture. Every construct here is valid Rust that
//! breaks naive line- or regex-based scanners. The audit self-test
//! asserts the extracted item list and call edges — see
//! `audit::tests::torture_fixture_parses_with_correct_edges`.

/* block comment /* nested /* twice */ */ with a fake fn phantom() inside */

pub struct Torture<'a> {
    pub name: &'a str,
}

pub fn entry(t: &Torture<'_>) -> usize {
    // A raw string with hashes containing things that look like code:
    let decoy = r##"fn phantom() { never_called(); } " unbalanced { brace"##;
    // Byte char literal of an escaped quote, then a plain byte char:
    let q = b'\'';
    let a = b'a';
    // Lifetime in a turbofish next to a real call:
    let v = collect_ids::<'static>(t);
    // A char that looks like a lifetime and a lifetime that looks like a char:
    let c = 'x';
    let s: &'static str = "never_called()";
    // Macro body with nested brackets and a real call inside:
    let m = my_sum!(1, [2, 3], { called_for_real(t) });
    decoy.len() + q as usize + a as usize + v + c as usize + s.len() + m
}

fn collect_ids<'a>(_t: &Torture<'a>) -> usize {
    0
}

fn called_for_real(_t: &Torture<'_>) -> usize {
    0
}

fn never_called() -> usize {
    0
}

#[cfg(test)]
fn cfg_gated() {
    never_called();
}

macro_rules! my_sum {
    ($($x:tt)*) => { 0 };
}
