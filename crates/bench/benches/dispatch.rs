//! Dispatch-engine microbenchmarks: the enqueue → poll → complete cycle
//! of Algorithm 1, the dispatcher's per-request critical path.

use persephone_bench::crit::{criterion_group, criterion_main, Criterion, Throughput};
use persephone_core::dispatch::{
    CfcfsEngine, DarcEngine, EngineConfig, EngineMode, ScheduleEngine,
};
use persephone_core::time::Nanos;
use persephone_core::types::{TypeId, WorkerId};
use std::hint::black_box;

fn config(workers: usize) -> (EngineConfig, [Option<Nanos>; 2]) {
    let mut cfg = EngineConfig::darc(workers);
    // Huge window so reservation updates never fire inside the benchmark.
    cfg.profiler.min_samples = u64::MAX;
    let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
    (cfg, hints)
}

fn engine(workers: usize, mode: EngineMode) -> DarcEngine<u64> {
    let (mut cfg, hints) = config(workers);
    cfg.mode = mode;
    DarcEngine::new(cfg, 2, &hints)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.throughput(Throughput::Elements(1));

    g.bench_function("darc_enqueue_poll_complete", |b| {
        let mut eng = engine(14, EngineMode::Dynamic);
        let mut i = 0u64;
        b.iter(|| {
            let ty = TypeId::new((i % 2) as u32);
            let now = Nanos::from_nanos(i);
            eng.enqueue(ty, i, now).unwrap();
            let d = eng.poll(now).expect("a worker is free");
            eng.complete(d.worker, Nanos::from_micros(1), now);
            i += 1;
            black_box(&eng);
        });
    });

    g.bench_function("cfcfs_enqueue_poll_complete", |b| {
        let (cfg, hints) = config(14);
        let mut eng: CfcfsEngine<u64> = CfcfsEngine::new(cfg, 2, &hints);
        let mut i = 0u64;
        b.iter(|| {
            let ty = TypeId::new((i % 2) as u32);
            let now = Nanos::from_nanos(i);
            eng.enqueue(ty, i, now).unwrap();
            let d = eng.poll(now).expect("a worker is free");
            eng.complete(d.worker, Nanos::from_micros(1), now);
            i += 1;
            black_box(&eng);
        });
    });

    // The expensive path: all workers busy, queues deep — poll must scan
    // and fail.
    g.bench_function("darc_poll_no_free_worker", |b| {
        let mut eng = engine(14, EngineMode::Dynamic);
        let now = Nanos::ZERO;
        for i in 0..14 {
            eng.enqueue(TypeId::new((i % 2) as u32), i, now).unwrap();
        }
        while eng.poll(now).is_some() {}
        for i in 0..100 {
            eng.enqueue(TypeId::new((i % 2) as u32), i, now).unwrap();
        }
        b.iter(|| black_box(eng.poll(now).is_none()));
    });

    g.bench_function("complete_with_profiling", |b| {
        let mut eng = engine(2, EngineMode::Dynamic);
        let now = Nanos::ZERO;
        b.iter(|| {
            eng.enqueue(TypeId::new(0), 1, now).unwrap();
            let d = eng.poll(now).unwrap();
            // This is the paper's "record completion ≈75 cycles" plus the
            // free-worker bookkeeping.
            eng.complete(black_box(d.worker), Nanos::from_micros(1), now);
        });
    });

    // Ensure WorkerId is exercised under black_box to keep symbols alive.
    g.bench_function("worker_id_index", |b| {
        b.iter(|| black_box(WorkerId::new(7).index()));
    });

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
