//! Request-classifier microbenchmarks (paper §4.2, §5.1).
//!
//! The paper's header-based classifier adds "a one-time ≈100 ns overhead
//! to each request" and the dispatcher sustains up to 7 M packets/s.

use persephone_bench::crit::{criterion_group, criterion_main, Criterion, Throughput};
use persephone_core::classifier::{Classifier, FnClassifier, HeaderClassifier, RandomClassifier};
use persephone_core::types::TypeId;
use persephone_net::wire;
use std::hint::black_box;

fn bench_classifiers(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(1));

    // A realistic wire message with the type in the header.
    let mut msg = vec![0u8; 64];
    let len = wire::encode_request(&mut msg, 3, 42, b"GET key00002500").unwrap();
    msg.truncate(len);

    g.bench_function("header_classifier", |b| {
        let mut cl = HeaderClassifier::new(wire::TYPE_OFFSET, 5);
        b.iter(|| black_box(cl.classify(black_box(&msg))));
    });

    g.bench_function("random_classifier", |b| {
        let mut cl = RandomClassifier::new(5, 7);
        b.iter(|| black_box(cl.classify(black_box(&msg))));
    });

    // A content-inspecting classifier (the "arbitrarily complex" case):
    // parses the text payload to find the command verb.
    g.bench_function("payload_parsing_classifier", |b| {
        let mut cl = FnClassifier::new(|payload: &[u8]| {
            let body = payload.get(wire::HEADER_LEN..).unwrap_or(&[]);
            if body.starts_with(b"GET") {
                TypeId::new(0)
            } else if body.starts_with(b"SCAN") {
                TypeId::new(1)
            } else if body.starts_with(b"PUT") {
                TypeId::new(2)
            } else {
                TypeId::UNKNOWN
            }
        });
        b.iter(|| black_box(cl.classify(black_box(&msg))));
    });

    g.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
