//! Hot-path microbenchmarks behind the committed `BENCH_hotpath.json`
//! trajectory: per-policy dispatch-cycle cost on the dense request
//! plane, the DARC decision paths, and the sharded-cycle cost.
//!
//! The scenario CLI (`scenario run scenarios/hotpath.toml`) regenerates
//! the committed report with a min-of-reps methodology; this harness is
//! the interactive view of the same loops with full statistics:
//!
//! ```text
//! cargo bench -p persephone-bench --bench hotpath
//! ```

use persephone_bench::crit::{criterion_group, criterion_main, Criterion, Throughput};
use persephone_core::dispatch::{
    CfcfsEngine, DarcEngine, DfcfsEngine, EngineConfig, FixedPriorityEngine, ScheduleEngine,
    SjfEngine,
};
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use std::hint::black_box;

const WORKERS: usize = 8;

fn config(workers: usize) -> (EngineConfig, [Option<Nanos>; 2]) {
    let mut cfg = EngineConfig::darc(workers);
    // Huge window so reservation updates never fire inside the benchmark.
    cfg.profiler.min_samples = u64::MAX;
    let hints = [Some(Nanos::from_micros(1)), Some(Nanos::from_micros(100))];
    (cfg, hints)
}

/// One full enqueue → poll → complete cycle, monomorphized per engine.
fn cycle<E: ScheduleEngine<u64>>(eng: &mut E, i: &mut u64) {
    let ty = TypeId::new((*i % 2) as u32);
    let now = Nanos::from_nanos(*i);
    eng.enqueue(ty, *i, now).unwrap();
    let d = eng.poll(now).expect("a worker is free");
    eng.complete(d.worker, Nanos::from_micros(1), now);
    *i += 1;
}

/// FNV-1a-64 of the sequence number — the stand-in RSS hash the runtime
/// and the scenario tier both steer by.
#[inline]
fn rss_hash(seq: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seq.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn bench_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.throughput(Throughput::Elements(1));

    macro_rules! policy_cycle {
        ($name:literal, $engine:ty) => {
            g.bench_function(concat!($name, "_cycle"), |b| {
                let (cfg, hints) = config(WORKERS);
                let mut eng: $engine = <$engine>::new(cfg, 2, &hints);
                let mut i = 0u64;
                b.iter(|| {
                    cycle(&mut eng, &mut i);
                    black_box(&eng);
                });
            });
        };
    }
    policy_cycle!("darc", DarcEngine<u64>);
    policy_cycle!("cfcfs", CfcfsEngine<u64>);
    policy_cycle!("sjf", SjfEngine<u64>);
    policy_cycle!("fp", FixedPriorityEngine<u64>);
    policy_cycle!("dfcfs", DfcfsEngine<u64>);

    // The non-work-conserving decision: every worker busy, work queued,
    // poll scans the dense queue array and chooses to idle.
    g.bench_function("darc_idle_poll", |b| {
        let (cfg, hints) = config(WORKERS);
        let mut eng: DarcEngine<u64> = DarcEngine::new(cfg, 2, &hints);
        for i in 0..(WORKERS as u64 + 8) {
            eng.enqueue(TypeId::new((i % 2) as u32), i, Nanos::from_nanos(i))
                .unwrap();
        }
        for _ in 0..WORKERS {
            eng.poll(Nanos::ZERO).expect("a worker is free");
        }
        b.iter(|| black_box(eng.poll(Nanos::ZERO).is_none()));
    });

    // Shard scaling: K independent engines behind hash steering.
    for k in [1usize, 2, 4, 8] {
        g.bench_function(format!("sharded_cycle_k{k}"), |b| {
            let mut engines: Vec<DarcEngine<u64>> = (0..k)
                .map(|_| {
                    let (cfg, hints) = config((WORKERS / k).max(1));
                    DarcEngine::new(cfg, 2, &hints)
                })
                .collect();
            let mut i = 0u64;
            b.iter(|| {
                let eng = &mut engines[(rss_hash(i) % k as u64) as usize];
                cycle(eng, &mut i);
                black_box(&engines);
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
