//! Profiler microbenchmarks (paper §4.3.3).
//!
//! The paper reports, at the median: ≈75 cycles to update a request's
//! profile, ≈300 cycles to check whether a reservation update is needed,
//! and ≈1000 cycles to perform a reservation update.

use persephone_bench::crit::{criterion_group, criterion_main, Criterion};
use persephone_core::profile::{Profiler, ProfilerConfig, TypeStat};
use persephone_core::reserve::{reserve, ReserveConfig};
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use std::hint::black_box;

fn tpcc_stats() -> Vec<TypeStat> {
    [
        (5.7, 0.44),
        (6.0, 0.04),
        (20.0, 0.44),
        (88.0, 0.04),
        (100.0, 0.04),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(us, ratio))| TypeStat {
        ty: TypeId::new(i as u32),
        mean_service_ns: us * 1_000.0,
        ratio,
    })
    .collect()
}

fn bench_profiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler");

    // "updating the profile of a request takes 75 cycles".
    g.bench_function("record_completion", |b| {
        let mut p = Profiler::new(ProfilerConfig::default(), 5, &[None; 5]);
        let mut i = 0u32;
        b.iter(|| {
            p.record_completion(TypeId::new(i % 5), Nanos::from_micros(10));
            i = i.wrapping_add(1);
            black_box(&p);
        });
    });

    // "checking whether an update is required takes about 300 cycles".
    g.bench_function("update_ready_check", |b| {
        let cfg = ProfilerConfig {
            min_samples: 10,
            ..Default::default()
        };
        let mut p = Profiler::new(cfg, 5, &[None; 5]);
        for i in 0..100u32 {
            p.record_completion(TypeId::new(i % 5), Nanos::from_micros((i % 5 + 1) as u64));
        }
        p.record_dispatch_delay(TypeId::new(0), Nanos::from_millis(10));
        b.iter(|| black_box(p.update_ready()));
    });

    g.bench_function("record_dispatch_delay", |b| {
        let mut p = Profiler::new(
            ProfilerConfig::default(),
            5,
            &[Some(Nanos::from_micros(10)); 5],
        );
        b.iter(|| {
            p.record_dispatch_delay(black_box(TypeId::new(2)), Nanos::from_micros(5));
            black_box(&p);
        });
    });

    // "performing a reservation update takes about 1000 cycles" — the
    // grouping + demand rounding of Algorithm 2 over 5 TPC-C types.
    g.bench_function("reserve_tpcc_14_workers", |b| {
        let stats = tpcc_stats();
        let cfg = ReserveConfig::new(14);
        b.iter(|| black_box(reserve(black_box(&stats), &cfg)));
    });

    g.bench_function("commit_window", |b| {
        let cfg = ProfilerConfig {
            min_samples: 1,
            ..Default::default()
        };
        let mut p = Profiler::new(cfg, 5, &[None; 5]);
        b.iter(|| {
            for i in 0..5u32 {
                p.record_completion(TypeId::new(i), Nanos::from_micros(i as u64 + 1));
            }
            black_box(p.commit_window());
        });
    });

    g.finish();
}

criterion_group!(benches, bench_profiler);
criterion_main!(benches);
