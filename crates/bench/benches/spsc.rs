//! SPSC channel microbenchmark (paper §4.3.2).
//!
//! The paper reports ≈88 cycles per operation on its Barrelfish-style
//! lightweight-RPC channel; this measures our ring's push+pop pairs in
//! steady state, single-threaded (no coherence traffic) and cross-thread.

use persephone_bench::crit::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_spsc(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc");
    g.throughput(Throughput::Elements(1));

    g.bench_function("push_pop_same_thread", |b| {
        let (mut tx, mut rx) = persephone_net::spsc::channel::<u64>(1024);
        b.iter(|| {
            tx.push(black_box(7)).unwrap();
            black_box(rx.pop().unwrap());
        });
    });

    g.bench_function("push_pop_batch64", |b| {
        let (mut tx, mut rx) = persephone_net::spsc::channel::<u64>(1024);
        b.iter(|| {
            for i in 0..64u64 {
                tx.push(black_box(i)).unwrap();
            }
            for _ in 0..64 {
                black_box(rx.pop().unwrap());
            }
        });
    });

    g.bench_function("mpsc_push_pop_same_thread", |b| {
        let (tx, mut rx) = persephone_net::mpsc::channel::<u64>(1024);
        b.iter(|| {
            tx.push(black_box(7)).unwrap();
            black_box(rx.pop().unwrap());
        });
    });

    g.bench_function("work_msg_round_trip", |b| {
        // The realistic payload: a WorkMsg-sized enum with a boxed buffer.
        use persephone_net::pool::PacketBuf;
        let (mut tx, mut rx) = persephone_net::spsc::channel::<PacketBuf>(64);
        b.iter_batched(
            || {
                let mut p = PacketBuf::with_capacity(128);
                p.fill(b"request payload");
                p
            },
            |p| {
                tx.push(p).unwrap();
                black_box(rx.pop().unwrap());
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_spsc);
criterion_main!(benches);
