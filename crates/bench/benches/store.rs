//! Application-substrate benchmarks: the KV store's GET-vs-SCAN
//! dispersion (the §5.4.4 RocksDB shape: GETs ≈1.5 µs, 5000-key SCANs
//! ≈635 µs, a ~420× gap) and the TPC-C transaction cost ladder
//! (Table 4: Payment < OrderStatus < NewOrder < Delivery < StockLevel).

use persephone_bench::crit::{criterion_group, criterion_main, Criterion};
use persephone_store::kv::KvStore;
use persephone_store::tpcc::{TpccDb, TpccInputGen, Transaction};
use std::hint::black_box;

fn bench_kv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    let mut db = KvStore::with_sequential_keys(5_000);

    g.bench_function("get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let key = format!("key{:08}", i % 5_000);
            i += 1;
            black_box(db.get(key.as_bytes()))
        });
    });

    g.bench_function("scan_100", |b| {
        b.iter(|| black_box(db.scan(b"key00001000", 100).len()));
    });

    // The paper's SCAN: the full 5000-key sweep.
    g.bench_function("scan_5000", |b| {
        b.iter(|| black_box(db.scan(b"key00000000", 5_000).len()));
    });

    g.bench_function("put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("newkey{i}");
            i += 1;
            db.put(key.as_bytes(), b"value");
            black_box(&db);
        });
    });

    g.finish();
}

fn bench_tpcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpcc");
    let mut db = TpccDb::new(1);
    let mut gen = TpccInputGen::new(7);
    // Pre-populate orders so the read transactions have work to do.
    for _ in 0..2_000 {
        db.run(Transaction::NewOrder, &mut gen).unwrap();
    }

    for tx in Transaction::ALL {
        g.bench_function(format!("{tx:?}").to_lowercase(), |b| {
            b.iter(|| {
                db.run(black_box(tx), &mut gen).unwrap();
                black_box(&db);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kv, bench_tpcc);
criterion_main!(benches);
