//! Wire round-trip microbenchmark: in-process loopback rings vs real
//! 127.0.0.1 UDP sockets through the same `ClientPort`/`ServerPort`
//! surface.
//!
//! One iteration is a full echo: encode a request, send it, pull it off
//! the server queue, rewrite it to a response in place, send it back, and
//! receive it on the client. The loopback number is the floor the runtime
//! pays per packet; the UDP number adds two kernel socket crossings and
//! is the cost of leaving the process.

use persephone_bench::crit::{criterion_group, criterion_main, Criterion, Throughput};
use persephone_net::nic::{self, ClientPort, NicFaultPlan, ServerPort, Steering};
use persephone_net::pool::PacketBuf;
use persephone_net::udp::{self, UdpConfig};
use persephone_net::wire;
use std::hint::black_box;

/// Echoes one request through a client/server port pair, recycling the
/// buffers so the pair is ready for the next iteration.
fn echo_once(
    client: &mut ClientPort,
    server: &mut ServerPort,
    ctx: &nic::NetContext,
    mut req: PacketBuf,
) {
    let len = wire::encode_request(req.raw_mut(), 0, 7, b"ping").expect("encode");
    req.set_len(len);
    client.send(req).expect("request send");
    let mut pkt = loop {
        if let Some(p) = server.recv() {
            break p;
        }
        std::hint::spin_loop();
    };
    let len = pkt.as_slice().len();
    wire::request_to_response_in_place(&mut pkt.raw_mut()[..len], wire::Status::Ok)
        .expect("rewrite");
    ctx.send_with_retry(pkt, 1 << 20).expect("response send");
    let resp = loop {
        if let Some(p) = client.recv() {
            break p;
        }
        std::hint::spin_loop();
    };
    black_box(&resp);
    // Loopback hands the same buffer back; keep it circulating.
    drop(resp);
}

fn bench_net_rtt(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_rtt");
    g.throughput(Throughput::Elements(1));

    g.bench_function("loopback_echo", |b| {
        let (mut client, mut server) = nic::loopback(256);
        let ctx = server.context();
        b.iter(|| {
            let req = PacketBuf::with_capacity(256);
            echo_once(&mut client, &mut server, &ctx, req);
        });
    });

    g.bench_function("udp_echo", |b| {
        let cfg = UdpConfig {
            buf_size: 256,
            pool_buffers: 64,
        };
        let mut server = udp::server(std::net::SocketAddr::from(([127, 0, 0, 1], 0)), 1, cfg)
            .expect("bind server socket");
        let addrs = server.local_addrs().expect("udp addrs");
        let mut client = udp::client(&addrs, Steering::Rss, NicFaultPlan::default(), cfg)
            .expect("bind client socket");
        let ctx = server.context();
        b.iter(|| {
            let req = PacketBuf::with_capacity(256);
            echo_once(&mut client, &mut server, &ctx, req);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_net_rtt);
criterion_main!(benches);
