//! Tables 1 and 5: the scheduling-policy taxonomy.
//!
//! Prints the property matrix of every policy implemented in this
//! reproduction, as encoded in `persephone_core::policy::PolicyTraits`,
//! and checks it against the paper's rows.
//!
//! Run: `cargo run --release -p persephone-bench --bin tab01_taxonomy`

use persephone_bench::BenchOpts;
use persephone_core::policy::{Policy, TimeSharingParams};
use persephone_sim::report::Table;

fn main() {
    let opts = BenchOpts::from_args();
    let policies = vec![
        (Policy::DFcfs, "IX, Arrakis, Shenango (no stealing)"),
        (Policy::CFcfs, "ZygOS, Shenango"),
        (Policy::FixedPriority, "classic RTOS priority"),
        (Policy::Sjf, "oracle baseline"),
        (
            Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()),
            "Shinjuku",
        ),
        (Policy::DarcStatic { reserved_short: 1 }, "paper §5.3"),
        (Policy::Darc, "Persephone"),
    ];

    let mut t = Table::new(vec![
        "policy",
        "app aware",
        "non preemptive",
        "non work conserving",
        "prevents HOL blocking",
        "example system",
    ]);
    let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
    for (p, example) in &policies {
        let tr = p.traits();
        t.push(vec![
            p.name(),
            tick(tr.app_aware),
            tick(tr.non_preemptive),
            tick(tr.non_work_conserving),
            tick(tr.prevents_hol_blocking),
            example.to_string(),
        ]);
    }
    println!("# Tables 1 & 5 — policy taxonomy\n");
    print!("{}", t.to_markdown());
    opts.write_csv("tab01_taxonomy.csv", &t);

    // Verify the Table 1 rows the paper states explicitly.
    let darc = Policy::Darc.traits();
    assert!(darc.app_aware && darc.non_preemptive && darc.non_work_conserving);
    let cfcfs = Policy::CFcfs.traits();
    assert!(!cfcfs.app_aware && cfcfs.non_preemptive && !cfcfs.non_work_conserving);
    let ts = Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()).traits();
    assert!(ts.app_aware && !ts.non_preemptive && !ts.non_work_conserving);
    let dfcfs = Policy::DFcfs.traits();
    assert!(!dfcfs.app_aware && dfcfs.non_preemptive && dfcfs.non_work_conserving);
    println!("\nall Table 1 property rows verified against the paper");
}
