//! Figure 10: how expensive can preemption be? (paper §6)
//!
//! Extreme Bimodal on 16 workers. Single-queue time-sharing systems with
//! total per-preemption cost of 0, 1, 2 and 4 µs (split evenly between
//! propagation delay — during which the victim still progresses — and
//! pure preemption overhead), against DARC.
//!
//! Paper behaviour reproduced: the ideal "TS 0 µs" matches or beats DARC,
//! but 1 µs of preemption cost already gives up ~30 % sustainable load at
//! a 10× short-request slowdown target — and DARC needs no preemption at
//! all.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig10_preemption_cost`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::policy::{Policy, TimeSharingParams, TsDiscipline};
use persephone_core::time::Nanos;
use persephone_sim::experiment::{capacity_rps_at_slo, sweep, Slo, SweepConfig};
use persephone_sim::report::{mrps, ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 16;

fn ts(total_cost_ns: u64) -> Policy {
    Policy::TimeSharing(TimeSharingParams {
        quantum: Nanos::from_micros(5),
        overhead: Nanos::from_nanos(total_cost_ns / 2),
        propagation: Nanos::from_nanos(total_cost_ns - total_cost_ns / 2),
        discipline: TsDiscipline::SingleQueue,
    })
}

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::extreme_bimodal();
    let peak = workload.peak_rate(WORKERS);
    println!(
        "# Figure 10 — preemption cost sensitivity ({} workers, peak {} Mrps)",
        WORKERS,
        mrps(peak)
    );

    let policies = vec![
        ("TS-0us".to_string(), ts(0)),
        ("TS-1us".to_string(), ts(1_000)),
        ("TS-2us".to_string(), ts(2_000)),
        ("TS-4us".to_string(), ts(4_000)),
        ("DARC".to_string(), Policy::Darc),
    ];
    let loads: Vec<f64> = (1..=24).map(|i| i as f64 * 0.04).collect();
    let cfg = SweepConfig {
        seed: opts.seed,
        darc_min_samples: if opts.quick { 5_000 } else { 50_000 },
        ..SweepConfig::new(workload.clone(), WORKERS, loads, opts.duration(300))
    };

    // The paper's SLO here: 10x slowdown for the short requests.
    let slo = Slo::PerTypeSlowdown(10.0);
    let mut csv = Table::new(vec![
        "system",
        "load",
        "offered_mrps",
        "slowdown_p999",
        "short_slowdown_p999",
        "long_latency_p999_us",
    ]);
    let mut caps = Vec::new();
    for (name, p) in &policies {
        let points = sweep(p, &cfg);
        for pt in &points {
            let Some(out) = &pt.output else { continue };
            csv.push(vec![
                name.clone(),
                format!("{:.2}", pt.load),
                mrps(pt.offered_rps),
                ratio(out.summary.overall_slowdown.p999),
                ratio(out.summary.per_type[0].slowdown.p999),
                us(out.summary.per_type[1].latency_ns.p999),
            ]);
        }
        let cap = capacity_rps_at_slo(&points, slo).unwrap_or(0.0);
        println!(
            "  {:<8} capacity @ 10x short slowdown = {} Mrps ({:.0}% of peak)",
            name,
            mrps(cap),
            100.0 * cap / peak
        );
        caps.push((name.clone(), cap));
    }
    opts.write_csv("fig10_preemption_cost.csv", &csv);

    let cap = |n: &str| caps.iter().find(|(c, _)| c == n).map(|(_, v)| *v).unwrap();
    let mut cmp = Comparison::new();
    cmp.row(
        "ideal TS-0us vs DARC capacity",
        "similar or better",
        times(cap("TS-0us"), cap("DARC")),
        "instant free preemption is the upper bound",
    );
    cmp.row(
        "TS-1us capacity loss vs TS-0us",
        "~30% less sustainable load",
        format!("{:.0}% less", 100.0 * (1.0 - cap("TS-1us") / cap("TS-0us"))),
        "1us per preemption at a 5us quantum",
    );
    cmp.row(
        "cost ordering",
        "TS-0 > TS-1 > TS-2 > TS-4",
        format!(
            "{}",
            cap("TS-0us") >= cap("TS-1us")
                && cap("TS-1us") >= cap("TS-2us")
                && cap("TS-2us") >= cap("TS-4us")
        ),
        "monotone in preemption cost",
    );
    cmp.row(
        "DARC vs TS-1us capacity",
        "DARC higher (no preemption needed)",
        times(cap("DARC"), cap("TS-1us")),
        "",
    );
    cmp.print("Figure 10 — paper vs measured");
}
