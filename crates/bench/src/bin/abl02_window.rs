//! Ablation: profiling-window size (paper §4.3.3 — "we set a lower bound
//! on the number of samples required to transition — 50000 in our
//! experiments").
//!
//! Sweeps `min_samples` on TPC-C at 85 % load. Small windows are noisy:
//! occurrence-ratio sampling error flips Algorithm 2's rounding
//! boundaries, causing reservation churn (many updates) and transiently
//! starved long groups. Large windows are stable but adapt slowly. The
//! paper's 50 000 sits on the stable plateau.
//!
//! Run: `cargo run --release -p persephone-bench --bin abl02_window`

use persephone_bench::BenchOpts;
use persephone_sim::experiment::{run_point_with, SweepConfig};
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::{ratio, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
const LOAD: f64 = 0.85;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::tpcc();
    println!("# Ablation — profiling window size on TPC-C at 85% load ({WORKERS} workers)");

    let mut csv = Table::new(vec![
        "min_samples",
        "reservation_updates",
        "slowdown_p999",
        "stocklevel_slowdown_p999",
    ]);
    println!(
        "\n{:>12} {:>9} {:>14} {:>18}",
        "window", "updates", "slowdown p999", "StockLevel p999"
    );
    let windows: &[u64] = if opts.quick {
        &[500, 2_000, 10_000]
    } else {
        &[500, 1_000, 3_000, 10_000, 30_000, 50_000]
    };
    for &min_samples in windows {
        let cfg = SweepConfig {
            seed: opts.seed,
            darc_min_samples: min_samples,
            ..SweepConfig::new(workload.clone(), WORKERS, vec![LOAD], opts.duration(2000))
        };
        let mut p = DarcSim::dynamic(&workload, WORKERS, min_samples);
        let out = run_point_with(&mut p, &cfg, LOAD, opts.seed);
        let updates = p.engine().updates();
        let s = &out.summary;
        println!(
            "{:>12} {:>9} {:>14} {:>18}",
            min_samples,
            updates,
            ratio(s.overall_slowdown.p999),
            ratio(s.per_type[4].slowdown.p999),
        );
        csv.push(vec![
            min_samples.to_string(),
            updates.to_string(),
            ratio(s.overall_slowdown.p999),
            ratio(s.per_type[4].slowdown.p999),
        ]);
    }
    opts.write_csv("abl02_window.csv", &csv);
    println!(
        "\npaper expectation: churn (updates) falls as the window grows;\n\
         tail slowdown stabilizes once ratio noise stops flipping the\n\
         rounding boundary (NewOrder demand = 6.46 cores sits near one)."
    );
}
