//! Figure 5 companion on the *threaded runtime*: c-FCFS vs SJF vs DARC.
//!
//! The paper's Figure 5 sweeps policies in simulation; this binary runs
//! the same comparison live through `ServerBuilder::policy(...)` — real
//! threads, real rings, real spin work — at a fixed offered load on a
//! 95/5 short/long mix. Each policy monomorphizes its own dispatcher
//! loop, so the numbers compare scheduling disciplines, not dispatch
//! overheads.
//!
//! Expected shape (the paper's story): c-FCFS lets rare 100 µs requests
//! disperse across all workers and crush the short type's tail; SJF
//! prioritizes queued shorts but cannot preempt in-flight longs; DARC
//! reserves cores the longs can never take, keeping the short tail flat.
//! Absolute numbers depend on the host; the per-policy ordering is the
//! signal.
//!
//! Run with: `cargo run --release -p persephone-bench --bin fig05_live`
//! (`--quick` shrinks the run for CI).

use std::time::Duration;

use persephone_bench::BenchOpts;
use persephone_core::classifier::HeaderClassifier;
use persephone_core::policy::Policy;
use persephone_core::time::Nanos;
use persephone_net::nic::{loopback_mq, Steering};
use persephone_net::pool::BufferPool;
use persephone_net::wire;
use persephone_runtime::handler::SpinHandler;
use persephone_runtime::loadgen::{run_open_loop, LoadSpec, LoadType};
use persephone_runtime::server::{ServerBuilder, Transport};
use persephone_sim::report::Table;
use persephone_store::spin::SpinCalibration;

fn main() {
    let opts = BenchOpts::from_args();
    let workers = if opts.quick { 4 } else { 8 };
    let services = [Nanos::from_micros(5), Nanos::from_micros(100)];
    let offered_rps = if opts.quick { 20_000.0 } else { 60_000.0 };
    let duration = Duration::from_nanos(opts.duration(2_000).as_nanos());
    let grace = Duration::from_secs(2);
    let cal = SpinCalibration::calibrate();

    println!(
        "fig05_live: {workers} workers, 95/5 {}/{} us mix, {offered_rps:.0} rps offered, {} ms",
        services[0].as_nanos() / 1_000,
        services[1].as_nanos() / 1_000,
        duration.as_millis()
    );

    let mut table = Table::new(vec![
        "policy",
        "sent",
        "achieved_rps",
        "short_p50_us",
        "short_p999_us",
        "short_p999_slowdown",
        "long_p999_us",
    ]);

    for policy in [Policy::CFcfs, Policy::Sjf, Policy::Darc] {
        let name = policy.name();
        let (mut client, server_port) = loopback_mq(1024, 1, Steering::Rss);
        let handle = ServerBuilder::new(workers, 2)
            .policy(policy)
            .hints(services.iter().map(|s| Some(*s)).collect())
            .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
            .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
            .transport(Transport::Port(server_port))
            .start()
            .expect("in-process start cannot fail")
            .0;

        let mut pool = BufferPool::new(1024, 128);
        let spec = LoadSpec::new(vec![
            LoadType {
                ty: 0,
                ratio: 0.95,
                payload: b"short".to_vec(),
            },
            LoadType {
                ty: 1,
                ratio: 0.05,
                payload: b"long".to_vec(),
            },
        ]);
        let report = run_open_loop(
            &mut client,
            &mut pool,
            &spec,
            offered_rps,
            duration,
            grace,
            opts.seed,
        );
        let server = handle.stop();

        let achieved = report.received as f64 / duration.as_secs_f64();
        let p50 = report.percentile_ns(0, 0.5).unwrap_or(0);
        let p999_short = report.percentile_ns(0, 0.999).unwrap_or(0);
        let p999_long = report.percentile_ns(1, 0.999).unwrap_or(0);
        let slowdown = p999_short as f64 / services[0].as_nanos() as f64;

        println!(
            "  {name}: received {}/{} ({achieved:.0} rps), short p99.9 {:.1} us \
             ({slowdown:.0}x), long p99.9 {:.1} us [engine: {}]",
            report.received,
            report.sent,
            p999_short as f64 / 1e3,
            p999_long as f64 / 1e3,
            server.dispatcher.policy
        );

        table.push(vec![
            name,
            report.sent.to_string(),
            format!("{achieved:.0}"),
            format!("{:.1}", p50 as f64 / 1e3),
            format!("{:.1}", p999_short as f64 / 1e3),
            format!("{slowdown:.1}"),
            format!("{:.1}", p999_long as f64 / 1e3),
        ]);
    }

    println!("\n## Live policy sweep ({workers} workers, threaded runtime)\n");
    print!("{}", table.to_markdown());
    opts.write_csv("fig05_live.csv", &table);
}
