//! Sharded dispatch plane scaling sweep (threaded runtime).
//!
//! The paper's deployment runs one dispatcher, which Perséphone's own
//! evaluation (§4.3) identifies as the eventual throughput ceiling. This
//! sweep holds the worker pool fixed and splits the dispatch plane into
//! K = 1..4 RSS-fed shards, driving each configuration with the same
//! over-capacity open-loop mix and reporting the saturation goodput and
//! the short type's p99.9 slowdown.
//!
//! Unlike the `fig*` binaries this exercises the *threaded runtime*, so
//! absolute numbers depend on the host's core count; the interesting
//! signal is the K=1 → K=4 trend.
//!
//! Run with: `cargo run --release -p persephone-bench --bin shard_scale`
//! (`--quick` shrinks the sweep for CI).

use std::time::Duration;

use persephone_bench::BenchOpts;
use persephone_core::classifier::HeaderClassifier;
use persephone_core::time::Nanos;
use persephone_net::nic::{loopback_mq, Steering};
use persephone_net::pool::BufferPool;
use persephone_net::wire;
use persephone_runtime::handler::SpinHandler;
use persephone_runtime::loadgen::{run_open_loop, LoadSpec, LoadType};
use persephone_runtime::server::{ServerBuilder, Transport};
use persephone_sim::report::Table;
use persephone_store::spin::SpinCalibration;

fn main() {
    let opts = BenchOpts::from_args();
    let workers = if opts.quick { 4 } else { 8 };
    let services = [Nanos::from_micros(2), Nanos::from_micros(50)];
    let offered_rps = if opts.quick { 40_000.0 } else { 120_000.0 };
    let duration = Duration::from_nanos(opts.duration(2_000).as_nanos());
    let grace = Duration::from_secs(2);
    let cal = SpinCalibration::calibrate();

    println!(
        "shard_scale: {workers} workers, 90/10 {}/{} us mix, {offered_rps:.0} rps offered, {} ms",
        services[0].as_nanos() / 1_000,
        services[1].as_nanos() / 1_000,
        duration.as_millis()
    );

    let mut table = Table::new(vec![
        "shards",
        "sent",
        "achieved_rps",
        "short_p50_us",
        "short_p999_us",
        "short_p999_slowdown",
        "long_p999_us",
        "queue_spread",
    ]);

    for k in 1..=4usize {
        let (mut client, server_port) = loopback_mq(1024, k, Steering::Rss);
        let handle = ServerBuilder::new(workers, 2)
            .shards(k)
            .hints(services.iter().map(|s| Some(*s)).collect())
            .classifier_factory(|_shard| Box::new(HeaderClassifier::new(wire::TYPE_OFFSET, 2)))
            .handler_factory(move |_worker| Box::new(SpinHandler::new(cal, &services)))
            .transport(Transport::Port(server_port))
            .start()
            .expect("in-process start cannot fail")
            .0;

        let mut pool = BufferPool::new(1024, 128);
        let spec = LoadSpec::new(vec![
            LoadType {
                ty: 0,
                ratio: 0.9,
                payload: b"short".to_vec(),
            },
            LoadType {
                ty: 1,
                ratio: 0.1,
                payload: b"long".to_vec(),
            },
        ]);
        let report = run_open_loop(
            &mut client,
            &mut pool,
            &spec,
            offered_rps,
            duration,
            grace,
            opts.seed,
        );
        let server = handle.stop();

        let achieved = report.received as f64 / duration.as_secs_f64();
        let p50 = report.percentile_ns(0, 0.5).unwrap_or(0);
        let p999_short = report.percentile_ns(0, 0.999).unwrap_or(0);
        let p999_long = report.percentile_ns(1, 0.999).unwrap_or(0);
        let slowdown = p999_short as f64 / services[0].as_nanos() as f64;
        let spread = report
            .per_queue_sent
            .iter()
            .map(|q| format!("{:.0}%", *q as f64 * 100.0 / report.sent.max(1) as f64))
            .collect::<Vec<_>>()
            .join("/");

        println!(
            "  K={k}: received {}/{} ({achieved:.0} rps), short p99.9 {:.1} us \
             ({slowdown:.0}x), shards received {:?}",
            report.received,
            report.sent,
            p999_short as f64 / 1e3,
            server.shards.iter().map(|s| s.received).collect::<Vec<_>>()
        );

        table.push(vec![
            k.to_string(),
            report.sent.to_string(),
            format!("{achieved:.0}"),
            format!("{:.1}", p50 as f64 / 1e3),
            format!("{:.1}", p999_short as f64 / 1e3),
            format!("{slowdown:.1}"),
            format!("{:.1}", p999_long as f64 / 1e3),
            spread,
        ]);
    }

    println!("\n## Dispatch-plane scaling (fixed {workers}-worker pool)\n");
    print!("{}", table.to_markdown());
    opts.write_csv("shard_scale.csv", &table);
}
