//! Figure 9: a broken (random) request classifier (paper §5.6).
//!
//! High Bimodal on 8 workers. With a random classifier, every typed queue
//! holds an even mix of both types, so DARC-random's behaviour converges
//! to c-FCFS — the failure mode is graceful. A correct classifier is also
//! swept for contrast.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig09_random_classifier`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_sim::experiment::{run_point_with, SweepConfig};
use persephone_sim::policies::cfcfs::CFcfs;
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::{krps, ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 8;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::high_bimodal();
    let peak = workload.peak_rate(WORKERS);
    println!(
        "# Figure 9 — random classifier on {} ({} workers, peak {} kRPS)",
        workload.name,
        WORKERS,
        krps(peak)
    );

    let loads: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let min_samples = if opts.quick { 2_000 } else { 20_000 };
    let cfg = SweepConfig {
        seed: opts.seed,
        darc_min_samples: min_samples,
        queue_capacity: QUEUE_CAP,
        ..SweepConfig::new(
            workload.clone(),
            WORKERS,
            loads.clone(),
            opts.duration(2000),
        )
    };

    let mut csv = Table::new(vec![
        "policy",
        "load",
        "offered_krps",
        "slowdown_p999",
        "short_latency_p999_us",
    ]);
    // (policy name, per-load overall p99.9 slowdown)
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for name in ["c-FCFS", "DARC-random", "DARC"] {
        let mut slows = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            let seed = opts.seed.wrapping_add(i as u64);
            let out = match name {
                "c-FCFS" => {
                    let mut p = CFcfs::new(WORKERS).with_capacity(QUEUE_CAP);
                    run_point_with(&mut p, &cfg, load, seed)
                }
                "DARC-random" => {
                    let mut p =
                        DarcSim::random_classifier(&workload, WORKERS, min_samples, seed ^ 0xF00)
                            .with_capacity(QUEUE_CAP);
                    run_point_with(&mut p, &cfg, load, seed)
                }
                _ => {
                    let mut p =
                        DarcSim::dynamic(&workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
                    run_point_with(&mut p, &cfg, load, seed)
                }
            };
            csv.push(vec![
                name.to_string(),
                format!("{load:.2}"),
                krps(peak * load),
                ratio(out.summary.overall_slowdown.p999),
                us(out.summary.per_type[0].latency_ns.p999),
            ]);
            slows.push(out.summary.overall_slowdown.p999);
        }
        series.push((name.to_string(), slows));
    }
    opts.write_csv("fig09_random_classifier.csv", &csv);

    // Convergence check: DARC-random within a small factor of c-FCFS at
    // moderate loads; real DARC far below both at high load.
    let get = |name: &str| &series.iter().find(|(n, _)| n == name).unwrap().1;
    let mid = loads.iter().position(|&l| l >= 0.70).unwrap();
    let hi = loads.iter().position(|&l| l >= 0.85).unwrap();
    let cf = get("c-FCFS");
    let rnd = get("DARC-random");
    let darc = get("DARC");

    let mut cmp = Comparison::new();
    cmp.row(
        "DARC-random vs c-FCFS slowdown @ 70% load",
        "~1x (converges)",
        times(rnd[mid], cf[mid]),
        "",
    );
    cmp.row(
        "DARC-random vs c-FCFS slowdown @ 85% load",
        "~1x (converges)",
        times(rnd[hi], cf[hi]),
        "",
    );
    cmp.row(
        "correct DARC vs DARC-random @ 85% load",
        "orders of magnitude better",
        times(rnd[hi], darc[hi]),
        "what a working classifier buys",
    );
    cmp.print("Figure 9 — paper vs measured");
}
