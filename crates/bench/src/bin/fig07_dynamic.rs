//! Figure 7: handling workload changes (paper §5.5).
//!
//! Replays the four-phase script (5 s each, 80 % utilization, 14 workers)
//! under both c-FCFS and DARC, logging per-type p99.9 latency over time
//! and DARC's reservation-change events.
//!
//! Paper behaviour reproduced: phase 1 gives the fast type 1 dedicated
//! core (plus 13 stealable); the phase-2 service-time swap is detected by
//! the profiler and reservations flip; the phase-3 ratio change pushes
//! the fast type's demand to 2 cores; phase 4 (A-only traffic) leaves B's
//! stragglers on the spillway core.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig07_dynamic`

use persephone_bench::{BenchOpts, Comparison};
use persephone_core::time::Nanos;
use persephone_sim::engine::{simulate, SimConfig, SimOutput};
use persephone_sim::metrics::Percentiles;
use persephone_sim::policies::cfcfs::CFcfs;
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::Table;
use persephone_sim::workload::{ArrivalGen, Phase, PhasedWorkload};

const WORKERS: usize = 14;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

fn main() {
    let opts = BenchOpts::from_args();
    // The full script is 4 × 5 s; `--quick` shrinks phases to 0.5 s.
    let mut script = PhasedWorkload::paper_fig7();
    if opts.quick {
        script = PhasedWorkload::new(
            script
                .phases
                .into_iter()
                .map(|p| Phase {
                    duration: Nanos::from_millis(500),
                    ..p
                })
                .collect(),
        );
    }
    let total = script.total_duration();
    let bucket = Nanos::from_nanos(total.as_nanos() / 40);
    let sim_cfg = SimConfig {
        workers: WORKERS,
        warmup_fraction: 0.0,
        rtt: Nanos::from_micros(10),
        timeline_bucket: Some(bucket),
    };
    println!(
        "# Figure 7 — workload changes over {} ({} phases at 80% load)",
        total,
        script.phases.len()
    );

    // DARC run (keeps the reservation log) and the c-FCFS baseline.
    let min_samples = if opts.quick { 5_000 } else { 50_000 };
    let mut darc =
        DarcSim::dynamic(&script.phases[0].workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
    let telemetry = std::sync::Arc::new(persephone_telemetry::Telemetry::new(
        persephone_telemetry::TelemetryConfig::new(2, WORKERS),
    ));
    darc.attach_telemetry(telemetry.clone());
    let darc_out = simulate(
        &mut darc,
        ArrivalGen::phased(&script, WORKERS, opts.seed),
        2,
        total,
        &sim_cfg,
    );
    let mut cfcfs = CFcfs::new(WORKERS).with_capacity(QUEUE_CAP);
    let cfcfs_out = simulate(
        &mut cfcfs,
        ArrivalGen::phased(&script, WORKERS, opts.seed),
        2,
        total,
        &sim_cfg,
    );
    println!(
        "  DARC: {} completions; c-FCFS: {} completions",
        darc_out.completions, cfcfs_out.completions
    );

    let mut csv = Table::new(vec![
        "policy",
        "time_s",
        "a_p999_us",
        "b_p999_us",
        "a_guaranteed",
        "b_guaranteed",
    ]);
    let fmt = |p: &Percentiles| {
        if p.count == 0 {
            String::new()
        } else {
            format!("{:.1}", p.p999 / 1e3)
        }
    };
    push_timeline(
        &mut csv,
        "DARC",
        &darc_out,
        Some(darc.reservation_log()),
        fmt,
    );
    push_timeline(&mut csv, "c-FCFS", &cfcfs_out, None, fmt);
    opts.write_csv("fig07_dynamic.csv", &csv);

    // Report the reservation trajectory.
    println!("\nDARC reservation log (time -> guaranteed cores [A, B]):");
    let phase_len = script.phases[0].duration;
    let mut phase3_a = 0usize;
    // Phase-2 adaptation: time until A — which became the *fast* type at
    // the phase boundary — has its reservation cut to its new demand
    // (≤ 2 cores), i.e. the misclassification is fully corrected.
    let mut transition2: Option<Nanos> = None;
    for (t, counts) in darc.reservation_log() {
        println!("  {:>8.2}s  {:?}", t.as_secs_f64(), counts);
        if transition2.is_none() && *t > phase_len && *t < phase_len * 2 && counts[0] <= 2 {
            transition2 = Some(*t - phase_len);
        }
        if *t > phase_len * 2 && *t < phase_len * 3 {
            phase3_a = counts[0];
        }
    }

    let mut cmp = Comparison::new();
    cmp.row(
        "reservation updates across the script",
        ">= 3 (one per change)",
        darc.reservation_log().len().saturating_sub(1).to_string(),
        "includes the warm-up exit",
    );
    cmp.row(
        "phase-2 adaptation delay",
        "~500 ms",
        transition2
            .map(|d| format!("{:.0} ms", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "n/a".into()),
        "first reservation after the service-time swap",
    );
    cmp.row(
        "phase-3 guaranteed cores for the 99.5% type",
        "2",
        phase3_a.to_string(),
        "demand 0.166 x 14 = 2.3",
    );
    // Phase 4: B vanished. The paper notes A may then run on all 14
    // cores while leftover B work is served on the spillway. In this
    // implementation B keeps its last reservation until a delay signal
    // fires (updates are performance-triggered), but those cores are all
    // *stealable* by A — so A's reach must be the whole machine.
    let res = darc.engine().reservation();
    let a_reach = res
        .group_of(persephone_core::types::TypeId::new(0))
        .map(|g| res.groups[g].candidate_workers().count())
        .unwrap_or(0);
    cmp.row(
        "phase-4: cores A can run on",
        "all 14",
        a_reach.to_string(),
        "reserved + stealable (B's idle cores are stealable)",
    );
    let final_counts = &darc.reservation_log().last().unwrap().1;
    cmp.row(
        "phase-4: B still guaranteed cores",
        "0 (served via spillway)",
        final_counts[1].to_string(),
        "kept until a delay signal fires; all stealable by A meanwhile",
    );
    cmp.print("Figure 7 — paper vs measured");

    // The engine's own telemetry view of the same run. Note the event-ring
    // accounting: millions of per-request cycle-steal events overwrite the
    // bounded ring, and the overwritten count says exactly how many were
    // lost — the reservation trajectory itself is in the log above.
    let snap = telemetry.snapshot();
    println!("\nDARC engine telemetry snapshot (simulated time):");
    print!("{}", snap.to_text());
    opts.write_text("fig07_telemetry.jsonl", &snap.to_json_lines());
}

fn push_timeline(
    csv: &mut Table,
    name: &str,
    out: &SimOutput,
    log: Option<&[(Nanos, Vec<usize>)]>,
    fmt: impl Fn(&Percentiles) -> String,
) {
    let Some(tl) = &out.timeline else { return };
    for (start, per_ty) in tl {
        let (ga, gb) = match log {
            Some(log) => guaranteed_at(log, *start),
            None => (WORKERS, WORKERS),
        };
        csv.push(vec![
            name.to_string(),
            format!("{:.2}", start.as_secs_f64()),
            fmt(&per_ty[0]),
            fmt(&per_ty[1]),
            ga.to_string(),
            gb.to_string(),
        ]);
    }
}

fn guaranteed_at(log: &[(Nanos, Vec<usize>)], t: Nanos) -> (usize, usize) {
    let mut g = (0usize, 0usize);
    for (at, counts) in log {
        if *at <= t {
            g = (counts[0], counts[1]);
        }
    }
    g
}
