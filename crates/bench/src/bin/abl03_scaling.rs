//! Ablation: worker-count scaling.
//!
//! The paper's motivation (§1–§2) argues DARC "reduces the overall
//! number of machines needed": the capacity it sustains under a tail SLO
//! scales with the core count while work-conserving FCFS stays pinned to
//! low utilization. This sweep measures the SLO capacity of c-FCFS and
//! DARC on Extreme Bimodal for 4–32 workers and reports the utilization
//! each can run at.
//!
//! Run: `cargo run --release -p persephone-bench --bin abl03_scaling`

use persephone_bench::{times, BenchOpts};
use persephone_core::policy::Policy;
use persephone_sim::experiment::{capacity_rps_at_slo, sweep, Slo, SweepConfig};
use persephone_sim::report::{mrps, Table};
use persephone_sim::workload::Workload;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::extreme_bimodal();
    println!("# Ablation — SLO capacity vs worker count (Extreme Bimodal, 10x per-type slowdown)");

    let mut csv = Table::new(vec![
        "workers",
        "peak_mrps",
        "cfcfs_capacity_mrps",
        "darc_capacity_mrps",
        "cfcfs_util",
        "darc_util",
        "darc_gain",
    ]);
    let slo = Slo::PerTypeSlowdown(10.0);
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "workers", "peak", "c-FCFS", "DARC", "c-FCFS%", "DARC%", "gain"
    );
    let worker_counts: &[usize] = if opts.quick {
        &[8, 16]
    } else {
        &[4, 8, 16, 24, 32]
    };
    for &workers in worker_counts {
        let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
        let cfg = SweepConfig {
            seed: opts.seed,
            darc_min_samples: if opts.quick { 5_000 } else { 20_000 },
            ..SweepConfig::new(workload.clone(), workers, loads, opts.duration(200))
        };
        let peak = workload.peak_rate(workers);
        let cf = capacity_rps_at_slo(&sweep(&Policy::CFcfs, &cfg), slo).unwrap_or(0.0);
        let darc = capacity_rps_at_slo(&sweep(&Policy::Darc, &cfg), slo).unwrap_or(0.0);
        println!(
            "{:>8} {:>10} {:>12} {:>12} {:>9.0}% {:>9.0}% {:>8}",
            workers,
            mrps(peak),
            mrps(cf),
            mrps(darc),
            100.0 * cf / peak,
            100.0 * darc / peak,
            times(darc, cf)
        );
        csv.push(vec![
            workers.to_string(),
            mrps(peak),
            mrps(cf),
            mrps(darc),
            format!("{:.2}", cf / peak),
            format!("{:.2}", darc / peak),
            times(darc, cf),
        ]);
    }
    opts.write_csv("abl03_scaling.csv", &csv);
    println!(
        "\npaper expectation (§1-2): work-conserving FCFS must run at low\n\
         utilization to protect the tail at every scale, while DARC's\n\
         utilization under SLO grows with core count (the reserved cores\n\
         amortize) — fewer machines for the same workload."
    );
}
