//! Figure 5 (a/b): High Bimodal and Extreme Bimodal across the three
//! systems — Shenango (d-FCFS and c-FCFS), Shinjuku (5 µs preemption,
//! with its documented sustainable-load ceilings), and Perséphone (DARC).
//! 14 workers, 10 µs RTT.
//!
//! Paper numbers reproduced:
//! * (a) High Bimodal, 20× slowdown target: DARC sustains 2.35× and 1.3×
//!   more than Shenango and Shinjuku; at 75 % load DARC's slowdown is
//!   10.2× and 1.75× lower. Shinjuku's ceiling is 75 %.
//! * (b) Extreme Bimodal, 50× target: DARC and Shinjuku sustain 1.4× more
//!   than Shenango; Shinjuku's ceiling is 55 %; long requests always pay
//!   ≥ 24 % preemption overhead (620 µs for 500 µs of work); DARC reserves
//!   2 cores and idles 0.67 on average.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig05_systems`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::policy::TsDiscipline;
use persephone_core::time::Nanos;
use persephone_sim::experiment::{
    capacity_rps_at_slo, sweep_system, PointResult, Slo, SweepConfig, SystemSpec,
};
use persephone_sim::report::{krps, ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

struct Scenario {
    workload: Workload,
    shinjuku: SystemSpec,
    slo: Slo,
    paper: &'static [(&'static str, &'static str)],
}

fn main() {
    let opts = BenchOpts::from_args();
    let scenarios = [
        Scenario {
            workload: Workload::high_bimodal(),
            shinjuku: SystemSpec::shinjuku(5, TsDiscipline::MultiQueue, 0.75),
            slo: Slo::OverallSlowdown(20.0),
            paper: &[
                ("DARC vs Shenango capacity", "2.35x"),
                ("DARC vs Shinjuku capacity", "1.3x"),
                ("slowdown gain vs Shenango @ 75%", "10.2x"),
                ("slowdown gain vs Shinjuku @ 75%", "1.75x"),
            ],
        },
        Scenario {
            workload: Workload::extreme_bimodal(),
            shinjuku: SystemSpec::shinjuku(5, TsDiscipline::SingleQueue, 0.55),
            slo: Slo::OverallSlowdown(50.0),
            paper: &[
                ("DARC vs Shenango capacity", "1.4x"),
                ("DARC vs Shinjuku capacity", "1.25x"),
                ("Shinjuku long inflation @ low load", ">= 1.24x"),
            ],
        },
    ];

    let mut csv = Table::new(vec![
        "workload",
        "system",
        "load",
        "offered_krps",
        "slowdown_p999",
        "short_latency_p999_us",
        "long_latency_p999_us",
    ]);

    for sc in scenarios {
        let peak = sc.workload.peak_rate(WORKERS);
        println!(
            "\n# Figure 5 — {} across systems (peak {} kRPS)",
            sc.workload.name,
            krps(peak)
        );
        let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
        let cfg = SweepConfig {
            seed: opts.seed,
            rtt: Nanos::from_micros(10),
            darc_min_samples: if opts.quick { 2_000 } else { 20_000 },
            queue_capacity: QUEUE_CAP,
            ..SweepConfig::new(sc.workload.clone(), WORKERS, loads, opts.duration(1500))
        };
        let systems = vec![
            SystemSpec::shenango_dfcfs(),
            SystemSpec::shenango_cfcfs(),
            sc.shinjuku.clone(),
            SystemSpec::persephone(),
        ];
        let mut swept: Vec<(String, Vec<PointResult>)> = Vec::new();
        for sys in &systems {
            let points = sweep_system(sys, &cfg);
            for pt in &points {
                let Some(out) = &pt.output else { continue };
                csv.push(vec![
                    sc.workload.name.clone(),
                    sys.name.clone(),
                    format!("{:.2}", pt.load),
                    krps(pt.offered_rps),
                    ratio(out.summary.overall_slowdown.p999),
                    us(out.summary.per_type[0].latency_ns.p999),
                    us(out.summary.per_type[1].latency_ns.p999),
                ]);
            }
            let cap = capacity_rps_at_slo(&points, sc.slo).unwrap_or(0.0);
            println!(
                "  {:<16} capacity @ SLO = {} kRPS ({:.0}% of peak)",
                sys.name,
                krps(cap),
                100.0 * cap / peak
            );
            swept.push((sys.name.clone(), points));
        }

        let cap = |name: &str| {
            let pts = &swept.iter().find(|(n, _)| n == name).unwrap().1;
            capacity_rps_at_slo(pts, sc.slo).unwrap_or(0.0)
        };
        let slowdown_at = |name: &str, load: f64| -> f64 {
            let pts = &swept.iter().find(|(n, _)| n == name).unwrap().1;
            pts.iter()
                .filter(|p| p.output.is_some())
                .min_by(|a, b| {
                    (a.load - load)
                        .abs()
                        .partial_cmp(&(b.load - load).abs())
                        .unwrap()
                })
                .and_then(|p| p.output.as_ref())
                .map(|o| o.summary.overall_slowdown.p999)
                .unwrap_or(f64::NAN)
        };

        let mut cmp = Comparison::new();
        for (metric, paper_val) in sc.paper {
            let measured = match *metric {
                "DARC vs Shenango capacity" => times(cap("Persephone"), cap("Shenango")),
                "DARC vs Shinjuku capacity" => times(cap("Persephone"), cap("Shinjuku")),
                "slowdown gain vs Shenango @ 75%" => times(
                    slowdown_at("Shenango", 0.75),
                    slowdown_at("Persephone", 0.75),
                ),
                "slowdown gain vs Shinjuku @ 75%" => times(
                    slowdown_at("Shinjuku", 0.75),
                    slowdown_at("Persephone", 0.75),
                ),
                "Shinjuku long inflation @ low load" => {
                    let pts = &swept.iter().find(|(n, _)| n == "Shinjuku").unwrap().1;
                    let low = pts
                        .iter()
                        .find(|p| p.output.is_some())
                        .and_then(|p| p.output.as_ref())
                        .map(|o| o.summary.per_type[1].latency_ns.p50)
                        .unwrap_or(f64::NAN);
                    // 500 µs of work plus the 10 µs RTT.
                    format!("{:.2}x", low / 510_000.0)
                }
                _ => "?".into(),
            };
            cmp.row(*metric, *paper_val, measured, "");
        }
        cmp.print(&format!(
            "Figure 5 ({}) — paper vs measured",
            sc.workload.name
        ));
    }
    opts.write_csv("fig05_systems.csv", &csv);
}
