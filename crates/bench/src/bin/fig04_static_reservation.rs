//! Figure 4: how much non-work-conservation is useful? ("DARC-static")
//!
//! Sweeps the number of cores manually reserved for the short type from
//! 0 to 14 at 95 % load on High Bimodal and Extreme Bimodal, with the
//! c-FCFS slowdown as the reference line.
//!
//! Paper numbers reproduced: the best overall p99.9 slowdown is at
//! 1 reserved core for High Bimodal (a 4.4× improvement over c-FCFS) and
//! 2 cores for Extreme Bimodal (1.5×) — validating what DARC's
//! reservation algorithm picks automatically. 0 reserved cores is plain
//! Fixed Priority (dispersion blocking); too many starve long requests.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig04_static_reservation`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_sim::experiment::{run_point_with, SweepConfig};
use persephone_sim::policies::cfcfs::CFcfs;
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::{ratio, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
const LOAD: f64 = 0.95;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

fn main() {
    let opts = BenchOpts::from_args();
    println!("# Figure 4 — DARC-static reservation sweep at 95% load ({WORKERS} workers)");

    let mut csv = Table::new(vec!["workload", "reserved_short", "slowdown_p999"]);
    let mut cmp = Comparison::new();

    for (workload, paper_best, paper_gain) in [
        (Workload::high_bimodal(), 1usize, "4.4x"),
        (Workload::extreme_bimodal(), 2usize, "1.5x"),
    ] {
        let cfg = SweepConfig {
            seed: opts.seed,
            queue_capacity: QUEUE_CAP,
            ..SweepConfig::new(workload.clone(), WORKERS, vec![LOAD], opts.duration(2000))
        };
        // The c-FCFS reference line.
        let mut cf = CFcfs::new(WORKERS).with_capacity(QUEUE_CAP);
        let cf_out = run_point_with(&mut cf, &cfg, LOAD, opts.seed);
        let cf_slow = cf_out.summary.overall_slowdown.p999;
        csv.push(vec![workload.name.clone(), "c-FCFS".into(), ratio(cf_slow)]);

        let mut best = (usize::MAX, f64::INFINITY);
        for reserved in 0..=WORKERS {
            let mut p = DarcSim::fixed(&workload, WORKERS, reserved).with_capacity(QUEUE_CAP);
            let out = run_point_with(&mut p, &cfg, LOAD, opts.seed.wrapping_add(reserved as u64));
            let slow = out.summary.overall_slowdown.p999;
            // Per-type shed fractions from the engine's typed-queue drop
            // counters: a configuration that starves one class can shed
            // most of *that class* while total drops stay tiny (longs are
            // 0.5 % of Extreme Bimodal).
            let drop_frac = (0..workload.num_types())
                .map(|t| {
                    let ty = persephone_core::types::TypeId::new(t as u32);
                    let dropped = p.engine().drops(ty) as f64;
                    let served = out.summary.per_type[t].slowdown.count as f64;
                    if dropped + served > 0.0 {
                        dropped / (dropped + served)
                    } else {
                        0.0
                    }
                })
                .fold(0.0f64, f64::max);
            csv.push(vec![
                workload.name.clone(),
                reserved.to_string(),
                ratio(slow),
            ]);
            println!(
                "  {:<15} reserved={:<2} p99.9 slowdown = {:>10}  drops = {:.2}%",
                workload.name,
                reserved,
                ratio(slow),
                drop_frac * 100.0
            );
            // Configurations that only "win" by shedding load (flow
            // control dropping the starved long class) are not valid
            // operating points; the paper's best is the best *serving*
            // configuration (no class shed by more than 5 %).
            if drop_frac < 0.05 && slow < best.1 {
                best = (reserved, slow);
            }
        }
        cmp.row(
            format!("{}: best reserved-core count", workload.name),
            paper_best.to_string(),
            best.0.to_string(),
            "argmin of p99.9 slowdown",
        );
        cmp.row(
            format!("{}: improvement over c-FCFS", workload.name),
            paper_gain,
            times(cf_slow, best.1),
            format!("c-FCFS = {}", ratio(cf_slow)),
        );
    }
    opts.write_csv("fig04_static_reservation.csv", &csv);
    cmp.print("Figure 4 — paper vs measured");
}
