//! Ablation: the grouping factor δ (paper §3 — "Operators can tune the δ
//! grouping factor to adjust non work conservation to their desired
//! SLOs").
//!
//! Sweeps δ over TPC-C at 85 % load and reports the number of groups the
//! reservation forms, the Eq. 2 expected waste, and the resulting overall
//! and per-extreme-type p99.9 slowdowns. δ = 1 keeps all five types
//! separate (more fractional ties); large δ collapses everything into one
//! group (≡ c-FCFS, dispersion blocking returns).
//!
//! Run: `cargo run --release -p persephone-bench --bin abl01_delta`

use persephone_bench::BenchOpts;
use persephone_core::dispatch::{DarcEngine, EngineConfig};
use persephone_sim::experiment::{run_point_with, SweepConfig};
use persephone_sim::policies::darc::{ClassifyMode, DarcSim};
use persephone_sim::report::{ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
const LOAD: f64 = 0.85;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::tpcc();
    println!("# Ablation — grouping factor delta on TPC-C at 85% load ({WORKERS} workers)");

    let min_samples = if opts.quick { 5_000 } else { 30_000 };
    let cfg = SweepConfig {
        seed: opts.seed,
        darc_min_samples: min_samples,
        ..SweepConfig::new(workload.clone(), WORKERS, vec![LOAD], opts.duration(1000))
    };

    let mut csv = Table::new(vec![
        "delta",
        "groups",
        "expected_waste",
        "slowdown_p999",
        "payment_p999_us",
        "stocklevel_p999_us",
    ]);
    println!(
        "\n{:>6} {:>7} {:>9} {:>14} {:>14} {:>16}",
        "delta", "groups", "waste", "slowdown p999", "Payment p999", "StockLevel p999"
    );
    for delta in [1.0, 1.1, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let mut engine_cfg = EngineConfig::darc(WORKERS);
        engine_cfg.profiler.min_samples = min_samples;
        engine_cfg.reserve.delta = delta;
        let engine = DarcEngine::new(engine_cfg, workload.num_types(), &[None; 5]);
        let mut p = DarcSim::with_engine(
            engine,
            ClassifyMode::Exact,
            workload.num_types(),
            format!("DARC-d{delta}"),
        );
        let out = run_point_with(&mut p, &cfg, LOAD, opts.seed);
        let res = p.engine().reservation();
        let s = &out.summary;
        println!(
            "{:>6.1} {:>7} {:>9.2} {:>14} {:>14} {:>16}",
            delta,
            res.groups.len(),
            res.expected_waste,
            ratio(s.overall_slowdown.p999),
            us(s.per_type[0].latency_ns.p999),
            us(s.per_type[4].latency_ns.p999),
        );
        csv.push(vec![
            format!("{delta}"),
            res.groups.len().to_string(),
            format!("{:.3}", res.expected_waste),
            ratio(s.overall_slowdown.p999),
            us(s.per_type[0].latency_ns.p999),
            us(s.per_type[4].latency_ns.p999),
        ]);
    }
    opts.write_csv("abl01_delta.csv", &csv);
    println!(
        "\npaper expectation: delta≈2 forms the 3 groups of §5.4.3; very\n\
         large delta merges all types (c-FCFS-like tails for Payment),\n\
         delta=1 splits all five types and adds fractional-tie waste."
    );
}
