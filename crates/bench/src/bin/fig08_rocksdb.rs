//! Figure 8: the RocksDB workload (50 % GET at 1.5 µs, 50 % SCAN at
//! 635 µs — 420× dispersion) across Shenango, Shinjuku (15 µs quantum,
//! 75 % ceiling) and Perséphone. 14 workers, 10 µs RTT.
//!
//! Paper numbers reproduced: for a 20× slowdown target DARC sustains
//! 2.3× and 1.3× higher throughput than Shenango and Shinjuku; DARC
//! reserves 1 core for GETs and idles 0.96 core on average.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig08_rocksdb`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::policy::TsDiscipline;
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_sim::experiment::{
    capacity_rps_at_slo, run_point_with, sweep_system, PointResult, Slo, SweepConfig, SystemSpec,
};
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::{krps, ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::rocksdb();
    let peak = workload.peak_rate(WORKERS);
    println!(
        "# Figure 8 — RocksDB mix across systems ({} workers, peak {} kRPS)",
        WORKERS,
        krps(peak)
    );

    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let min_samples = if opts.quick { 1_000 } else { 10_000 };
    let cfg = SweepConfig {
        seed: opts.seed,
        rtt: Nanos::from_micros(10),
        darc_min_samples: min_samples,
        queue_capacity: QUEUE_CAP,
        // The mean service time is 318 µs, so long windows are needed for
        // enough tail samples per point.
        ..SweepConfig::new(workload.clone(), WORKERS, loads, opts.duration(20_000))
    };

    let systems = vec![
        SystemSpec::shenango_cfcfs(),
        SystemSpec::shinjuku(15, TsDiscipline::MultiQueue, 0.75),
        SystemSpec::persephone(),
    ];
    let mut csv = Table::new(vec![
        "system",
        "load",
        "offered_krps",
        "slowdown_p999",
        "get_latency_p999_us",
        "scan_latency_p999_us",
    ]);
    let slo = Slo::OverallSlowdown(20.0);
    let mut swept: Vec<(String, Vec<PointResult>)> = Vec::new();
    for sys in &systems {
        let points = sweep_system(sys, &cfg);
        for pt in &points {
            let Some(out) = &pt.output else { continue };
            csv.push(vec![
                sys.name.clone(),
                format!("{:.2}", pt.load),
                krps(pt.offered_rps),
                ratio(out.summary.overall_slowdown.p999),
                us(out.summary.per_type[0].latency_ns.p999),
                us(out.summary.per_type[1].latency_ns.p999),
            ]);
        }
        let cap = capacity_rps_at_slo(&points, slo).unwrap_or(0.0);
        println!(
            "  {:<12} capacity @ 20x slowdown = {} kRPS ({:.0}% of peak)",
            sys.name,
            krps(cap),
            100.0 * cap / peak
        );
        swept.push((sys.name.clone(), points));
    }
    opts.write_csv("fig08_rocksdb.csv", &csv);

    // DARC's reservation and idle measurement at 90 % load.
    let mut darc = DarcSim::dynamic(&workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
    let out = run_point_with(&mut darc, &cfg, 0.90, opts.seed);
    let res = darc.engine().reservation();
    let get_group = res.group_of(TypeId::new(0)).expect("GET group exists");
    let get_reserved = res.groups[get_group].reserved.clone();
    let idle: f64 = get_reserved
        .iter()
        .map(|w| 1.0 - out.worker_utilization(w.index()))
        .sum();

    let cap = |name: &str| {
        let pts = &swept.iter().find(|(n, _)| n == name).unwrap().1;
        capacity_rps_at_slo(pts, slo).unwrap_or(0.0)
    };
    let mut cmp = Comparison::new();
    cmp.row(
        "capacity gain vs Shenango @ 20x slowdown",
        "2.3x",
        times(cap("Persephone"), cap("Shenango")),
        "",
    );
    cmp.row(
        "capacity gain vs Shinjuku @ 20x slowdown",
        "1.3x",
        times(cap("Persephone"), cap("Shinjuku")),
        "Shinjuku ceiling 75%, 15us quantum",
    );
    cmp.row(
        "GET reserved cores",
        "1",
        get_reserved.len().to_string(),
        "GET demand = 0.0024 of total",
    );
    cmp.row(
        "average idle on the GET core",
        "0.96 core",
        format!("{idle:.2} core"),
        "measured at 90% load",
    );
    cmp.print("Figure 8 — paper vs measured");
}
