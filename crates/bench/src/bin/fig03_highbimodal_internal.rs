//! Figure 3: DARC vs c-FCFS vs d-FCFS *within Perséphone* on High
//! Bimodal (14 workers, 10 µs network RTT).
//!
//! Paper numbers reproduced: with c-FCFS, short requests see 309 µs
//! end-to-end p99.9 at 260 kRPS, driving overall slowdown to 283×; DARC
//! reserves 1 core for shorts, improves slowdown up to 15.7×, sustains
//! 2.3× more throughput under a 20 µs short-request SLO, costs long
//! requests up to 4.2×, and idles 0.86 core on average.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig03_highbimodal_internal`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_sim::experiment::{capacity_rps_at_slo, run_point_with, Slo, SweepConfig};
use persephone_sim::policies::cfcfs::CFcfs;
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::policies::dfcfs::DFcfs;
use persephone_sim::report::{krps, ratio, us, Table};
use persephone_sim::workload::Workload;
use persephone_sim::SimOutput;

const WORKERS: usize = 14;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::high_bimodal();
    let peak = workload.peak_rate(WORKERS);
    println!(
        "# Figure 3 — High Bimodal within Persephone ({} workers, peak {} kRPS, 10us RTT)",
        WORKERS,
        krps(peak)
    );

    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let min_samples = if opts.quick { 2_000 } else { 20_000 };
    let cfg = SweepConfig {
        seed: opts.seed,
        rtt: Nanos::from_micros(10),
        darc_min_samples: min_samples,
        queue_capacity: QUEUE_CAP,
        ..SweepConfig::new(
            workload.clone(),
            WORKERS,
            loads.clone(),
            opts.duration(3000),
        )
    };

    let mut csv = Table::new(vec![
        "policy",
        "load",
        "offered_krps",
        "slowdown_p999",
        "short_latency_p999_us",
        "long_latency_p999_us",
    ]);

    // Sweep each policy, keeping DARC's engine for waste accounting.
    type PolicyCurve = Vec<(f64, f64, SimOutput)>;
    let mut results: Vec<(String, PolicyCurve)> = Vec::new();
    let mut darc_waste = 0.0;
    for name in ["d-FCFS", "c-FCFS", "DARC"] {
        let mut pts = Vec::new();
        for (i, &load) in loads.iter().enumerate() {
            let seed = cfg.seed.wrapping_add(i as u64);
            let out = match name {
                "d-FCFS" => {
                    let mut p = DFcfs::new(WORKERS, seed).with_capacity(QUEUE_CAP);
                    run_point_with(&mut p, &cfg, load, seed)
                }
                "c-FCFS" => {
                    let mut p = CFcfs::new(WORKERS).with_capacity(QUEUE_CAP);
                    run_point_with(&mut p, &cfg, load, seed)
                }
                _ => {
                    let mut p =
                        DarcSim::dynamic(&workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
                    let out = run_point_with(&mut p, &cfg, load, seed);
                    // Average idle cores among the short group's reserved
                    // workers (the paper's "CPU waste": 0.86 core).
                    if (load - 0.90).abs() < 0.026 {
                        darc_waste = short_group_idle(&p, &out);
                    }
                    out
                }
            };
            csv.push(vec![
                name.to_string(),
                format!("{load:.2}"),
                krps(peak * load),
                ratio(out.summary.overall_slowdown.p999),
                us(out.summary.per_type[0].latency_ns.p999),
                us(out.summary.per_type[1].latency_ns.p999),
            ]);
            pts.push((load, peak * load, out));
        }
        results.push((name.to_string(), pts));
    }
    opts.write_csv("fig03_highbimodal_internal.csv", &csv);

    // Capacity under the paper's "20 us SLO for short requests"
    // (end-to-end, including the 10 us RTT).
    let slo = Slo::TypeLatency {
        ty: 0,
        bound: Nanos::from_micros(20),
    };
    let capacity = |name: &str| -> f64 {
        let pts = &results.iter().find(|(n, _)| n == name).unwrap().1;
        let as_points: Vec<persephone_sim::experiment::PointResult> = pts
            .iter()
            .map(|(load, rps, out)| persephone_sim::experiment::PointResult {
                load: *load,
                offered_rps: *rps,
                output: Some(out.clone()),
            })
            .collect();
        capacity_rps_at_slo(&as_points, slo).unwrap_or(0.0)
    };

    // The 260 kRPS comparison point (~94 % load).
    let at_94 = |name: &str| -> &SimOutput {
        let pts = &results.iter().find(|(n, _)| n == name).unwrap().1;
        &pts.iter()
            .min_by(|a, b| (a.0 - 0.94).abs().partial_cmp(&(b.0 - 0.94).abs()).unwrap())
            .unwrap()
            .2
    };
    let cf = at_94("c-FCFS");
    let darc = at_94("DARC");

    let mut cmp = Comparison::new();
    cmp.row(
        "c-FCFS short p99.9 @ ~260 kRPS",
        "309 us (end-to-end)",
        format!("{} us", us(cf.summary.per_type[0].latency_ns.p999)),
        "",
    );
    cmp.row(
        "c-FCFS overall slowdown @ ~260 kRPS",
        "283x",
        ratio(cf.summary.overall_slowdown.p999),
        "",
    );
    cmp.row(
        "DARC short p99.9 @ ~260 kRPS",
        "18 us (end-to-end)",
        format!("{} us", us(darc.summary.per_type[0].latency_ns.p999)),
        "",
    );
    cmp.row(
        "DARC slowdown gain over c-FCFS",
        "up to 15.7x",
        times(
            cf.summary.overall_slowdown.p999,
            darc.summary.overall_slowdown.p999,
        ),
        "at ~94% load",
    );
    cmp.row(
        "capacity gain @ 20us short SLO",
        "2.3x",
        times(capacity("DARC"), capacity("c-FCFS")),
        "",
    );
    cmp.row(
        "long-request tail cost",
        "up to 4.2x",
        times(
            darc.summary.per_type[1].latency_ns.p999,
            cf.summary.per_type[1].latency_ns.p999,
        ),
        "DARC vs c-FCFS long p99.9",
    );
    cmp.row(
        "DARC guaranteed short cores",
        "1",
        "see reservation log",
        "demand 0.139 rounds up to the 1-core minimum",
    );
    cmp.row(
        "average CPU waste",
        "0.86 core",
        format!("{darc_waste:.2} core"),
        "idle fraction of the short-reserved core at 90% load",
    );
    cmp.print("Figure 3 — paper vs measured");
}

/// Mean idle cores across the short group's reserved workers.
fn short_group_idle(p: &DarcSim, out: &SimOutput) -> f64 {
    let res = p.engine().reservation();
    let Some(g) = res.group_of(TypeId::new(0)) else {
        return 0.0;
    };
    res.groups[g]
        .reserved
        .iter()
        .map(|w| 1.0 - out.worker_utilization(w.index()))
        .sum()
}
