//! Figure 1: simulated achievable throughput vs p99.9 slowdown for
//! d-FCFS, c-FCFS, TS (5 µs quantum, 1 µs overhead) and DARC on
//! Extreme Bimodal with 16 workers and no network.
//!
//! Paper numbers reproduced: for a 10× per-type slowdown SLO, c-FCFS
//! sustains ~2.1 Mrps, TS ~3.7 Mrps, DARC ~5.1 Mrps of a ~5.3 Mrps peak;
//! at DARC's operating point short requests see ~9.87 µs p99.9 versus
//! 7738 µs (c-FCFS) and 161 µs (TS).
//!
//! Run: `cargo run --release -p persephone-bench --bin fig01_policies`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::policy::{Policy, TimeSharingParams};
use persephone_sim::experiment::{capacity_rps_at_slo, sweep, Slo, SweepConfig};
use persephone_sim::report::{mrps, ratio, us, Table};
use persephone_sim::workload::Workload;

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::extreme_bimodal();
    let workers = 16;
    let peak = workload.peak_rate(workers);
    println!(
        "# Figure 1 — policy comparison on {} ({} workers, peak {} Mrps)",
        workload.name,
        workers,
        mrps(peak)
    );

    let policies = vec![
        Policy::DFcfs,
        Policy::CFcfs,
        Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()),
        Policy::Darc,
    ];
    let loads: Vec<f64> = (1..=24).map(|i| i as f64 * 0.04).collect();
    let cfg = SweepConfig {
        seed: opts.seed,
        darc_min_samples: if opts.quick { 5_000 } else { 50_000 },
        ..SweepConfig::new(workload.clone(), workers, loads, opts.duration(400))
    };

    let slo = Slo::PerTypeSlowdown(10.0);
    let mut csv = Table::new(vec![
        "policy",
        "load",
        "offered_mrps",
        "slowdown_p999",
        "short_slowdown_p999",
        "long_slowdown_p999",
        "short_latency_p999_us",
        "long_latency_p999_us",
    ]);
    let mut capacities = Vec::new();
    let mut short_tail_at_096 = Vec::new();
    for p in &policies {
        let points = sweep(p, &cfg);
        for pt in &points {
            let Some(out) = &pt.output else { continue };
            let s = &out.summary;
            csv.push(vec![
                p.name(),
                format!("{:.2}", pt.load),
                mrps(pt.offered_rps),
                ratio(s.overall_slowdown.p999),
                ratio(s.per_type[0].slowdown.p999),
                ratio(s.per_type[1].slowdown.p999),
                us(s.per_type[0].latency_ns.p999),
                us(s.per_type[1].latency_ns.p999),
            ]);
        }
        let cap = capacity_rps_at_slo(&points, slo).unwrap_or(0.0);
        capacities.push((p.name(), cap));
        // Short-request p99.9 latency at ~96 % load (DARC's operating
        // point in the paper's §2 discussion).
        let at = points
            .iter()
            .filter(|pt| pt.output.is_some())
            .min_by(|a, b| {
                (a.load - 0.96)
                    .abs()
                    .partial_cmp(&(b.load - 0.96).abs())
                    .unwrap()
            })
            .unwrap();
        short_tail_at_096.push((
            p.name(),
            at.output.as_ref().unwrap().summary.per_type[0]
                .latency_ns
                .p999,
        ));
        println!(
            "  {:<8} capacity @ 10x per-type slowdown: {} Mrps ({:.0}% of peak)",
            p.name(),
            mrps(cap),
            100.0 * cap / peak
        );
    }
    opts.write_csv("fig01_policies.csv", &csv);

    let cap = |name: &str| {
        capacities
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    };
    let tail = |name: &str| {
        short_tail_at_096
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    };

    let mut cmp = Comparison::new();
    cmp.row(
        "peak load (16 workers)",
        "5.3 Mrps",
        format!("{} Mrps", mrps(peak)),
        "workers / mean service",
    );
    cmp.row(
        "c-FCFS capacity @ SLO",
        "2.1 Mrps (40% peak)",
        format!("{} Mrps", mrps(cap("c-FCFS"))),
        "10x per-type p99.9 slowdown",
    );
    cmp.row(
        "TS capacity @ SLO",
        "3.7 Mrps (70% peak)",
        format!("{} Mrps", mrps(cap("TS-1us"))),
        "5us quantum, 1us overhead",
    );
    cmp.row(
        "DARC capacity @ SLO",
        "5.1 Mrps (96% peak)",
        format!("{} Mrps", mrps(cap("DARC"))),
        "",
    );
    cmp.row(
        "DARC vs c-FCFS capacity",
        "2.5x",
        times(cap("DARC"), cap("c-FCFS")),
        "",
    );
    cmp.row(
        "DARC vs TS capacity",
        "1.4x",
        times(cap("DARC"), cap("TS-1us")),
        "",
    );
    cmp.row(
        "short p99.9 @ ~96% load: DARC",
        "9.87 us",
        format!("{} us", us(tail("DARC"))),
        "",
    );
    cmp.row(
        "short p99.9 @ ~96% load: c-FCFS",
        "7738 us",
        format!("{} us", us(tail("c-FCFS"))),
        "3 orders of magnitude over DARC",
    );
    cmp.row(
        "short p99.9 @ ~96% load: TS",
        "161 us",
        format!("{} us", us(tail("TS-1us"))),
        "1 order of magnitude over DARC",
    );
    cmp.print("Figure 1 — paper vs measured");
}
