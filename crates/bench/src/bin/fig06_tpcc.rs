//! Figure 6: TPC-C across Shenango, Shinjuku (10 µs quantum, 85 %
//! ceiling) and Perséphone. 14 workers, 10 µs RTT.
//!
//! Paper numbers reproduced: DARC groups {Payment, OrderStatus} on
//! workers 1–2, {NewOrder} on 3–8, {Delivery, StockLevel} on 9–14; at
//! 85 % load it improves Payment/OrderStatus/NewOrder p99.9 latency by
//! 9.2×/7×/3.6× over Shenango's c-FCFS, cutting overall slowdown up to
//! 4.6× (and up to 3.1× vs Shinjuku); for a 10× slowdown target it
//! sustains 1.2×/1.05× more throughput.
//!
//! Run: `cargo run --release -p persephone-bench --bin fig06_tpcc`

use persephone_bench::{times, BenchOpts, Comparison};
use persephone_core::policy::TsDiscipline;
use persephone_core::time::Nanos;
use persephone_core::types::TypeId;
use persephone_sim::experiment::{
    capacity_rps_at_slo, run_point_with, sweep_system, PointResult, Slo, SweepConfig, SystemSpec,
};
use persephone_sim::policies::darc::DarcSim;
use persephone_sim::report::{krps, ratio, us, Table};
use persephone_sim::workload::Workload;

const WORKERS: usize = 14;
// Bounded queues: the real systems shed load at saturation (paper
// §4.3.3 flow control; Shinjuku drops packets past its ceiling).
const QUEUE_CAP: usize = 4096;

const TX_NAMES: [&str; 5] = [
    "Payment",
    "OrderStatus",
    "NewOrder",
    "Delivery",
    "StockLevel",
];

fn main() {
    let opts = BenchOpts::from_args();
    let workload = Workload::tpcc();
    let peak = workload.peak_rate(WORKERS);
    println!(
        "# Figure 6 — TPC-C across systems ({} workers, peak {} kRPS)",
        WORKERS,
        krps(peak)
    );

    let loads: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();
    let min_samples = if opts.quick { 5_000 } else { 50_000 };
    let cfg = SweepConfig {
        seed: opts.seed,
        rtt: Nanos::from_micros(10),
        darc_min_samples: min_samples,
        queue_capacity: QUEUE_CAP,
        ..SweepConfig::new(workload.clone(), WORKERS, loads, opts.duration(1000))
    };

    // First show DARC's grouping decision on the declared profile.
    {
        let mut darc = DarcSim::dynamic(&workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
        let _ = run_point_with(&mut darc, &cfg, 0.5, opts.seed);
        let res = darc.engine().reservation();
        println!("\nDARC grouping after profiling:");
        for (gi, g) in res.groups.iter().enumerate() {
            let names: Vec<&str> = g.types.iter().map(|t| TX_NAMES[t.index()]).collect();
            println!(
                "  group {gi}: {:?} -> {} reserved worker(s) {:?}, {} stealable",
                names,
                g.reserved.len(),
                g.reserved.iter().map(|w| w.index() + 1).collect::<Vec<_>>(),
                g.stealable.len()
            );
        }
    }

    let systems = vec![
        SystemSpec::shenango_cfcfs(),
        SystemSpec::shinjuku(10, TsDiscipline::MultiQueue, 0.85),
        SystemSpec::persephone(),
    ];
    let mut csv = Table::new(vec![
        "system",
        "load",
        "offered_krps",
        "slowdown_p999",
        "payment_p999_us",
        "orderstatus_p999_us",
        "neworder_p999_us",
        "delivery_p999_us",
        "stocklevel_p999_us",
    ]);
    let mut swept: Vec<(String, Vec<PointResult>)> = Vec::new();
    for sys in &systems {
        let points = sweep_system(sys, &cfg);
        for pt in &points {
            let Some(out) = &pt.output else { continue };
            let mut row = vec![
                sys.name.clone(),
                format!("{:.2}", pt.load),
                krps(pt.offered_rps),
                ratio(out.summary.overall_slowdown.p999),
            ];
            for t in 0..5 {
                row.push(us(out.summary.per_type[t].latency_ns.p999));
            }
            csv.push(row);
        }
        swept.push((sys.name.clone(), points));
    }
    opts.write_csv("fig06_tpcc.csv", &csv);

    let at_085 = |name: &str| {
        let pts = &swept.iter().find(|(n, _)| n == name).unwrap().1;
        pts.iter()
            .filter(|p| p.output.is_some())
            .min_by(|a, b| {
                (a.load - 0.85)
                    .abs()
                    .partial_cmp(&(b.load - 0.85).abs())
                    .unwrap()
            })
            .and_then(|p| p.output.clone())
            .expect("85% point simulated")
    };
    let shen = at_085("Shenango");
    let shin = at_085("Shinjuku");
    let pers = at_085("Persephone");

    let mut cmp = Comparison::new();
    for (t, paper_gain) in [(0usize, "9.2x"), (1, "7x"), (2, "3.6x")] {
        cmp.row(
            format!("{} p99.9 gain vs Shenango @ 85%", TX_NAMES[t]),
            paper_gain,
            times(
                shen.summary.per_type[t].latency_ns.p999,
                pers.summary.per_type[t].latency_ns.p999,
            ),
            "",
        );
    }
    cmp.row(
        "overall slowdown gain vs Shenango @ 85%",
        "up to 4.6x",
        times(
            shen.summary.overall_slowdown.p999,
            pers.summary.overall_slowdown.p999,
        ),
        "",
    );
    cmp.row(
        "overall slowdown gain vs Shinjuku @ 85%",
        "up to 3.1x",
        times(
            shin.summary.overall_slowdown.p999,
            pers.summary.overall_slowdown.p999,
        ),
        "",
    );
    let slo = Slo::OverallSlowdown(10.0);
    let cap = |name: &str| {
        let pts = &swept.iter().find(|(n, _)| n == name).unwrap().1;
        capacity_rps_at_slo(pts, slo).unwrap_or(0.0)
    };
    cmp.row(
        "capacity gain vs Shenango @ 10x slowdown",
        "1.2x",
        times(cap("Persephone"), cap("Shenango")),
        "",
    );
    cmp.row(
        "capacity gain vs Shinjuku @ 10x slowdown",
        "1.05x",
        times(cap("Persephone"), cap("Shinjuku")),
        "",
    );
    // The trade-off side: long transactions pay under DARC.
    cmp.row(
        "StockLevel p99.9 @ 85% (DARC vs Shenango)",
        "worse under DARC",
        times(
            pers.summary.per_type[4].latency_ns.p999,
            shen.summary.per_type[4].latency_ns.p999,
        ),
        "longs excluded from 8 of 14 workers",
    );
    // Reservation sanity: the paper's worker split.
    {
        let mut darc = DarcSim::dynamic(&workload, WORKERS, min_samples).with_capacity(QUEUE_CAP);
        let _ = run_point_with(&mut darc, &cfg, 0.85, opts.seed);
        let g = |t: u32| darc.engine().guaranteed_workers(TypeId::new(t));
        cmp.row(
            "worker split A/B/C",
            "2/6/6",
            format!("{}/{}/{}", g(0), g(2), g(3)),
            "guaranteed cores per group",
        );
    }
    cmp.print("Figure 6 — paper vs measured");
}
