//! A drop-in stand-in for the slice of the Criterion API our
//! microbenches use, built on `std::time::Instant` so the workspace
//! carries no registry dependency and `cargo bench` runs offline.
//!
//! Semantics: each `bench_function` auto-calibrates an iteration count
//! targeting a few milliseconds per sample, warms up, collects a batch
//! of samples, and reports median / mean / p95 ns-per-iteration (plus
//! element throughput when a [`Throughput`] was set on the group). With
//! the `heavy-testing` feature the sample count and per-sample time
//! rise for tighter statistics.

use std::time::{Duration, Instant};

#[cfg(feature = "heavy-testing")]
const SAMPLES: usize = 100;
#[cfg(not(feature = "heavy-testing"))]
const SAMPLES: usize = 30;

#[cfg(feature = "heavy-testing")]
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
#[cfg(not(feature = "heavy-testing"))]
const SAMPLE_TARGET: Duration = Duration::from_millis(3);

/// Top-level benchmark driver (one per binary).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
        }
    }
}

/// Declared per-iteration work, for ops/sec reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Each iteration processes this many elements.
    Elements(u64),
}

/// How `iter_batched` sizes its input batches. We always size batches
/// to the calibrated sample length, so the variants only exist for API
/// compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs (batch freely).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A named collection of benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its stats.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples_ns: Vec::with_capacity(SAMPLES),
        };
        f(&mut b);
        b.report(&self.name, &id, self.throughput);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; collects timing samples.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine` in a steady-state loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = calibrate(|| {
            std::hint::black_box(routine());
        });
        // Warm-up: one full sample that is thrown away.
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    /// Measures `routine` over inputs freshly built by `setup`, with
    /// setup time excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate on growing batches until one lasts long enough.
        let mut n = 1u64;
        let per_iter_ns = loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t0 = Instant::now();
            for i in inputs {
                std::hint::black_box(routine(i));
            }
            let dt = t0.elapsed();
            if dt >= SAMPLE_TARGET / 4 || n >= 1 << 20 {
                break (dt.as_nanos() as f64 / n as f64).max(0.1);
            }
            n *= 4;
        };
        let n = ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns) as u64).clamp(1, 1 << 22);
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let t0 = Instant::now();
            for i in inputs {
                std::hint::black_box(routine(i));
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / n as f64);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        let mut s = self.samples_ns.clone();
        if s.is_empty() {
            println!("{group}/{id}: no samples collected");
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let p95 = s[(s.len() * 95 / 100).min(s.len() - 1)];
        let thru = match throughput {
            Some(Throughput::Elements(e)) if median > 0.0 => {
                format!("  ({:.2} Melem/s)", e as f64 * 1e3 / median)
            }
            _ => String::new(),
        };
        println!(
            "{group}/{id}: median {median:.1} ns/iter  mean {mean:.1}  p95 {p95:.1}  ({} samples){thru}",
            s.len()
        );
    }
}

/// Picks an iteration count so one sample lasts ≈[`SAMPLE_TARGET`].
fn calibrate<F: FnMut()>(mut probe: F) -> u64 {
    let mut n = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..n {
            probe();
        }
        let dt = t0.elapsed();
        if dt >= SAMPLE_TARGET / 4 || n >= 1 << 24 {
            let per = (dt.as_nanos() as f64 / n as f64).max(0.1);
            return ((SAMPLE_TARGET.as_nanos() as f64 / per) as u64).clamp(1, 1 << 26);
        }
        n *= 4;
    }
}

/// Builds the function Criterion's `criterion_main!` invokes.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::crit::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
