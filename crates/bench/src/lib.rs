//! # persephone-bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (see
//! `src/bin/`): each runs the relevant simulation sweep, prints a
//! markdown table of **paper value vs measured value**, and writes the
//! raw series as CSV under `target/experiments/`.
//!
//! Shared infrastructure lives here: CLI options (`--quick` for CI-speed
//! runs, `--out <dir>`, `--seed <n>`), and the comparison-table helper.
//!
//! Microbenches (`benches/`, driven by the Criterion-compatible harness
//! in [`crit`]) cover the paper's §4.3.2/§4.3.3 cost claims: SPSC
//! channel ops, classifier cost, profiler update, update check, and
//! reservation computation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crit;

use std::path::{Path, PathBuf};

use persephone_core::time::Nanos;
use persephone_sim::report::Table;

/// Command-line options shared by every figure binary.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Shrink simulated durations ~10× (CI / smoke runs).
    pub quick: bool,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            quick: false,
            out_dir: PathBuf::from("target/experiments"),
            seed: 0xBEEF,
        }
    }
}

impl BenchOpts {
    /// Parses `--quick`, `--out <dir>`, `--seed <n>` from `std::env::args`.
    ///
    /// Unknown flags abort with a usage message (better than silently
    /// ignoring a typoed option on a long experiment).
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--out" => {
                    let dir = args.next().unwrap_or_else(|| usage("--out needs a value"));
                    opts.out_dir = PathBuf::from(dir);
                }
                "--seed" => {
                    let s = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = s.parse().unwrap_or_else(|_| usage("--seed needs a number"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Scales a default simulated duration: `--quick` divides by 10.
    pub fn duration(&self, default_ms: u64) -> Nanos {
        if self.quick {
            Nanos::from_millis((default_ms / 10).max(20))
        } else {
            Nanos::from_millis(default_ms)
        }
    }

    /// Writes `table` as CSV into the output directory and echoes the path.
    pub fn write_csv(&self, name: &str, table: &Table) {
        let path: PathBuf = self.out_dir.join(name);
        match table.write_csv(Path::new(&path)) {
            Ok(()) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
        }
    }

    /// Writes a plain-text artifact (e.g. a telemetry JSON-lines export)
    /// into the output directory, creating parent directories.
    pub fn write_text(&self, name: &str, contents: &str) {
        let path: PathBuf = self.out_dir.join(name);
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, contents)
        };
        match write() {
            Ok(()) => println!("[out] {}", path.display()),
            Err(e) => eprintln!("[out] failed to write {}: {e}", path.display()),
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <figure-bin> [--quick] [--out <dir>] [--seed <n>]");
    std::process::exit(2)
}

/// A "paper vs measured" comparison accumulated by a figure binary.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    rows: Vec<(String, String, String, String)>,
}

impl Comparison {
    /// Creates an empty comparison.
    pub fn new() -> Self {
        Comparison::default()
    }

    /// Adds a row: metric name, the paper's value, our measured value,
    /// and a free-form note.
    pub fn row(
        &mut self,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        note: impl Into<String>,
    ) {
        self.rows
            .push((metric.into(), paper.into(), measured.into(), note.into()));
    }

    /// Renders the comparison as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut t = Table::new(vec!["metric", "paper", "measured", "note"]);
        for (m, p, me, n) in &self.rows {
            t.push(vec![m.clone(), p.clone(), me.clone(), n.clone()]);
        }
        t.to_markdown()
    }

    /// Prints the table with a heading.
    pub fn print(&self, heading: &str) {
        println!("\n## {heading}\n");
        print!("{}", self.to_markdown());
    }
}

/// Formats an "N.NNx" ratio cell, guarding against zero denominators.
pub fn times(n: f64, d: f64) -> String {
    if d <= 0.0 {
        "n/a".into()
    } else {
        format!("{:.2}x", n / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scaling() {
        let full = BenchOpts::default();
        assert_eq!(full.duration(1000), Nanos::from_millis(1000));
        let quick = BenchOpts {
            quick: true,
            ..Default::default()
        };
        assert_eq!(quick.duration(1000), Nanos::from_millis(100));
        assert_eq!(quick.duration(50), Nanos::from_millis(20), "floor at 20 ms");
    }

    #[test]
    fn comparison_renders_markdown() {
        let mut c = Comparison::new();
        c.row("capacity", "5.1 Mrps", "5.0 Mrps", "within 2%");
        let md = c.to_markdown();
        assert!(md.contains("| capacity"));
        assert!(md.contains("5.1 Mrps"));
    }

    #[test]
    fn times_formats_and_guards() {
        assert_eq!(times(4.0, 2.0), "2.00x");
        assert_eq!(times(1.0, 0.0), "n/a");
    }
}
