//! Deterministic pseudo-random numbers for reproducible runs.
//!
//! Every simulation run — and every scenario-driven load-generator run —
//! is driven by a seeded [`Rng`] (xoshiro256++), so a `(seed, workload,
//! policy, config)` tuple always reproduces the exact same event
//! sequence. The simulator, the threaded runtime's client, and the
//! scenario engine all draw from this one implementation, which is why a
//! spec replays identically on both backends. No external RNG crates are
//! used on any hot path.

/// A xoshiro256++ generator with a splitmix64-based seeder.
///
/// # Examples
///
/// ```
/// use persephone_core::rng::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // Seed the xoshiro state through splitmix64, as its authors advise.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derives an independent stream: useful to decorrelate arrival,
    /// service, and type-choice randomness from a single experiment seed.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // audit:allow(A1): constant indices into the fixed [u64; 4] state
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        // audit:allow(A1): constant indices into the fixed [u64; 4] state
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        // audit:allow(A1): constant indices into the fixed [u64; 4] state
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        // audit:allow(A1): constant indices into the fixed [u64; 4] state
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` (never zero — safe for `ln`).
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        // audit:allow(A1): n == 0 is a caller bug; crashing is the contract
        assert!(n > 0, "next_below(0)");
        // Lemire-style widening multiply; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// An exponentially distributed value with the given mean.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        -mean * self.next_f64_open().ln()
    }

    /// A standard normal deviate (Box–Muller, one value per call).
    #[inline]
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "pick_weighted needs positive weights"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_decorrelates() {
        let mut a = Rng::new(5);
        let mut f1 = a.fork();
        let mut f2 = a.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn next_below_stays_in_range_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = Rng::new(42);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.next_exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = Rng::new(77);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn weighted_pick_matches_ratios() {
        let mut r = Rng::new(3);
        let weights = [0.995, 0.005];
        let mut counts = [0u64; 2];
        for _ in 0..200_000 {
            counts[r.pick_weighted(&weights)] += 1;
        }
        let ratio = counts[1] as f64 / 200_000.0;
        assert!((ratio - 0.005).abs() < 0.002, "long ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive weights")]
    fn weighted_pick_rejects_empty() {
        Rng::new(0).pick_weighted(&[]);
    }
}
