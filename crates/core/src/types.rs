//! Request types, workers, and the type registry.
//!
//! DARC is *application-aware*: every incoming request carries a type
//! extracted by a user-provided classifier (paper §4.2). Types are small
//! dense integers so the dispatcher can index per-type state in O(1) on
//! its critical path.

use core::fmt;

use crate::time::Nanos;

/// Identifier of a request type, as produced by a request classifier.
///
/// Types are dense small integers assigned at registration time. The
/// distinguished [`TypeId::UNKNOWN`] value marks requests the classifier
/// could not recognize; Perséphone services those on spillway cores at the
/// lowest priority (paper §3, §4.2).
///
/// # Examples
///
/// ```
/// use persephone_core::types::TypeId;
///
/// let get = TypeId::new(0);
/// assert!(!get.is_unknown());
/// assert!(TypeId::UNKNOWN.is_unknown());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(u32);

impl TypeId {
    /// The type assigned to requests the classifier cannot recognize.
    pub const UNKNOWN: TypeId = TypeId(u32::MAX);

    /// Creates a type id from a dense index.
    #[inline]
    pub const fn new(idx: u32) -> Self {
        TypeId(idx)
    }

    /// The dense index of this type.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the UNKNOWN sentinel.
    #[inline]
    pub const fn is_unknown(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "TypeId(UNKNOWN)")
        } else {
            write!(f, "TypeId({})", self.0)
        }
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "UNKNOWN")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

/// Identifier of an application worker (a core in the paper's model).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(u32);

impl WorkerId {
    /// Creates a worker id from a dense index.
    #[inline]
    pub const fn new(idx: u32) -> Self {
        WorkerId(idx)
    }

    /// The dense index of this worker.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WorkerId({})", self.0)
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Static description of one request type as declared by the application.
///
/// The declared `hint_service` seeds the profiler before any completion has
/// been observed; DARC then refines the estimate online (paper §3,
/// "profiling windows").
#[derive(Clone, Debug, PartialEq)]
pub struct TypeSpec {
    /// Human-readable name ("GET", "Payment", ...).
    pub name: String,
    /// Optional a-priori mean service time hint; `None` means the type
    /// starts unprofiled and relies on the warm-up window.
    pub hint_service: Option<Nanos>,
}

impl TypeSpec {
    /// Creates a spec with a name and no service-time hint.
    pub fn new(name: impl Into<String>) -> Self {
        TypeSpec {
            name: name.into(),
            hint_service: None,
        }
    }

    /// Creates a spec with an a-priori mean service-time hint.
    pub fn with_hint(name: impl Into<String>, hint: Nanos) -> Self {
        TypeSpec {
            name: name.into(),
            hint_service: Some(hint),
        }
    }
}

/// Registry of the request types declared by the application.
///
/// The registry owns the dense `TypeId` space. It is immutable once the
/// dispatcher starts; dynamic behaviour (service times drifting, ratios
/// changing) is handled by the profiler, not by re-registering types.
///
/// # Examples
///
/// ```
/// use persephone_core::types::{TypeRegistry, TypeSpec};
///
/// let mut reg = TypeRegistry::new();
/// let get = reg.register(TypeSpec::new("GET"));
/// let scan = reg.register(TypeSpec::new("SCAN"));
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.spec(get).unwrap().name, "GET");
/// assert_ne!(get, scan);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TypeRegistry {
    specs: Vec<TypeSpec>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TypeRegistry { specs: Vec::new() }
    }

    /// Registers a type and returns its dense id.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX - 1` types are registered (the last
    /// value is reserved for [`TypeId::UNKNOWN`]).
    pub fn register(&mut self, spec: TypeSpec) -> TypeId {
        assert!(
            self.specs.len() < (u32::MAX - 1) as usize,
            "type id space exhausted"
        );
        let id = TypeId::new(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Number of registered types (not counting UNKNOWN).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no types are registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks up the spec for a type; `None` for UNKNOWN or out-of-range ids.
    pub fn spec(&self, ty: TypeId) -> Option<&TypeSpec> {
        if ty.is_unknown() {
            None
        } else {
            self.specs.get(ty.index())
        }
    }

    /// The name of a type, `"UNKNOWN"` for the sentinel.
    pub fn name(&self, ty: TypeId) -> &str {
        if ty.is_unknown() {
            "UNKNOWN"
        } else {
            self.specs
                .get(ty.index())
                .map(|s| s.name.as_str())
                .unwrap_or("<invalid>")
        }
    }

    /// Iterates over `(TypeId, &TypeSpec)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| (TypeId::new(i as u32), s))
    }

    /// All registered ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.specs.len()).map(|i| TypeId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_dense_ids() {
        let mut reg = TypeRegistry::new();
        let a = reg.register(TypeSpec::new("A"));
        let b = reg.register(TypeSpec::new("B"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn unknown_is_distinguished() {
        assert!(TypeId::UNKNOWN.is_unknown());
        assert!(!TypeId::new(0).is_unknown());
        let reg = TypeRegistry::new();
        assert!(reg.spec(TypeId::UNKNOWN).is_none());
        assert_eq!(reg.name(TypeId::UNKNOWN), "UNKNOWN");
    }

    #[test]
    fn spec_lookup_out_of_range_is_none() {
        let mut reg = TypeRegistry::new();
        reg.register(TypeSpec::new("A"));
        assert!(reg.spec(TypeId::new(3)).is_none());
        assert_eq!(reg.name(TypeId::new(3)), "<invalid>");
    }

    #[test]
    fn hints_are_preserved() {
        let mut reg = TypeRegistry::new();
        let t = reg.register(TypeSpec::with_hint("GET", Nanos::from_micros(2)));
        assert_eq!(
            reg.spec(t).unwrap().hint_service,
            Some(Nanos::from_micros(2))
        );
    }

    #[test]
    fn iter_yields_registration_order() {
        let mut reg = TypeRegistry::new();
        reg.register(TypeSpec::new("A"));
        reg.register(TypeSpec::new("B"));
        let names: Vec<_> = reg.iter().map(|(_, s)| s.name.clone()).collect();
        assert_eq!(names, vec!["A", "B"]);
        let ids: Vec<_> = reg.ids().collect();
        assert_eq!(ids, vec![TypeId::new(0), TypeId::new(1)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TypeId::new(3)), "T3");
        assert_eq!(format!("{}", TypeId::UNKNOWN), "UNKNOWN");
        assert_eq!(format!("{}", WorkerId::new(2)), "w2");
        assert_eq!(format!("{:?}", TypeId::UNKNOWN), "TypeId(UNKNOWN)");
    }
}
