//! DARC worker reservation (paper §3, Algorithm 2).
//!
//! Given per-type statistics `(S_i, R_i)` the reservation algorithm:
//!
//! 1. groups types whose mean service times fall within a factor `δ` of
//!    each other (fewer groups ⇒ fewer fractional ties);
//! 2. computes each group's CPU demand `Δ_g = Σ S_i·R_i / Σ_all S_j·R_j`
//!    (Eq. 1) and rounds `Δ_g · W` to whole workers, reserving at least
//!    one worker per group;
//! 3. walks groups in ascending service-time order, so shorter groups
//!    reserve first; when workers run out, `next_free_worker()` hands out
//!    *spillway* cores so no group is denied service;
//! 4. marks every worker reserved *after* a group as *stealable* by that
//!    group: shorter requests may run on cores reserved for longer types
//!    (cycle stealing), never the reverse.
//!
//! The expected CPU waste of an allocation follows the paper's Eq. 2:
//! `Σ_{g : f_g ≥ 0.5} (1 − f_g)` over the fractional parts `f_g` of the
//! groups' demands.

use crate::profile::{demands_of, TypeStat};
use crate::types::{TypeId, WorkerId};

/// Parameters of the reservation algorithm.
#[derive(Clone, Debug)]
pub struct ReserveConfig {
    /// Total number of application workers `W`.
    pub num_workers: usize,
    /// Similarity factor `δ`: a type joins a group when its mean service
    /// time is at most `δ ×` the group's first (shortest) member.
    pub delta: f64,
    /// Number of spillway cores, taken from the highest worker indices
    /// (paper: 1).
    pub spillway: usize,
}

impl ReserveConfig {
    /// Creates a config with the paper's defaults (`δ = 2`, one spillway).
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: usize) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        ReserveConfig {
            num_workers,
            delta: 2.0,
            spillway: 1,
        }
    }

    /// Sets the grouping factor `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the number of spillway cores.
    pub fn with_spillway(mut self, spillway: usize) -> Self {
        self.spillway = spillway.min(self.num_workers);
        self
    }
}

/// A group of request types with similar service times and its workers.
#[derive(Clone, Debug, PartialEq)]
pub struct Group {
    /// Member types, ascending by mean service time.
    pub types: Vec<TypeId>,
    /// Weighted mean service time of the group, nanoseconds
    /// (`Σ S_i·R_i / Σ R_i` over members).
    pub mean_service_ns: f64,
    /// The group's fraction of total CPU demand (Eq. 1), in `[0, 1]`.
    pub demand: f64,
    /// Workers reserved for this group, ascending.
    pub reserved: Vec<WorkerId>,
    /// Workers this group may steal: every worker reserved after it
    /// (longer groups' workers and any leftover cores).
    pub stealable: Vec<WorkerId>,
}

impl Group {
    /// Reserved workers followed by stealable workers — the search order
    /// of the dispatch algorithm (paper Algorithm 1).
    pub fn candidate_workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.reserved.iter().chain(self.stealable.iter()).copied()
    }
}

/// A complete worker allocation produced by [`reserve`].
#[derive(Clone, Debug, PartialEq)]
pub struct Reservation {
    /// Groups in ascending service-time order (dispatch priority order).
    pub groups: Vec<Group>,
    /// The spillway cores (highest worker indices).
    pub spillway: Vec<WorkerId>,
    /// Total workers in the system.
    pub num_workers: usize,
    /// Expected average CPU waste in cores (Eq. 2).
    pub expected_waste: f64,
    /// `type_to_group[ty.index()]`: which group serves the type; `None`
    /// routes the type to the spillway (zero-demand or unprofiled types).
    type_to_group: Vec<Option<usize>>,
}

impl Reservation {
    /// The group index serving `ty`, or `None` if the type is served only
    /// by the spillway (includes UNKNOWN and out-of-range types).
    #[inline]
    pub fn group_of(&self, ty: TypeId) -> Option<usize> {
        if ty.is_unknown() {
            return None;
        }
        self.type_to_group.get(ty.index()).copied().flatten()
    }

    /// Iterates over types in dispatch priority order: groups ascending by
    /// service time, member types ascending within each group.
    pub fn priority_order(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.groups.iter().flat_map(|g| g.types.iter().copied())
    }

    /// Total workers reserved across groups (spillway hand-outs excluded).
    pub fn reserved_count(&self) -> usize {
        let mut seen = vec![false; self.num_workers];
        for g in &self.groups {
            for w in &g.reserved {
                seen[w.index()] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Builds the degenerate single-group allocation: every type shares
    /// every worker. Equivalent to c-FCFS and used for the warm-up phase.
    pub fn all_shared(num_types: usize, num_workers: usize) -> Reservation {
        let workers: Vec<WorkerId> = (0..num_workers).map(|i| WorkerId::new(i as u32)).collect();
        let spillway = workers.last().copied().into_iter().collect();
        Reservation {
            groups: vec![Group {
                types: (0..num_types).map(|i| TypeId::new(i as u32)).collect(),
                mean_service_ns: 0.0,
                demand: 1.0,
                reserved: workers,
                stealable: Vec::new(),
            }],
            spillway,
            num_workers,
            expected_waste: 0.0,
            type_to_group: vec![Some(0); num_types],
        }
    }

    /// Builds a caller-specified static allocation from explicit groups.
    ///
    /// `type_to_group` is derived from the groups' member lists; types not
    /// named by any group route to the spillway. Intended for tests and
    /// operators pinning a hand-crafted layout via `EngineMode::Static`.
    ///
    /// # Panics
    ///
    /// Panics if `num_workers == 0` or any referenced worker index is out
    /// of range.
    pub fn custom(
        groups: Vec<Group>,
        spillway: Vec<WorkerId>,
        num_types: usize,
        num_workers: usize,
    ) -> Reservation {
        assert!(num_workers > 0, "need at least one worker");
        let in_range = |w: &WorkerId| w.index() < num_workers;
        assert!(
            spillway.iter().all(in_range)
                && groups
                    .iter()
                    .all(|g| g.reserved.iter().all(in_range) && g.stealable.iter().all(in_range)),
            "worker index out of range"
        );
        let mut type_to_group = vec![None; num_types];
        for (gi, g) in groups.iter().enumerate() {
            for t in &g.types {
                if t.index() < num_types {
                    type_to_group[t.index()] = Some(gi);
                }
            }
        }
        Reservation {
            groups,
            spillway,
            num_workers,
            expected_waste: 0.0,
            type_to_group,
        }
    }

    /// Builds the "DARC-static" two-class allocation of paper §5.3: the
    /// single `short` type gets `reserved_short` dedicated workers *and*
    /// may run on all remaining workers (stealable); every other type
    /// shares the remaining `W − reserved_short` workers.
    ///
    /// `reserved_short == 0` degenerates to Fixed Priority scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `reserved_short > num_workers` or `num_types == 0`.
    pub fn two_class_static(
        num_types: usize,
        num_workers: usize,
        short: TypeId,
        reserved_short: usize,
    ) -> Reservation {
        assert!(reserved_short <= num_workers);
        assert!(num_types > 0);
        let short_reserved: Vec<WorkerId> = (0..reserved_short)
            .map(|i| WorkerId::new(i as u32))
            .collect();
        let rest: Vec<WorkerId> = (reserved_short..num_workers)
            .map(|i| WorkerId::new(i as u32))
            .collect();
        let long_types: Vec<TypeId> = (0..num_types)
            .map(|i| TypeId::new(i as u32))
            .filter(|t| *t != short)
            .collect();
        let mut groups = vec![Group {
            types: vec![short],
            mean_service_ns: 0.0,
            demand: 0.0,
            reserved: short_reserved,
            stealable: rest.clone(),
        }];
        if !long_types.is_empty() {
            groups.push(Group {
                types: long_types,
                mean_service_ns: f64::INFINITY,
                demand: 0.0,
                // When nothing is reserved for longs (all cores given to the
                // short class), the spillway still serves them.
                reserved: if rest.is_empty() {
                    vec![WorkerId::new(num_workers as u32 - 1)]
                } else {
                    rest
                },
                stealable: Vec::new(),
            });
        }
        let mut type_to_group = vec![Some(1); num_types];
        if short.index() < num_types {
            type_to_group[short.index()] = Some(0);
        }
        if groups.len() == 1 {
            type_to_group = vec![Some(0); num_types];
        }
        Reservation {
            groups,
            spillway: vec![WorkerId::new(num_workers as u32 - 1)],
            num_workers,
            expected_waste: 0.0,
            type_to_group,
        }
    }
}

/// Runs the reservation algorithm (paper Algorithm 2) over profiled
/// statistics.
///
/// Types with zero weight (never observed, or vanished from the workload)
/// are excluded from grouping and served on the spillway; this matches the
/// paper's Figure 7 phase 4, where a type that disappeared from the mix is
/// still serviced on the spillway core.
///
/// # Examples
///
/// ```
/// use persephone_core::profile::TypeStat;
/// use persephone_core::reserve::{reserve, ReserveConfig};
/// use persephone_core::types::TypeId;
///
/// // Extreme Bimodal on 14 workers: the short type demands
/// // 0.166 × 14 ≈ 2.3 workers ⇒ 2 reserved (paper §5.4.2).
/// let stats = [
///     TypeStat { ty: TypeId::new(0), mean_service_ns: 500.0, ratio: 0.995 },
///     TypeStat { ty: TypeId::new(1), mean_service_ns: 500_000.0, ratio: 0.005 },
/// ];
/// let r = reserve(&stats, &ReserveConfig::new(14));
/// assert_eq!(r.groups[0].reserved.len(), 2);
/// assert_eq!(r.groups[1].reserved.len(), 12);
/// ```
pub fn reserve(stats: &[TypeStat], cfg: &ReserveConfig) -> Reservation {
    let w = cfg.num_workers;
    let spillway: Vec<WorkerId> = (w.saturating_sub(cfg.spillway.max(1))..w)
        .map(|i| WorkerId::new(i as u32))
        .collect();

    // Keep only types that carry demand; sort ascending by service time.
    let mut active: Vec<&TypeStat> = stats.iter().filter(|s| s.weight() > 0.0).collect();
    active.sort_by(|a, b| {
        a.mean_service_ns
            .partial_cmp(&b.mean_service_ns)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.ty.cmp(&b.ty))
    });

    let mut type_to_group = vec![None; stats.len()];
    if active.is_empty() {
        return Reservation {
            groups: Vec::new(),
            spillway,
            num_workers: w,
            expected_waste: 0.0,
            type_to_group,
        };
    }

    // Group types within a factor δ of the group's shortest member.
    let delta = if cfg.delta < 1.0 { 1.0 } else { cfg.delta };
    let mut grouped: Vec<Vec<&TypeStat>> = Vec::new();
    for s in active {
        match grouped.last_mut() {
            Some(g) if s.mean_service_ns <= g[0].mean_service_ns * delta => g.push(s),
            _ => grouped.push(vec![s]),
        }
    }

    // Demand per group (Eq. 1 summed over members).
    let all_stats: Vec<TypeStat> = grouped.iter().flat_map(|g| g.iter().map(|s| **s)).collect();
    let demand_per_type = demands_of(&all_stats);
    let mut demand_iter = demand_per_type.iter();

    let mut groups: Vec<Group> = Vec::new();
    let mut next_free = 0usize;
    let mut spill_rr = 0usize;
    let mut expected_waste = 0.0;

    for members in &grouped {
        let demand: f64 = members.iter().map(|_| demand_iter.next().unwrap()).sum();
        let raw = demand * w as f64;
        let mut want = raw.round() as usize;
        if want == 0 {
            want = 1;
        }
        // Eq. 2: waste accrues when a fractional demand ≥ 0.5 is rounded up.
        let frac = raw.fract();
        if frac >= 0.5 {
            expected_waste += 1.0 - frac;
        }

        let mut reserved = Vec::with_capacity(want);
        for _ in 0..want {
            if next_free < w {
                reserved.push(WorkerId::new(next_free as u32));
                next_free += 1;
            } else {
                // Out of free workers: hand out a spillway core (shared).
                let sw = spillway[spill_rr % spillway.len()];
                spill_rr += 1;
                if !reserved.contains(&sw) {
                    reserved.push(sw);
                }
                break;
            }
        }

        let total_ratio: f64 = members.iter().map(|s| s.ratio).sum();
        let mean = if total_ratio > 0.0 {
            members.iter().map(|s| s.weight()).sum::<f64>() / total_ratio
        } else {
            0.0
        };
        groups.push(Group {
            types: members.iter().map(|s| s.ty).collect(),
            mean_service_ns: mean,
            demand,
            reserved,
            stealable: Vec::new(),
        });
    }

    // Stealable sets: every worker placed after the group's own reservation
    // window — longer groups' cores plus any leftover unreserved cores.
    let mut boundary = 0usize;
    for g in &mut groups {
        let own_end = g
            .reserved
            .iter()
            .map(|wk| wk.index() + 1)
            .max()
            .unwrap_or(boundary)
            .min(w);
        boundary = boundary.max(own_end);
        g.stealable = (boundary..w).map(|i| WorkerId::new(i as u32)).collect();
    }

    for (gi, g) in groups.iter().enumerate() {
        for t in &g.types {
            if t.index() < type_to_group.len() {
                type_to_group[t.index()] = Some(gi);
            }
        }
    }

    Reservation {
        groups,
        spillway,
        num_workers: w,
        expected_waste,
        type_to_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(idx: u32, us: f64, ratio: f64) -> TypeStat {
        TypeStat {
            ty: TypeId::new(idx),
            mean_service_ns: us * 1_000.0,
            ratio,
        }
    }

    /// The paper's TPC-C allocation (§5.4.3): groups {Payment, OrderStatus}
    /// → 2 workers, {NewOrder} → 6 workers, {Delivery, StockLevel} → 6
    /// workers; A steals w3-w14, B steals w9-w14, C steals nothing.
    #[test]
    fn tpcc_matches_paper_allocation() {
        let stats = [
            stat(0, 5.7, 0.44),   // Payment
            stat(1, 6.0, 0.04),   // OrderStatus
            stat(2, 20.0, 0.44),  // NewOrder
            stat(3, 88.0, 0.04),  // Delivery
            stat(4, 100.0, 0.04), // StockLevel
        ];
        let r = reserve(&stats, &ReserveConfig::new(14));
        assert_eq!(r.groups.len(), 3);
        assert_eq!(r.groups[0].types, vec![TypeId::new(0), TypeId::new(1)]);
        assert_eq!(r.groups[1].types, vec![TypeId::new(2)]);
        assert_eq!(r.groups[2].types, vec![TypeId::new(3), TypeId::new(4)]);
        assert_eq!(r.groups[0].reserved.len(), 2);
        assert_eq!(r.groups[1].reserved.len(), 6);
        assert_eq!(r.groups[2].reserved.len(), 6);
        // Group A steals workers 2..14 (0-indexed), B steals 8..14, C none.
        assert_eq!(r.groups[0].stealable.len(), 12);
        assert_eq!(r.groups[0].stealable[0], WorkerId::new(2));
        assert_eq!(r.groups[1].stealable.len(), 6);
        assert_eq!(r.groups[1].stealable[0], WorkerId::new(8));
        assert!(r.groups[2].stealable.is_empty());
        // Eq. 2 charges group C's round-up (5.52 → 6 workers, 1 − 0.52).
        // The paper observes *no* net waste because groups A and B are
        // under-provisioned by the same amount and steal from C — which is
        // why all 14 workers end up reserved.
        assert!(
            (r.expected_waste - 0.48).abs() < 0.01,
            "waste = {}",
            r.expected_waste
        );
        assert_eq!(r.reserved_count(), 14);
    }

    /// High Bimodal on 14 workers: short demand ≈ 0.0099 ⇒ rounds to 0 ⇒
    /// minimum 1 reserved core (paper §5.2 "DARC reserves 1 core").
    #[test]
    fn high_bimodal_reserves_one_short_core() {
        let stats = [stat(0, 1.0, 0.5), stat(1, 100.0, 0.5)];
        let r = reserve(&stats, &ReserveConfig::new(14));
        assert_eq!(r.groups[0].reserved, vec![WorkerId::new(0)]);
        assert_eq!(r.groups[1].reserved.len(), 13);
        assert_eq!(r.groups[0].stealable.len(), 13);
    }

    /// Extreme Bimodal on 14 workers reserves 2 short cores (§5.4.2).
    #[test]
    fn extreme_bimodal_reserves_two_short_cores() {
        let stats = [stat(0, 0.5, 0.995), stat(1, 500.0, 0.005)];
        let r = reserve(&stats, &ReserveConfig::new(14));
        assert_eq!(r.groups[0].reserved.len(), 2);
    }

    /// RocksDB mix (§5.4.4): GET demand ≈ 0.0024 ⇒ 1 reserved core.
    #[test]
    fn rocksdb_reserves_one_get_core() {
        let stats = [stat(0, 1.5, 0.5), stat(1, 635.0, 0.5)];
        let r = reserve(&stats, &ReserveConfig::new(14));
        assert_eq!(r.groups[0].reserved.len(), 1);
    }

    #[test]
    fn zero_weight_types_go_to_spillway() {
        let stats = [stat(0, 1.0, 1.0), stat(1, 100.0, 0.0)];
        let r = reserve(&stats, &ReserveConfig::new(4));
        assert_eq!(r.group_of(TypeId::new(0)), Some(0));
        assert_eq!(r.group_of(TypeId::new(1)), None);
        assert_eq!(r.group_of(TypeId::UNKNOWN), None);
    }

    #[test]
    fn exhausted_workers_fall_back_to_spillway() {
        // Three groups on two workers: the last group gets the spillway.
        let stats = [
            stat(0, 1.0, 0.9),
            stat(1, 10.0, 0.09),
            stat(2, 1000.0, 0.01),
        ];
        let cfg = ReserveConfig::new(2).with_delta(1.5);
        let r = reserve(&stats, &cfg);
        assert_eq!(r.groups.len(), 3);
        let last = r.groups.last().unwrap();
        assert!(!last.reserved.is_empty(), "every group must get a worker");
        assert!(r.spillway.contains(&last.reserved[0]));
    }

    #[test]
    fn empty_stats_yield_empty_reservation() {
        let r = reserve(&[], &ReserveConfig::new(4));
        assert!(r.groups.is_empty());
        assert_eq!(r.spillway, vec![WorkerId::new(3)]);
        assert_eq!(r.reserved_count(), 0);
    }

    #[test]
    fn delta_one_keeps_types_separate() {
        let stats = [stat(0, 1.0, 0.5), stat(1, 1.3, 0.5)];
        let r = reserve(&stats, &ReserveConfig::new(4).with_delta(1.0));
        assert_eq!(r.groups.len(), 2);
        let r2 = reserve(&stats, &ReserveConfig::new(4).with_delta(2.0));
        assert_eq!(r2.groups.len(), 1);
    }

    #[test]
    fn priority_order_is_ascending_service_time() {
        let stats = [stat(0, 100.0, 0.3), stat(1, 1.0, 0.4), stat(2, 10.0, 0.3)];
        let r = reserve(&stats, &ReserveConfig::new(8).with_delta(1.5));
        let order: Vec<TypeId> = r.priority_order().collect();
        assert_eq!(order, vec![TypeId::new(1), TypeId::new(2), TypeId::new(0)]);
    }

    #[test]
    fn eq2_waste_accounting() {
        // One group with demand 0.65 × 2 workers = 1.3 ⇒ f = 0.3 < 0.5 ⇒ 0;
        // a group at f ≥ 0.5 contributes 1 − f.
        let stats = [stat(0, 1.0, 0.5), stat(1, 3.0, 0.5)];
        // Weights: 0.5 and 1.5 ⇒ demands 0.25 / 0.75 over 8 workers ⇒
        // raw 2.0 and 6.0, both integral ⇒ no waste.
        let r = reserve(&stats, &ReserveConfig::new(8).with_delta(1.0));
        assert_eq!(r.expected_waste, 0.0);

        // Raw demands 1.75 and 5.25 over 7 workers ⇒ f = .75 (waste .25)
        // and f = .25 (no waste).
        let r2 = reserve(&stats, &ReserveConfig::new(7).with_delta(1.0));
        assert!((r2.expected_waste - 0.25).abs() < 1e-9);
    }

    #[test]
    fn all_shared_reservation_spans_everything() {
        let r = Reservation::all_shared(3, 4);
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].reserved.len(), 4);
        assert_eq!(r.group_of(TypeId::new(2)), Some(0));
        let cand: Vec<_> = r.groups[0].candidate_workers().collect();
        assert_eq!(cand.len(), 4);
    }

    #[test]
    fn two_class_static_layout() {
        let short = TypeId::new(0);
        let r = Reservation::two_class_static(2, 14, short, 3);
        assert_eq!(r.groups[0].reserved.len(), 3);
        assert_eq!(r.groups[0].stealable.len(), 11);
        assert_eq!(r.groups[1].reserved.len(), 11);
        assert!(r.groups[1].stealable.is_empty());
        assert_eq!(r.group_of(short), Some(0));
        assert_eq!(r.group_of(TypeId::new(1)), Some(1));
    }

    #[test]
    fn two_class_static_zero_is_fixed_priority() {
        let r = Reservation::two_class_static(2, 8, TypeId::new(0), 0);
        assert!(r.groups[0].reserved.is_empty());
        assert_eq!(r.groups[0].stealable.len(), 8);
        assert_eq!(r.groups[1].reserved.len(), 8);
    }

    #[test]
    fn two_class_static_all_reserved_leaves_spillway_for_longs() {
        let r = Reservation::two_class_static(2, 4, TypeId::new(0), 4);
        assert_eq!(r.groups[1].reserved, vec![WorkerId::new(3)]);
    }

    #[test]
    fn reserved_count_deduplicates_spillway_handouts() {
        let stats = [stat(0, 1.0, 0.5), stat(1, 10.0, 0.3), stat(2, 100.0, 0.2)];
        let r = reserve(&stats, &ReserveConfig::new(2).with_delta(1.0));
        assert!(r.reserved_count() <= 2);
    }
}
