//! Integer nanosecond time used throughout the Perséphone crates.
//!
//! All scheduling state is kept in integer nanoseconds so simulation runs
//! are exactly reproducible and so the dispatcher never performs floating
//! point work on its critical path. Floating point appears only at the
//! statistics boundary ([`Nanos::as_micros_f64`] and friends).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time or a duration, in integer nanoseconds.
///
/// `Nanos` is deliberately a thin newtype over `u64`: it is `Copy`, ordered,
/// and supports saturating arithmetic helpers so scheduler code can never
/// panic on clock skew.
///
/// # Examples
///
/// ```
/// use persephone_core::time::Nanos;
///
/// let quantum = Nanos::from_micros(5);
/// assert_eq!(quantum.as_nanos(), 5_000);
/// assert_eq!(quantum * 3, Nanos::from_micros(15));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration / origin of simulated time.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant, used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a `Nanos` from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a `Nanos` from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a `Nanos` from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a `Nanos` from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a `Nanos` from a (non-negative, finite) floating-point
    /// microsecond count, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`Nanos::MAX`].
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return Nanos::ZERO;
        }
        let ns = us * 1_000.0;
        if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float (for statistics and reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float (for statistics and reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: returns zero instead of wrapping when
    /// `other > self`. Use for elapsed-time computations where a racy or
    /// reordered timestamp must not panic the dispatcher.
    #[inline]
    pub const fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// Saturating addition, clamping at [`Nanos::MAX`].
    #[inline]
    pub const fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Checked scalar multiplication.
    #[inline]
    pub const fn checked_mul(self, k: u64) -> Option<Nanos> {
        match self.0.checked_mul(k) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns `self / other` as a float ratio; zero denominators yield 0.0.
    ///
    /// Used to compute slowdown (`sojourn / service`) without panicking on
    /// degenerate zero-length service times.
    #[inline]
    pub fn ratio(self, other: Nanos) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a.saturating_add(b))
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(Nanos::from_micros(500).as_micros_f64(), 500.0);
    }

    #[test]
    fn from_micros_f64_rounds_and_clamps() {
        assert_eq!(Nanos::from_micros_f64(0.5).as_nanos(), 500);
        assert_eq!(Nanos::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(Nanos::from_micros_f64(-3.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(f64::INFINITY), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(1e300), Nanos::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(b.saturating_sub(a).as_nanos(), 4);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_add(a), Nanos::MAX);
        assert_eq!(Nanos::MAX.checked_mul(2), None);
        assert_eq!(a.checked_mul(3), Some(Nanos::from_nanos(15)));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Nanos::from_nanos(10).ratio(Nanos::ZERO), 0.0);
        assert_eq!(Nanos::from_nanos(10).ratio(Nanos::from_nanos(4)), 2.5);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Nanos::from_micros(1);
        let b = Nanos::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", Nanos::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", Nanos::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(1)), "1.000s");
    }

    #[test]
    fn sum_saturates() {
        let v = vec![Nanos::MAX, Nanos::from_nanos(1)];
        assert_eq!(v.into_iter().sum::<Nanos>(), Nanos::MAX);
    }
}
