//! Typed request queues with drop-based flow control (paper §4.3.3).
//!
//! The dispatcher keeps one bounded FIFO per request type. When the system
//! is under pressure and a typed queue fills up, new arrivals of that type
//! are dropped — shedding load *only* for the overloaded type without
//! impacting the rest of the workload.
//!
//! Storage is an [`ArenaRing`](crate::arena::ArenaRing): a slab FIFO with
//! an intrusive freelist. Bounded queues pre-warm the slab to their
//! capacity at construction, and unbounded queues grow to their high-water
//! mark once — after that, enqueue/dequeue touch no allocator at all
//! (pinned by the `no_alloc_dispatch` harness).

use crate::arena::ArenaRing;
use crate::time::Nanos;

/// A queued request together with its arrival metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry<R> {
    /// The opaque request payload (a packet pointer, a sim token, ...).
    pub req: R,
    /// When the request was enqueued at the dispatcher.
    pub enqueued: Nanos,
    /// Global arrival sequence number; dispatchers use it to reconstruct
    /// centralized FCFS order across typed queues.
    pub seq: u64,
}

/// A bounded FIFO for a single request type.
///
/// # Examples
///
/// ```
/// use persephone_core::queue::TypedQueue;
/// use persephone_core::time::Nanos;
///
/// let mut q: TypedQueue<&str> = TypedQueue::new(2);
/// assert!(q.push("a", Nanos::from_nanos(1), 0).is_ok());
/// assert!(q.push("b", Nanos::from_nanos(2), 1).is_ok());
/// assert_eq!(q.push("c", Nanos::from_nanos(3), 2), Err("c")); // Full: dropped.
/// assert_eq!(q.drops(), 1);
/// assert_eq!(q.pop().unwrap().req, "a");
/// ```
#[derive(Clone, Debug)]
pub struct TypedQueue<R> {
    entries: ArenaRing<Entry<R>>,
    /// Cached `seq` of the head entry (`u64::MAX` when empty). The
    /// centralized-FCFS min-fold reads this once per queue straight out of
    /// the dense queue array — no arena-slot dereference on the poll path.
    /// Kept coherent by every call that changes the head (push into an
    /// empty queue, pop, expiry, drain).
    head_seq: u64,
    capacity: usize,
    drops: u64,
    shed: u64,
    total_enqueued: u64,
}

impl<R> TypedQueue<R> {
    /// Creates a queue bounded at `capacity` entries; `0` means unbounded.
    ///
    /// Bounded queues pre-warm their arena to `capacity` slots so the
    /// steady state never allocates; unbounded queues grow on demand to
    /// their high-water mark.
    pub fn new(capacity: usize) -> Self {
        TypedQueue {
            entries: ArenaRing::with_slots(capacity),
            head_seq: u64::MAX,
            capacity,
            drops: 0,
            shed: 0,
            total_enqueued: 0,
        }
    }

    /// Rebounds the queue at `capacity` entries (`0` = unbounded).
    ///
    /// Entries already queued above a tighter bound are kept — they were
    /// admitted under the old bound and will drain (or expire) normally;
    /// only *new* arrivals see the new capacity. Widening the bound
    /// pre-warms the arena up front so the hot path stays allocation-free.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.entries.reserve_slots(capacity);
    }

    /// Enqueues a request, or returns it back (and counts a drop) when the
    /// queue is at capacity.
    #[inline]
    pub fn push(&mut self, req: R, enqueued: Nanos, seq: u64) -> Result<(), R> {
        if self.capacity != 0 && self.entries.len() >= self.capacity {
            self.drops += 1;
            return Err(req);
        }
        if self.entries.is_empty() {
            self.head_seq = seq;
        }
        self.entries.push_back(Entry { req, enqueued, seq });
        self.total_enqueued += 1;
        Ok(())
    }

    /// Dequeues the oldest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<Entry<R>> {
        let e = self.entries.pop_front();
        self.head_seq = self.entries.front().map_or(u64::MAX, |e| e.seq);
        e
    }

    /// Peeks at the oldest entry without removing it.
    #[inline]
    pub fn front(&self) -> Option<&Entry<R>> {
        self.entries.front()
    }

    /// Arrival sequence number of the head entry, or `u64::MAX` when
    /// empty. Branch-light helper for the centralized-FCFS min-fold:
    /// empty queues lose every `min` comparison without a separate
    /// emptiness branch. Served from a cached field so the fold never
    /// touches arena slots.
    #[inline]
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Requests dropped because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Requests shed *after* admission: expired past their deadline by
    /// [`TypedQueue::pop_expired`] or drained at teardown.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests accepted over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queueing delay of the head entry at time `now`, zero when empty.
    #[inline]
    pub fn head_delay(&self, now: Nanos) -> Nanos {
        self.front()
            .map(|e| now.saturating_sub(e.enqueued))
            .unwrap_or(Nanos::ZERO)
    }

    /// Removes and returns the head entry if its queueing delay at `now`
    /// exceeds `deadline`, counting it as shed. Deadline shedding walks the
    /// queue one head at a time: the caller answers each expired request
    /// and calls again until `None`.
    #[inline]
    pub fn pop_expired(&mut self, now: Nanos, deadline: Nanos) -> Option<Entry<R>> {
        let head = self.front()?;
        if now.saturating_sub(head.enqueued) <= deadline {
            return None;
        }
        self.shed += 1;
        let e = self.entries.pop_front();
        self.head_seq = self.entries.front().map_or(u64::MAX, |e| e.seq);
        e
    }

    /// Drains all entries, counting each as shed (used when tearing an
    /// engine down — the runtime answers drained requests with `Dropped`).
    /// Entries are handed back one `pop` at a time; no temporary `Vec` is
    /// built.
    pub fn drain(&mut self) -> impl Iterator<Item = Entry<R>> + '_ {
        self.shed += self.entries.len() as u64;
        self.head_seq = u64::MAX;
        self.entries.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = TypedQueue::new(0);
        for i in 0..10u32 {
            q.push(i, Nanos::from_nanos(i as u64), i as u64).unwrap();
        }
        for i in 0..10u32 {
            assert_eq!(q.pop().unwrap().req, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn unbounded_queue_never_drops() {
        let mut q = TypedQueue::new(0);
        for i in 0..100_000u64 {
            q.push(i, Nanos::ZERO, i).unwrap();
        }
        assert_eq!(q.drops(), 0);
        assert_eq!(q.len(), 100_000);
    }

    #[test]
    fn bounded_queue_drops_and_returns_request() {
        let mut q = TypedQueue::new(1);
        q.push("keep", Nanos::ZERO, 0).unwrap();
        assert_eq!(q.push("drop", Nanos::ZERO, 1), Err("drop"));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.total_enqueued(), 1);
        // Popping frees space again.
        q.pop().unwrap();
        assert!(q.push("ok", Nanos::ZERO, 2).is_ok());
    }

    #[test]
    fn head_delay_reflects_oldest_entry() {
        let mut q = TypedQueue::new(0);
        assert_eq!(q.head_delay(Nanos::from_micros(5)), Nanos::ZERO);
        q.push((), Nanos::from_micros(2), 0).unwrap();
        q.push((), Nanos::from_micros(4), 1).unwrap();
        assert_eq!(q.head_delay(Nanos::from_micros(5)), Nanos::from_micros(3));
    }

    #[test]
    fn drain_empties_the_queue_and_counts_shed() {
        let mut q = TypedQueue::new(0);
        q.push(1, Nanos::ZERO, 0).unwrap();
        q.push(2, Nanos::ZERO, 1).unwrap();
        let drained: Vec<_> = q.drain().map(|e| e.req).collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(q.is_empty());
        assert_eq!(q.shed(), 2, "drained entries count as shed");
        assert_eq!(q.drops(), 0, "shedding is not an admission drop");
    }

    #[test]
    fn pop_expired_sheds_only_stale_heads() {
        let mut q = TypedQueue::new(0);
        q.push("old", Nanos::from_micros(0), 0).unwrap();
        q.push("new", Nanos::from_micros(90), 1).unwrap();
        let deadline = Nanos::from_micros(50);
        // Head waited 100 µs > 50 µs deadline: expired.
        let e = q.pop_expired(Nanos::from_micros(100), deadline).unwrap();
        assert_eq!(e.req, "old");
        // New head waited 10 µs: kept.
        assert!(q.pop_expired(Nanos::from_micros(100), deadline).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.shed(), 1);
        // Exactly-at-deadline heads are kept (strict inequality).
        assert!(q.pop_expired(Nanos::from_micros(140), deadline).is_none());
        assert!(q.pop_expired(Nanos::ZERO, deadline).is_none(), "empty-safe");
    }

    #[test]
    fn set_capacity_rebounds_without_evicting() {
        let mut q = TypedQueue::new(0);
        for i in 0..4u32 {
            q.push(i, Nanos::ZERO, i as u64).unwrap();
        }
        q.set_capacity(2);
        assert_eq!(q.len(), 4, "existing entries survive a tighter bound");
        assert_eq!(q.push(9, Nanos::ZERO, 9), Err(9), "new arrivals bounded");
        q.pop().unwrap();
        q.pop().unwrap();
        q.pop().unwrap();
        assert!(q.push(9, Nanos::ZERO, 9).is_ok());
    }

    #[test]
    fn head_seq_is_max_when_empty() {
        let mut q = TypedQueue::new(0);
        assert_eq!(q.head_seq(), u64::MAX);
        q.push((), Nanos::ZERO, 7).unwrap();
        assert_eq!(q.head_seq(), 7);
        q.pop().unwrap();
        assert_eq!(q.head_seq(), u64::MAX);
    }

    #[test]
    fn steady_state_does_not_grow_the_arena() {
        let mut q = TypedQueue::new(8);
        for round in 0..1_000u64 {
            for i in 0..8 {
                q.push(round * 8 + i, Nanos::ZERO, round * 8 + i).unwrap();
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        assert_eq!(q.drops(), 0);
    }
}
