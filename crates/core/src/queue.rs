//! Typed request queues with drop-based flow control (paper §4.3.3).
//!
//! The dispatcher keeps one bounded FIFO per request type. When the system
//! is under pressure and a typed queue fills up, new arrivals of that type
//! are dropped — shedding load *only* for the overloaded type without
//! impacting the rest of the workload.

use std::collections::VecDeque;

use crate::time::Nanos;

/// A queued request together with its arrival metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry<R> {
    /// The opaque request payload (a packet pointer, a sim token, ...).
    pub req: R,
    /// When the request was enqueued at the dispatcher.
    pub enqueued: Nanos,
    /// Global arrival sequence number; dispatchers use it to reconstruct
    /// centralized FCFS order across typed queues.
    pub seq: u64,
}

/// A bounded FIFO for a single request type.
///
/// # Examples
///
/// ```
/// use persephone_core::queue::TypedQueue;
/// use persephone_core::time::Nanos;
///
/// let mut q: TypedQueue<&str> = TypedQueue::new(2);
/// assert!(q.push("a", Nanos::from_nanos(1), 0).is_ok());
/// assert!(q.push("b", Nanos::from_nanos(2), 1).is_ok());
/// assert_eq!(q.push("c", Nanos::from_nanos(3), 2), Err("c")); // Full: dropped.
/// assert_eq!(q.drops(), 1);
/// assert_eq!(q.pop().unwrap().req, "a");
/// ```
#[derive(Clone, Debug)]
pub struct TypedQueue<R> {
    entries: VecDeque<Entry<R>>,
    capacity: usize,
    drops: u64,
    total_enqueued: u64,
}

impl<R> TypedQueue<R> {
    /// Creates a queue bounded at `capacity` entries; `0` means unbounded.
    pub fn new(capacity: usize) -> Self {
        TypedQueue {
            entries: VecDeque::new(),
            capacity,
            drops: 0,
            total_enqueued: 0,
        }
    }

    /// Enqueues a request, or returns it back (and counts a drop) when the
    /// queue is at capacity.
    pub fn push(&mut self, req: R, enqueued: Nanos, seq: u64) -> Result<(), R> {
        if self.capacity != 0 && self.entries.len() >= self.capacity {
            self.drops += 1;
            return Err(req);
        }
        self.entries.push_back(Entry { req, enqueued, seq });
        self.total_enqueued += 1;
        Ok(())
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<Entry<R>> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest entry without removing it.
    pub fn front(&self) -> Option<&Entry<R>> {
        self.entries.front()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Requests dropped because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Requests accepted over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// The configured capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queueing delay of the head entry at time `now`, zero when empty.
    pub fn head_delay(&self, now: Nanos) -> Nanos {
        self.front()
            .map(|e| now.saturating_sub(e.enqueued))
            .unwrap_or(Nanos::ZERO)
    }

    /// Drains all entries (used when tearing an engine down).
    pub fn drain(&mut self) -> impl Iterator<Item = Entry<R>> + '_ {
        self.entries.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = TypedQueue::new(0);
        for i in 0..10u32 {
            q.push(i, Nanos::from_nanos(i as u64), i as u64).unwrap();
        }
        for i in 0..10u32 {
            assert_eq!(q.pop().unwrap().req, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn unbounded_queue_never_drops() {
        let mut q = TypedQueue::new(0);
        for i in 0..100_000u64 {
            q.push(i, Nanos::ZERO, i).unwrap();
        }
        assert_eq!(q.drops(), 0);
        assert_eq!(q.len(), 100_000);
    }

    #[test]
    fn bounded_queue_drops_and_returns_request() {
        let mut q = TypedQueue::new(1);
        q.push("keep", Nanos::ZERO, 0).unwrap();
        assert_eq!(q.push("drop", Nanos::ZERO, 1), Err("drop"));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.total_enqueued(), 1);
        // Popping frees space again.
        q.pop().unwrap();
        assert!(q.push("ok", Nanos::ZERO, 2).is_ok());
    }

    #[test]
    fn head_delay_reflects_oldest_entry() {
        let mut q = TypedQueue::new(0);
        assert_eq!(q.head_delay(Nanos::from_micros(5)), Nanos::ZERO);
        q.push((), Nanos::from_micros(2), 0).unwrap();
        q.push((), Nanos::from_micros(4), 1).unwrap();
        assert_eq!(q.head_delay(Nanos::from_micros(5)), Nanos::from_micros(3));
    }

    #[test]
    fn drain_empties_the_queue() {
        let mut q = TypedQueue::new(0);
        q.push(1, Nanos::ZERO, 0).unwrap();
        q.push(2, Nanos::ZERO, 1).unwrap();
        let drained: Vec<_> = q.drain().map(|e| e.req).collect();
        assert_eq!(drained, vec![1, 2]);
        assert!(q.is_empty());
    }
}
