//! Request classifiers (paper §4.2).
//!
//! A classifier is a user-defined function mapping an application payload
//! (layer 4 and above) to a [`TypeId`]. Classifiers sit "bump-in-the-wire"
//! on the dispatch critical path, so implementations should be cheap; the
//! paper reports ≈100 ns for header-based classifiers.

use crate::types::TypeId;

/// Maps an application payload to a request type.
///
/// Returning [`TypeId::UNKNOWN`] routes the request to the low-priority
/// UNKNOWN queue, serviced on spillway cores.
///
/// # Examples
///
/// ```
/// use persephone_core::classifier::{Classifier, HeaderClassifier};
/// use persephone_core::types::TypeId;
///
/// // Type id stored little-endian in bytes 4..8 of the payload, two types.
/// let mut c = HeaderClassifier::new(4, 2);
/// let mut msg = vec![0u8; 16];
/// msg[4..8].copy_from_slice(&1u32.to_le_bytes());
/// assert_eq!(c.classify(&msg), TypeId::new(1));
/// assert_eq!(c.classify(&[0u8; 2]), TypeId::UNKNOWN); // Too short.
/// ```
pub trait Classifier: Send {
    /// Classifies a single request payload.
    fn classify(&mut self, payload: &[u8]) -> TypeId;
}

/// Classifier reading a little-endian `u32` type id at a fixed offset.
///
/// This models the common case of protocols that carry the request type in
/// a header field (Memcached opcodes, Redis RESP commands, protobuf message
/// types — paper §1). Payloads too short for the field, or carrying an id
/// outside the registered range, classify as UNKNOWN.
#[derive(Clone, Debug)]
pub struct HeaderClassifier {
    offset: usize,
    num_types: u32,
}

impl HeaderClassifier {
    /// Creates a classifier reading at byte `offset` with `num_types`
    /// registered types (valid ids are `0..num_types`).
    pub fn new(offset: usize, num_types: u32) -> Self {
        HeaderClassifier { offset, num_types }
    }
}

impl Classifier for HeaderClassifier {
    #[inline]
    fn classify(&mut self, payload: &[u8]) -> TypeId {
        let end = match self.offset.checked_add(4) {
            Some(e) => e,
            None => return TypeId::UNKNOWN,
        };
        if payload.len() < end {
            return TypeId::UNKNOWN;
        }
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&payload[self.offset..end]);
        let id = u32::from_le_bytes(raw);
        if id < self.num_types {
            TypeId::new(id)
        } else {
            TypeId::UNKNOWN
        }
    }
}

/// Classifier wrapping an arbitrary closure.
///
/// The escape hatch for applications whose protocols need real parsing;
/// the paper allows "arbitrarily complex classifiers" at a documented
/// throughput trade-off.
pub struct FnClassifier<F> {
    f: F,
}

impl<F> FnClassifier<F>
where
    F: FnMut(&[u8]) -> TypeId + Send,
{
    /// Wraps `f` as a classifier.
    pub fn new(f: F) -> Self {
        FnClassifier { f }
    }
}

impl<F> Classifier for FnClassifier<F>
where
    F: FnMut(&[u8]) -> TypeId + Send,
{
    #[inline]
    fn classify(&mut self, payload: &[u8]) -> TypeId {
        (self.f)(payload)
    }
}

/// Classifier returning the same type for every request.
///
/// With a single type, DARC degenerates to c-FCFS; useful as a baseline
/// and in tests.
#[derive(Clone, Debug)]
pub struct FixedClassifier {
    ty: TypeId,
}

impl FixedClassifier {
    /// Creates a classifier that always returns `ty`.
    pub fn new(ty: TypeId) -> Self {
        FixedClassifier { ty }
    }
}

impl Classifier for FixedClassifier {
    #[inline]
    fn classify(&mut self, _payload: &[u8]) -> TypeId {
        self.ty
    }
}

/// A deliberately broken classifier assigning types uniformly at random.
///
/// Reproduces the paper's §5.6 experiment (Figure 9): with a random
/// classifier every typed queue holds an even mix of all types, and DARC's
/// behaviour converges to c-FCFS.
#[derive(Clone, Debug)]
pub struct RandomClassifier {
    num_types: u32,
    state: u64,
}

impl RandomClassifier {
    /// Creates a random classifier over `num_types` types with a seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_types` is zero.
    pub fn new(num_types: u32, seed: u64) -> Self {
        assert!(num_types > 0, "RandomClassifier needs at least one type");
        RandomClassifier {
            num_types,
            // Splitmix-style seed scrambling so seed 0 is usable.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Splitmix64: tiny, fast, and statistically fine for load spreading.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Classifier for RandomClassifier {
    #[inline]
    fn classify(&mut self, _payload: &[u8]) -> TypeId {
        TypeId::new((self.next_u64() % self.num_types as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_classifier_reads_offset() {
        let mut c = HeaderClassifier::new(0, 8);
        let msg = 5u32.to_le_bytes();
        assert_eq!(c.classify(&msg), TypeId::new(5));
    }

    #[test]
    fn header_classifier_rejects_short_payloads() {
        let mut c = HeaderClassifier::new(8, 4);
        assert_eq!(c.classify(&[0u8; 11]), TypeId::UNKNOWN);
        assert_eq!(c.classify(&[]), TypeId::UNKNOWN);
    }

    #[test]
    fn header_classifier_rejects_out_of_range_ids() {
        let mut c = HeaderClassifier::new(0, 2);
        let msg = 7u32.to_le_bytes();
        assert_eq!(c.classify(&msg), TypeId::UNKNOWN);
    }

    #[test]
    fn header_classifier_offset_overflow_is_unknown() {
        let mut c = HeaderClassifier::new(usize::MAX - 1, 2);
        assert_eq!(c.classify(&[0u8; 32]), TypeId::UNKNOWN);
    }

    #[test]
    fn fn_classifier_calls_closure() {
        let mut c = FnClassifier::new(|p: &[u8]| {
            if p.first() == Some(&b'G') {
                TypeId::new(0)
            } else {
                TypeId::new(1)
            }
        });
        assert_eq!(c.classify(b"GET k"), TypeId::new(0));
        assert_eq!(c.classify(b"SCAN a z"), TypeId::new(1));
    }

    #[test]
    fn fixed_classifier_is_constant() {
        let mut c = FixedClassifier::new(TypeId::new(3));
        assert_eq!(c.classify(b"anything"), TypeId::new(3));
        assert_eq!(c.classify(b""), TypeId::new(3));
    }

    #[test]
    fn random_classifier_covers_all_types_roughly_evenly() {
        let mut c = RandomClassifier::new(4, 42);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[c.classify(b"x").index()] += 1;
        }
        for &n in &counts {
            // Each of 4 types should get ~10k hits; allow ±15 %.
            assert!((8_500..11_500).contains(&n), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn random_classifier_is_deterministic_per_seed() {
        let mut a = RandomClassifier::new(8, 7);
        let mut b = RandomClassifier::new(8, 7);
        for _ in 0..100 {
            assert_eq!(a.classify(b""), b.classify(b""));
        }
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn random_classifier_rejects_zero_types() {
        let _ = RandomClassifier::new(0, 1);
    }
}
