//! The scheduling-policy taxonomy of the paper's Tables 1 and 5 — and
//! the configuration surface scheduling engines are built from.
//!
//! [`Policy`] is how callers everywhere in the workspace say *which*
//! scheduler they want: the simulator's experiment harness, the threaded
//! runtime's `ServerBuilder::policy(...)`, and the figure-regeneration
//! benches all take a `Policy` and construct the matching
//! [`ScheduleEngine`](crate::dispatch::ScheduleEngine) via
//! [`build_engine`](crate::dispatch::build_engine) (or the monomorphic
//! equivalent). Every variant except [`Policy::TimeSharing`] runs on the
//! live runtime; time sharing requires preemption, which the
//! run-to-completion runtime cannot do, so it stays simulator-only — see
//! [`Policy::runs_live`].
//!
//! Each policy also carries its Table 1/5 taxonomy row ([`PolicyTraits`]:
//! application awareness, preemption, work conservation,
//! head-of-line-blocking avoidance), which drives documentation tables in
//! the benchmark harness.

use crate::time::Nanos;

/// A scheduling policy under evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Policy {
    /// Decentralized FCFS: per-worker queues fed by RSS-style hashing
    /// (IX, Arrakis; Shenango with work stealing disabled).
    DFcfs,
    /// Centralized FCFS: one queue, any idle worker (ZygOS, Shenango).
    CFcfs,
    /// Fixed priority by type, work conserving: short requests are
    /// scheduled first but every type may run on every worker.
    FixedPriority,
    /// Time sharing with quantum-based preemption (Shinjuku).
    TimeSharing(TimeSharingParams),
    /// Non-preemptive Shortest-Job-First by profiled type service time.
    Sjf,
    /// DARC with a manually fixed number of cores reserved for the
    /// shortest type (paper §5.3 "DARC-static").
    DarcStatic {
        /// Cores dedicated to the shortest type (0 = Fixed Priority).
        reserved_short: usize,
    },
    /// Full DARC: profiled, dynamically reserved cores (the paper's
    /// contribution).
    Darc,
}

/// Parameters of the simulated time-sharing (Shinjuku-like) policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeSharingParams {
    /// Preemption quantum (Shinjuku: 5 µs; 15 µs for RocksDB).
    pub quantum: Nanos,
    /// CPU time charged to the worker per preemption (paper's simulation:
    /// 1 µs ≈ 2000 cycles at 2 GHz).
    pub overhead: Nanos,
    /// Delay between the preemption decision and the worker actually
    /// yielding (Figure 10's "propagation": 0–2 µs).
    pub propagation: Nanos,
    /// Queue discipline for preempted requests.
    pub discipline: TsDiscipline,
}

impl TimeSharingParams {
    /// Shinjuku's configuration as simulated in the paper's Figure 1:
    /// 5 µs quantum, 1 µs overhead, no propagation delay, single queue.
    pub fn shinjuku_fig1() -> Self {
        TimeSharingParams {
            quantum: Nanos::from_micros(5),
            overhead: Nanos::from_micros(1),
            propagation: Nanos::ZERO,
            discipline: TsDiscipline::SingleQueue,
        }
    }

    /// An idealized zero-cost processor-sharing system ("TS 0 µs").
    pub fn ideal() -> Self {
        TimeSharingParams {
            quantum: Nanos::from_micros(5),
            overhead: Nanos::ZERO,
            propagation: Nanos::ZERO,
            discipline: TsDiscipline::SingleQueue,
        }
    }
}

/// Where a preempted request goes (paper §5.1, Shinjuku's two policies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsDiscipline {
    /// Single queue; preempted requests re-enter at the *tail*.
    SingleQueue,
    /// One queue per type; preempted requests re-enter at the *head* of
    /// their typed queue; queues are picked BVT-style.
    MultiQueue,
}

/// Static properties of a policy (the columns of Tables 1 and 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyTraits {
    /// Does the policy use request types (typed queues)?
    pub app_aware: bool,
    /// Is the policy free of preemption?
    pub non_preemptive: bool,
    /// Does the policy deliberately leave cores idle?
    pub non_work_conserving: bool,
    /// Does it prevent dispersion-based head-of-line blocking?
    pub prevents_hol_blocking: bool,
}

impl Policy {
    /// Short display name used in figures and CSV headers.
    pub fn name(&self) -> String {
        match self {
            Policy::DFcfs => "d-FCFS".into(),
            Policy::CFcfs => "c-FCFS".into(),
            Policy::FixedPriority => "FP".into(),
            Policy::TimeSharing(p) => {
                let cost = p.overhead.saturating_add(p.propagation);
                format!("TS-{:.0}us", cost.as_micros_f64())
            }
            Policy::Sjf => "SJF".into(),
            Policy::DarcStatic { reserved_short } => format!("DARC-static-{reserved_short}"),
            Policy::Darc => "DARC".into(),
        }
    }

    /// The taxonomy row for this policy (paper Tables 1 & 5).
    pub fn traits(&self) -> PolicyTraits {
        match self {
            Policy::DFcfs => PolicyTraits {
                app_aware: false,
                non_preemptive: true,
                // d-FCFS idles workers while requests wait in other local
                // queues — an *uncontrolled* form of non work conservation.
                non_work_conserving: true,
                prevents_hol_blocking: false,
            },
            Policy::CFcfs => PolicyTraits {
                app_aware: false,
                non_preemptive: true,
                non_work_conserving: false,
                prevents_hol_blocking: false,
            },
            Policy::FixedPriority => PolicyTraits {
                app_aware: true,
                non_preemptive: true,
                non_work_conserving: false,
                prevents_hol_blocking: false,
            },
            Policy::TimeSharing(_) => PolicyTraits {
                app_aware: true,
                non_preemptive: false,
                non_work_conserving: false,
                prevents_hol_blocking: true,
            },
            Policy::Sjf => PolicyTraits {
                app_aware: true,
                non_preemptive: true,
                non_work_conserving: false,
                prevents_hol_blocking: false,
            },
            Policy::DarcStatic { .. } | Policy::Darc => PolicyTraits {
                app_aware: true,
                non_preemptive: true,
                non_work_conserving: true,
                prevents_hol_blocking: true,
            },
        }
    }

    /// Whether the policy can run on the live threaded runtime.
    ///
    /// Everything non-preemptive can: the runtime runs each request to
    /// completion on its worker. [`Policy::TimeSharing`] needs to preempt
    /// mid-request, so it is simulator-only.
    pub fn runs_live(&self) -> bool {
        self.traits().non_preemptive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Policy::DFcfs.name(), "d-FCFS");
        assert_eq!(Policy::CFcfs.name(), "c-FCFS");
        assert_eq!(Policy::Darc.name(), "DARC");
        assert_eq!(
            Policy::DarcStatic { reserved_short: 3 }.name(),
            "DARC-static-3"
        );
        assert_eq!(
            Policy::TimeSharing(TimeSharingParams::shinjuku_fig1()).name(),
            "TS-1us"
        );
    }

    #[test]
    fn table1_rows_match_paper() {
        // Table 1: d-FCFS — no typed queues, non work conserving,
        // non preemptive.
        let d = Policy::DFcfs.traits();
        assert!(!d.app_aware && d.non_work_conserving && d.non_preemptive);
        // c-FCFS — work conserving, non preemptive.
        let c = Policy::CFcfs.traits();
        assert!(!c.app_aware && !c.non_work_conserving && c.non_preemptive);
        // TS — typed queues, work conserving, preemptive.
        let ts = Policy::TimeSharing(TimeSharingParams::ideal()).traits();
        assert!(ts.app_aware && !ts.non_work_conserving && !ts.non_preemptive);
        // DARC — typed queues, non work conserving, non preemptive.
        let darc = Policy::Darc.traits();
        assert!(darc.app_aware && darc.non_work_conserving && darc.non_preemptive);
        assert!(darc.prevents_hol_blocking);
    }

    #[test]
    fn only_time_sharing_is_sim_only() {
        assert!(Policy::DFcfs.runs_live());
        assert!(Policy::CFcfs.runs_live());
        assert!(Policy::FixedPriority.runs_live());
        assert!(Policy::Sjf.runs_live());
        assert!(Policy::DarcStatic { reserved_short: 1 }.runs_live());
        assert!(Policy::Darc.runs_live());
        assert!(!Policy::TimeSharing(TimeSharingParams::ideal()).runs_live());
    }

    #[test]
    fn shinjuku_params_match_the_papers_simulation() {
        let p = TimeSharingParams::shinjuku_fig1();
        assert_eq!(p.quantum, Nanos::from_micros(5));
        assert_eq!(p.overhead, Nanos::from_micros(1));
        assert_eq!(p.discipline, TsDiscipline::SingleQueue);
    }
}
