//! The [`ScheduleEngine`] trait: one dispatch abstraction for every
//! scheduling policy.
//!
//! The dispatcher loop (threaded runtime) and the discrete-event
//! simulator both drive a scheduling engine through the same verbs:
//!
//! * [`ScheduleEngine::enqueue`] — admit a classified request (or shed it
//!   via flow control),
//! * [`ScheduleEngine::poll`] — ask for the next placement decision,
//! * [`ScheduleEngine::complete`] — return a worker to the pool and feed
//!   profiling,
//! * [`ScheduleEngine::expire_heads`] / [`ScheduleEngine::check_health`] —
//!   overload control (deadline shedding, worker quarantine),
//! * [`ScheduleEngine::drain_all`] — orderly teardown,
//! * [`ScheduleEngine::report`] — the end-of-run counters every engine
//!   can answer.
//!
//! [`super::DarcEngine`] is the paper's contribution; [`super::CfcfsEngine`],
//! [`super::SjfEngine`], [`super::FixedPriorityEngine`], and
//! [`super::DfcfsEngine`] are the baselines of Tables 1 and 5, now running
//! on the same serving stack. The runtime's hot loop is generic over
//! `E: ScheduleEngine<Pending>` (monomorphized per policy); `Box<dyn
//! ScheduleEngine<R>>` exists for configuration-time construction via
//! [`super::build_engine`].

use std::sync::Arc;

use persephone_telemetry::{DispatchKind, Telemetry};

use crate::time::Nanos;
use crate::types::{TypeId, WorkerId};

/// One dispatch decision returned by [`ScheduleEngine::poll`].
#[derive(Clone, Debug, PartialEq)]
pub struct Dispatch<R> {
    /// The worker the request must run on.
    pub worker: WorkerId,
    /// The request's type (possibly UNKNOWN).
    pub ty: TypeId,
    /// The opaque request payload.
    pub req: R,
    /// Time the request waited in its queue.
    pub queued_for: Nanos,
    /// How the request reached the worker (reserved core, cycle-steal,
    /// spillway, or a plain FCFS-style placement).
    pub kind: DispatchKind,
}

/// End-of-run counters every engine can answer, regardless of policy.
///
/// Policies without a concept report zero (e.g. a c-FCFS engine never
/// installs reservations, so `updates == 0` and `guaranteed` is all
/// zeros); the dispatcher folds this into its own
/// `DispatcherReport` without knowing which engine ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Short policy name ("DARC", "c-FCFS", "SJF", ...).
    pub policy: &'static str,
    /// Reservation updates installed (DARC only; 0 elsewhere).
    pub updates: u64,
    /// Workers quarantined by the wall-clock health check.
    pub quarantines: u64,
    /// Quarantined workers released by their late completion.
    pub releases: u64,
    /// Requests expired by deadline shedding or drained at teardown.
    pub expired: u64,
    /// Guaranteed (reserved) cores per type (all zeros for policies
    /// without reservations).
    pub guaranteed: Vec<usize>,
}

/// A pluggable scheduling engine: the dispatcher's policy brain.
///
/// `R` is the opaque request representation — a buffer pointer in the
/// threaded runtime, a small token in the simulator. Implementations must
/// be `Send` so a dispatcher thread can own one.
///
/// # Contract
///
/// * `poll` is called in a loop after every `enqueue`/`complete` until it
///   returns `None`; it must only place requests on free, non-quarantined
///   workers and must mark the chosen worker busy.
/// * `complete(worker, ..)` panics if `worker` was not busy — that is a
///   dispatcher/worker protocol violation, not a recoverable condition.
/// * `expire_heads` and `check_health` are called once per dispatcher
///   iteration and must be no-ops when the corresponding
///   [`super::OverloadConfig`] knob is off.
/// * `quiescent` must treat quarantined workers as *not* pending so a
///   stalled core cannot wedge shutdown.
pub trait ScheduleEngine<R>: Send {
    /// Short display name of the policy ("DARC", "c-FCFS", "SJF", ...).
    fn policy_name(&self) -> &'static str;

    /// Number of application workers.
    fn num_workers(&self) -> usize;

    /// Number of registered request types (excluding UNKNOWN).
    fn num_types(&self) -> usize;

    /// Attaches a telemetry registry: from here on the engine records
    /// arrivals, queue depths, dispatch kinds, sojourns, and drops into it.
    fn set_telemetry(&mut self, telemetry: Arc<Telemetry>);

    /// The attached telemetry registry, if any.
    fn telemetry(&self) -> Option<&Arc<Telemetry>>;

    /// Enqueues a classified request; returns it back when flow control
    /// rejects it (the caller should count/drop it). Types out of the
    /// registered range are treated as UNKNOWN.
    fn enqueue(&mut self, ty: TypeId, req: R, now: Nanos) -> Result<(), R>;

    /// Returns the next dispatch decision, or `None` when no request can
    /// be placed (no pending work, or no eligible free worker).
    fn poll(&mut self, now: Nanos) -> Option<Dispatch<R>>;

    /// Signals that `worker` finished its request, observed to run for
    /// `service`. Frees the worker and feeds the profiler.
    fn complete(&mut self, worker: WorkerId, service: Nanos, now: Nanos);

    /// Deadline shedding: expires queued requests whose queueing delay
    /// exceeds the slowdown-SLO deadline, moving them to the expired
    /// buffer drained by [`ScheduleEngine::take_expired`].
    fn expire_heads(&mut self, now: Nanos);

    /// Takes the next deadline-expired request, if any.
    fn take_expired(&mut self) -> Option<(TypeId, R)>;

    /// Worker-health check: quarantines any busy worker whose in-flight
    /// request has run far past its type's profiled mean.
    fn check_health(&mut self, now: Nanos);

    /// Whether `worker` is currently quarantined.
    fn is_quarantined(&self, worker: WorkerId) -> bool;

    /// Drains every queue (shutdown teardown), appending all entries to
    /// `out` so the caller can answer each with `Dropped`. Taking the
    /// buffer from the caller lets it be reused across engines instead
    /// of allocating a fresh `Vec` per drain.
    fn drain_all(&mut self, now: Nanos, out: &mut Vec<(TypeId, R)>);

    /// Whether every worker is either idle or quarantined — the engine's
    /// quiescence condition for shutdown.
    fn quiescent(&self) -> bool;

    /// Workers currently idle (and dispatchable).
    fn free_workers(&self) -> usize;

    /// Queued requests of type `ty` (UNKNOWN supported).
    fn pending(&self, ty: TypeId) -> usize;

    /// Total queued requests across all types.
    fn total_pending(&self) -> usize;

    /// Requests dropped by flow control for type `ty`.
    fn drops(&self, ty: TypeId) -> u64;

    /// Total drops across all queues.
    fn total_drops(&self) -> u64;

    /// End-of-run counters (policy name, updates, quarantines, ...).
    fn report(&self) -> EngineReport;
}
